"""Chaos smoke: every fault point against a real ``wmxml serve`` daemon.

The CI leg for the resilience subsystem.  For each registered fault
point it starts a **real daemon subprocess** armed through the
``WMXML_FAULTS`` environment variable (the production arming path —
the fault state is inside the daemon process, not the test), fires a
request mix over the wire, and asserts the system-level invariants:

* every request completes — a clean envelope or a result, never a hang;
* the daemon survives the fault and answers ``/v1/healthz``;
* after the sweep, ``wmxml ledger recover`` + ``wmxml ledger verify``
  report a verifiable chain (torn tails quarantined, never deleted);
* a SIGTERM'd daemon exits 0 (the drain path).

Run from the repo root::

    PYTHONPATH=src python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro import faults  # noqa: E402
from repro.datasets import bibliography  # noqa: E402
from repro.errors import WmXMLError  # noqa: E402
from repro.service import WmXMLClient  # noqa: E402
from repro.xmlmodel import serialize  # noqa: E402

KEY = "chaos-smoke-secret"

#: How each seam is armed for its daemon lifetime (the same shapes the
#: in-process sweep in tests/test_chaos.py uses).  ``times`` keeps the
#: fault transient so the daemon can demonstrate *recovery*;
#: ``pool.chunk`` stays armed to prove the serial fallback finishes
#: batches even when every fresh worker dies.
SCENARIOS = {
    "service.dispatch": "service.dispatch=raise:times=1",
    "service.response": "service.response=raise:times=1",
    "pool.chunk": "pool.chunk=exit:scope=worker",
    "registry.sqlite.commit":
        "registry.sqlite.commit=raise:error=sqlite:times=1",
    # after=2 skips the boot-time recovery pass and readiness probe so
    # the outage hits a live wire request (the 503 + Retry-After +
    # client-retry path), not just startup.
    "registry.sqlite.read":
        "registry.sqlite.read=raise:error=sqlite:after=2:times=1",
    "registry.append.torn":
        "registry.append.torn=raise:error=os:times=1",
    # after=3: the 3-document batch consumes hits 1-3, so the corrupt
    # lands on the lifetime's *final* append — the crash-shaped
    # trailing case recovery quarantines.  (Corrupting earlier would
    # bury the damage under later blocks: interior damage, which
    # recovery rightly refuses to touch.)
    "ledger.seal": "ledger.seal=corrupt:times=1:after=3",
}


def read_bound_port(daemon: subprocess.Popen) -> int:
    """Parse the ephemeral port from the daemon's startup banner."""
    for line in daemon.stdout:
        print(line, end="")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            threading.Thread(
                target=lambda: [print(rest, end="")
                                for rest in daemon.stdout],
                daemon=True).start()
            return int(match.group(1))
    raise AssertionError(
        f"daemon exited (code {daemon.wait()}) before printing its port")


def start_daemon(scheme_path: str, registry_path: str,
                 wmxml_faults: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    env["WMXML_FAULTS"] = wmxml_faults
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         "--scheme", f"books={scheme_path}", "--key", KEY,
         "--registry", registry_path, "--issuer", "chaos-smoke",
         "--processes", "2", "--retry-after", "0", "--port", "0"],
        env=env, cwd=REPO, stdout=subprocess.PIPE, text=True)


def stop_daemon(daemon: subprocess.Popen) -> int:
    daemon.send_signal(signal.SIGTERM)
    try:
        return daemon.wait(timeout=15)
    except subprocess.TimeoutExpired:
        daemon.kill()
        daemon.wait()
        return -9


def run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    env.pop("WMXML_FAULTS", None)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        env=env, cwd=REPO, capture_output=True, text=True, timeout=120)


def sweep_point(point: str, arming: str, scheme_path: str,
                tmp: str, texts: list[str]) -> None:
    registry_path = os.path.join(tmp, f"{point.replace('.', '-')}.db")
    daemon = start_daemon(scheme_path, registry_path, arming)
    try:
        port = read_bound_port(daemon)
        client = WmXMLClient(f"http://127.0.0.1:{port}", scheme="books",
                             timeout=120, retries=5, retry_delay=0.1)

        # the request mix under fire (the daemon is armed from its
        # first request — WMXML_FAULTS is parsed at import): clean
        # envelope or result, never a hang (the client timeout would
        # fail the sweep otherwise)
        envelopes = 0
        for action in (lambda: client.healthz(),
                       lambda: client.issue_many(texts, "alice"),
                       lambda: client.records(),
                       lambda: client.healthz()):
            try:
                action()
            except WmXMLError as error:
                envelopes += 1
                print(f"  [{point}] clean failure: "
                      f"{type(error).__name__}: {error}")

        # the daemon survived the fault
        health = client.healthz()
        assert health["status"] in ("ok", "degraded"), health
        result = client.issue(texts[0], "bob")
        assert result.record is not None
        print(f"  [{point}] daemon alive after fault "
              f"({envelopes} enveloped failure(s), "
              f"health={health['status']})")
    finally:
        returncode = stop_daemon(daemon)
    assert returncode == 0, (
        f"[{point}] daemon exited {returncode}, not 0")

    # offline: recover (quarantining any torn tail), then verify
    recover = run_cli("ledger", "recover", "--registry", registry_path,
                      "--key", KEY)
    assert recover.returncode == 0, (
        f"[{point}] recover failed:\n{recover.stdout}{recover.stderr}")
    verify = run_cli("ledger", "verify", "--registry", registry_path,
                     "--key", KEY)
    assert verify.returncode == 0, (
        f"[{point}] verify failed:\n{verify.stdout}{verify.stderr}")
    print(f"  [{point}] ledger verifiable after recovery")


def main() -> int:
    points = sorted(faults.fault_points())
    missing = set(points) - set(SCENARIOS)
    assert not missing, f"fault points without a chaos scenario: {missing}"

    with tempfile.TemporaryDirectory() as tmp:
        scheme_path = os.path.join(tmp, "books.json")
        bibliography.default_scheme(2).save(scheme_path)
        texts = [
            serialize(bibliography.generate_document(
                bibliography.BibliographyConfig(books=12, editors=3,
                                                seed=8000 + index)))
            for index in range(3)
        ]
        for point in points:
            print(f"chaos sweep: {point} ({SCENARIOS[point]})")
            sweep_point(point, SCENARIOS[point], scheme_path, tmp, texts)
    print(f"CHAOS SMOKE PASSED ({len(points)} fault points swept)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
