"""E6 (§4 attack B): subset/reduction sweep.

Detection must survive far below half the data; the assertion requires
detection at a 25% subset and monotone-ish vote decay.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.attacks import ReductionAttack
from repro.core import Watermark, WmXMLDecoder, WmXMLEncoder
from repro.datasets import bibliography
from repro.harness import e6_reduction_sweep


def test_e6_reduction(benchmark, results_dir):
    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    watermark = Watermark.from_message(BENCH_CONFIG.message)
    result = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key).embed(
        document, watermark)
    attack = ReductionAttack(0.5, seed=2)
    decoder = WmXMLDecoder(BENCH_CONFIG.secret_key, alpha=BENCH_CONFIG.alpha)

    def subset_detection():
        attacked = attack.apply(result.document).document
        return decoder.detect(attacked, result.record, scheme.shape,
                              expected=watermark)

    outcome = benchmark(subset_detection)
    assert outcome.detected

    table = e6_reduction_sweep(BENCH_CONFIG)
    archive(results_dir, "e6_reduction", table)
    by_keep = dict(zip(table.column("keep-fraction"),
                       table.column("detected")))
    assert by_keep[1.0] and by_keep[0.5] and by_keep[0.25]
    votes = table.column("votes")
    assert votes == sorted(votes, reverse=True)  # fewer data, fewer votes
    # Surviving votes never *contradict* the mark: match ratio stays 1.
    assert all(r == 1.0 for r in table.column("match-ratio"))
