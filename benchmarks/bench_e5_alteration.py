"""E5 (§4 attack A): alteration sweep — the detection/usability crossover.

The paper's central demonstration claim: "(i) the watermark can still be
successfully reconstructed if these attacks have not destroyed the data
usability or (ii) once the attacks manage to destroy the watermark, the
data usability will also be destroyed."

The assertion encodes exactly that implication over the sweep.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.attacks import ValueAlterationAttack
from repro.core import Watermark, WmXMLDecoder, WmXMLEncoder
from repro.datasets import bibliography
from repro.harness import e5_alteration_sweep


def test_e5_alteration(benchmark, results_dir):
    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    watermark = Watermark.from_message(BENCH_CONFIG.message)
    result = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key).embed(
        document, watermark)
    attack = ValueAlterationAttack(0.2, seed=1)
    decoder = WmXMLDecoder(BENCH_CONFIG.secret_key, alpha=BENCH_CONFIG.alpha)

    def attacked_detection():
        attacked = attack.apply(result.document).document
        return decoder.detect(attacked, result.record, scheme.shape,
                              expected=watermark)

    outcome = benchmark(attacked_detection)
    assert outcome.detected

    table = e5_alteration_sweep(BENCH_CONFIG)
    archive(results_dir, "e5_alteration", table)
    detected = table.column("detected")
    destroyed = table.column("usability-destroyed")
    # Paper claim (ii): wherever the watermark is gone, usability is too.
    for was_detected, was_destroyed in zip(detected, destroyed):
        if not was_detected:
            assert was_destroyed
    # And the mark must outlive usability somewhere in the sweep.
    assert any(d and u for d, u in zip(detected, destroyed))
