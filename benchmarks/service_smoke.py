"""Service smoke: real ``wmxml serve`` subprocess, real client, clean exit.

The CI leg for the daemon.  It exercises exactly what a deployment
does: start ``wmxml serve`` as its own process, wait for it through the
client's connection-refused retry loop, run an embed/detect round-trip
plus a pooled batch over loopback HTTP, read ``/v1/healthz`` and
``/v1/stats``, then SIGTERM the daemon and assert it exits 0.

Run from the repo root::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.datasets import bibliography  # noqa: E402
from repro.service import WmXMLClient  # noqa: E402
from repro.xmlmodel import serialize  # noqa: E402


def read_bound_port(daemon: subprocess.Popen) -> int:
    """Parse the ephemeral port from the daemon's startup banner.

    ``--port 0`` lets the daemon pick the port itself — no
    probe-then-rebind race with other processes on a busy CI host.
    The remaining output keeps draining on a thread (echoed through)
    so the pipe can never fill and block the daemon.
    """
    for line in daemon.stdout:
        print(line, end="")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            threading.Thread(
                target=lambda: [print(rest, end="")
                                for rest in daemon.stdout],
                daemon=True).start()
            return int(match.group(1))
    raise AssertionError(
        f"daemon exited (code {daemon.wait()}) before printing its port")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        scheme_path = os.path.join(tmp, "books.json")
        bibliography.default_scheme(2).save(scheme_path)

        env = dict(os.environ)
        env["PYTHONPATH"] = (os.path.join(REPO, "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        daemon = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve",
             "--scheme", f"books={scheme_path}", "--key", "smoke-secret",
             "--port", "0", "--processes", "2"],
            env=env, cwd=REPO, stdout=subprocess.PIPE, text=True)
        try:
            port = read_bound_port(daemon)
            client = WmXMLClient(f"http://127.0.0.1:{port}",
                                 scheme="books", retries=30,
                                 retry_delay=0.1)

            health = client.healthz()
            assert health["status"] == "ok", health
            assert "books" in health["schemes"], health
            print(f"healthz ok: {health}")

            document = bibliography.generate_document(
                bibliography.BibliographyConfig(books=40, seed=11))
            text = serialize(document)

            result = client.embed(text, "(c) smoke")
            outcome = client.detect(result.xml, result.record,
                                    expected="(c) smoke")
            assert outcome.detected, outcome
            print(f"round-trip ok: {outcome}")

            batch = client.embed_many([text] * 4, "(c) smoke")
            assert len(batch) == 4
            verdicts = client.detect_many(
                [(item.xml, batch[0].record) for item in batch[:1]]
                + [(batch[i].xml, batch[i].record) for i in range(1, 4)],
                expected="(c) smoke")
            assert all(item.detected for item in verdicts), verdicts
            print(f"batch ok: {len(batch)} embeds, "
                  f"{sum(v.detected for v in verdicts)} detects")

            # The stats snapshot is taken while the /v1/stats request
            # itself is still in flight, so it counts the 5 prior ones.
            stats = client.stats()
            assert stats["requests"] >= 5, stats
            assert stats["errors"] == 0, stats
            print(f"stats ok: {stats['requests']} requests, "
                  f"{len(stats['endpoints'])} endpoints timed")
        finally:
            daemon.send_signal(signal.SIGTERM)
            try:
                returncode = daemon.wait(timeout=15)
            except subprocess.TimeoutExpired:
                # Don't let a wedged daemon mask the real failure (and
                # don't leave the process alive on the runner).
                daemon.kill()
                daemon.wait()
                returncode = -9
        assert returncode == 0, f"daemon exited {returncode}, not 0"
        print("clean shutdown ok (exit 0)")
        print("SERVICE SMOKE PASSED")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
