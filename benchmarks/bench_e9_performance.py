"""E9 (§3 system): encoder / decoder / query-engine throughput.

pytest-benchmark timings for the three pipeline stages plus the archived
size-scaling table.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.core import Watermark, WmXMLDecoder, WmXMLEncoder
from repro.datasets import bibliography
from repro.harness import e9_performance
from repro.xmlmodel import parse, serialize
from repro.xpath import compile_xpath


def _document():
    return bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))


def test_e9_embed_throughput(benchmark, results_dir):
    document = _document()
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    encoder = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key)
    watermark = Watermark.from_message(BENCH_CONFIG.message)

    result = benchmark(lambda: encoder.embed(document, watermark))
    assert result.stats.selected_groups > 0

    table = e9_performance(BENCH_CONFIG, sizes=(25, 50, 100, 200))
    archive(results_dir, "e9_performance", table)
    assert all(ms < 10_000 for ms in table.column("embed-ms"))


def test_e9_detect_throughput(benchmark):
    document = _document()
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    watermark = Watermark.from_message(BENCH_CONFIG.message)
    result = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key).embed(
        document, watermark)
    decoder = WmXMLDecoder(BENCH_CONFIG.secret_key)

    outcome = benchmark(
        lambda: decoder.detect(result.document, result.record, scheme.shape,
                               expected=watermark))
    assert outcome.detected


def test_e9_parser_throughput(benchmark):
    text = serialize(_document())

    document = benchmark(lambda: parse(text))
    assert document.root.tag == "db"


def test_e9_xpath_throughput(benchmark):
    document = _document()
    query = compile_xpath("/db/book[year > 1995]/title")

    titles = benchmark(lambda: query.select_strings(document))
    assert titles
