#!/usr/bin/env bash
# Run the E9 perf-regression bench from the repo root.
#
# Writes/updates BENCH_e9.json at the repo root and exits non-zero when
# any pipeline stage regressed >20% against the best recorded run.
# Extra arguments are forwarded (e.g. --books 400, --no-check).
set -euo pipefail
cd "$(dirname "$0")/.."
exec python benchmarks/regression.py "$@"
