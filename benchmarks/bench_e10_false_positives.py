"""E10: false-positive resistance (soundness of the ownership claim).

Archives the unmarked-data / wrong-key trials and asserts zero false
detections across all of them.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.core import Watermark, WmXMLDecoder, WmXMLEncoder
from repro.datasets import bibliography
from repro.harness import e10_false_positives


def test_e10_false_positives(benchmark, results_dir):
    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    watermark = Watermark.from_message(BENCH_CONFIG.message)
    result = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key).embed(
        document, watermark)
    stranger = WmXMLDecoder("an-adversarys-guess", alpha=BENCH_CONFIG.alpha)

    outcome = benchmark(
        lambda: stranger.detect(result.document, result.record, scheme.shape,
                                expected=watermark))
    assert not outcome.detected

    table = e10_false_positives(BENCH_CONFIG, trials=10)
    archive(results_dir, "e10_false_positives", table)
    assert all(count == 0 for count in table.column("detections"))
