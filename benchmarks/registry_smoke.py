"""Registry smoke: live ``wmxml serve --registry``, collusion, restart.

The CI leg for the provenance subsystem.  It exercises the full
deployment story: start ``wmxml serve`` with a SQLite registry, issue
20 fingerprinted copies across five recipients over the wire, **kill
the daemon**, start a fresh one over the same database file, then
majority-collude three recipients' copies of the shared corpus
document and assert that ``POST /v1/trace`` accuses a true colluder,
that ``GET /v1/ledger/verify`` still reports an intact chain, and that
both daemon lifetimes exit 0 on SIGTERM.

Run from the repo root::

    PYTHONPATH=src python benchmarks/registry_smoke.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.api import CollusionAttack  # noqa: E402
from repro.datasets import bibliography  # noqa: E402
from repro.service import WmXMLClient  # noqa: E402
from repro.xmlmodel import parse, serialize  # noqa: E402

RECIPIENTS = ("alice", "bob", "carol", "dave", "erin")
COLLUDERS = ("alice", "carol", "erin")
#: 5 recipients x 4 documents = the 20 issued copies the registry holds.
DOCS_PER_RECIPIENT = 4


def read_bound_port(daemon: subprocess.Popen) -> int:
    """Parse the ephemeral port from the daemon's startup banner."""
    for line in daemon.stdout:
        print(line, end="")
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if match:
            threading.Thread(
                target=lambda: [print(rest, end="")
                                for rest in daemon.stdout],
                daemon=True).start()
            return int(match.group(1))
    raise AssertionError(
        f"daemon exited (code {daemon.wait()}) before printing its port")


def start_daemon(scheme_path: str, registry_path: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (os.path.join(REPO, "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    return subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         "--scheme", f"books={scheme_path}", "--key", "smoke-secret",
         "--registry", registry_path, "--issuer", "registry-smoke",
         "--port", "0"],
        env=env, cwd=REPO, stdout=subprocess.PIPE, text=True)


def stop_daemon(daemon: subprocess.Popen) -> int:
    daemon.send_signal(signal.SIGTERM)
    try:
        return daemon.wait(timeout=15)
    except subprocess.TimeoutExpired:
        daemon.kill()
        daemon.wait()
        return -9


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        scheme_path = os.path.join(tmp, "books.json")
        bibliography.default_scheme(2).save(scheme_path)
        registry_path = os.path.join(tmp, "registry.db")

        # The shared corpus document is large enough that a three-way
        # majority collusion still leaves each colluder detectable.
        corpus = serialize(bibliography.generate_document(
            bibliography.BibliographyConfig(books=200, editors=8,
                                            seed=1234)))
        extras = [
            serialize(bibliography.generate_document(
                bibliography.BibliographyConfig(books=30, editors=4,
                                                seed=100 + index)))
            for index in range(DOCS_PER_RECIPIENT - 1)
        ]

        # -- first daemon lifetime: populate the registry ----------------
        daemon = start_daemon(scheme_path, registry_path)
        copies: dict[str, str] = {}
        try:
            port = read_bound_port(daemon)
            client = WmXMLClient(f"http://127.0.0.1:{port}",
                                 scheme="books", retries=30,
                                 retry_delay=0.1)
            health = client.healthz()
            assert health["registry"] is not None, health
            for name in RECIPIENTS:
                copies[name] = client.issue(corpus, name).xml
                for extra in extras:
                    client.issue(extra, name)
            expected = len(RECIPIENTS) * DOCS_PER_RECIPIENT
            total = client.records(limit=1)["total"]
            assert total == expected, (total, expected)
            print(f"issued {expected} copies into {registry_path}")
        finally:
            returncode = stop_daemon(daemon)
        assert returncode == 0, f"daemon exited {returncode}, not 0"
        print("first lifetime: clean shutdown ok (exit 0)")

        # -- the leak: three recipients collude offline ------------------
        attacked = CollusionAttack(
            [parse(copies[name]) for name in COLLUDERS],
            strategy="majority", seed=7,
        ).apply(parse(copies[COLLUDERS[0]]))
        leak = serialize(attacked.document)

        # -- second daemon lifetime over the same database ---------------
        daemon = start_daemon(scheme_path, registry_path)
        try:
            port = read_bound_port(daemon)
            client = WmXMLClient(f"http://127.0.0.1:{port}",
                                 scheme="books", retries=30,
                                 retry_delay=0.1)
            total = client.records(limit=1)["total"]
            assert total == len(RECIPIENTS) * DOCS_PER_RECIPIENT, total

            trace = client.trace(leak)
            assert trace.prime_suspect in COLLUDERS, trace.to_dict()
            print(f"trace ok: accused {trace.accused!r}, "
                  f"prime suspect {trace.prime_suspect!r} "
                  f"(colluders were {list(COLLUDERS)!r})")

            report = client.verify_ledger()
            assert report["intact"] is True, report
            assert report["sealed"] is True, report
            assert report["blocks"] == total, report
            print(f"ledger ok: {report['blocks']} sealed blocks intact "
                  "after restart")
        finally:
            returncode = stop_daemon(daemon)
        assert returncode == 0, f"daemon exited {returncode}, not 0"
        print("second lifetime: clean shutdown ok (exit 0)")
        print("REGISTRY SMOKE PASSED")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
