"""Auth smoke: real multi-tenant ``wmxml serve``, tokens, 401/403/429.

The CI leg for tenancy.  It stands up a daemon with a tenants file
(two tenants plus a tightly-metered one), mints tokens through the
``wmxml token mint`` subcommand exactly as an operator would, and then
proves the auth surface over loopback HTTP:

* a valid token embeds, detects, and reads its own records;
* no token at all is a 401 envelope with the ``unauthorized`` slug;
* a leaked record from another tenant is refused with 403, and the
  other tenant's record listing is empty — full namespace isolation;
* exhausting the metered tenant's bucket yields a raw 429 with an
  honest ``Retry-After`` header, and the client SDK transparently
  waits it out and succeeds;
* SIGTERM still exits 0.

Run from the repo root::

    PYTHONPATH=src python benchmarks/auth_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.datasets import bibliography  # noqa: E402
from repro.service import RemoteServiceError, WmXMLClient  # noqa: E402
from repro.xmlmodel import serialize  # noqa: E402

from service_smoke import read_bound_port  # noqa: E402

TENANTS = {
    "format": "wmxml-tenants-v1",
    "keys": {"1": "auth-smoke-master"},
    "tenants": {
        "acme": {},
        "globex": {},
        # One token per 2 s after a burst of 1: slow enough that the
        # 429 -> Retry-After -> retry leg is deterministic on a busy
        # CI host, fast enough that the wait stays ~2 s.
        "metered": {"quota": {"requests_per_minute": 30,
                              "request_burst": 1}},
    },
}


def mint(env: dict, tenants_path: str, tenant: str) -> str:
    """A token the way an operator gets one: the CLI subcommand."""
    return subprocess.check_output(
        [sys.executable, "-m", "repro.cli", "token", "mint",
         "--tenants", tenants_path, "--tenant", tenant],
        env=env, cwd=REPO, text=True).strip()


def http_status(url: str, token: str | None = None) -> tuple[int, dict, dict]:
    """Raw GET without the SDK — to inspect status and headers."""
    request = urllib.request.Request(url)
    if token is not None:
        request.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(request) as response:
            return (response.status, json.load(response),
                    dict(response.headers))
    except urllib.error.HTTPError as error:
        return error.code, json.load(error), dict(error.headers)


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp:
        scheme_path = os.path.join(tmp, "books.json")
        bibliography.default_scheme(2).save(scheme_path)
        tenants_path = os.path.join(tmp, "tenants.json")
        with open(tenants_path, "w", encoding="utf-8") as handle:
            json.dump(TENANTS, handle)

        env = dict(os.environ)
        env["PYTHONPATH"] = (os.path.join(REPO, "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        daemon = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.cli", "serve",
             "--scheme", f"books={scheme_path}",
             "--tenants", tenants_path, "--port", "0",
             "--registry", os.path.join(tmp, "registry.db")],
            env=env, cwd=REPO, stdout=subprocess.PIPE, text=True)
        try:
            port = read_bound_port(daemon)
            base = f"http://127.0.0.1:{port}"
            acme_token = mint(env, tenants_path, "acme")
            globex_token = mint(env, tenants_path, "globex")
            print("tokens minted via `wmxml token mint`")

            acme = WmXMLClient(base, scheme="books", token=acme_token,
                               retries=30, retry_delay=0.1)
            globex = WmXMLClient(base, scheme="books",
                                 token=globex_token)

            # healthz needs no credential, everything else does.
            status, health, _ = http_status(f"{base}/v1/healthz")
            assert status == 200 and health["tenants"] == 3, health
            status, refused, _ = http_status(f"{base}/v1/stats")
            assert status == 401, (status, refused)
            assert refused["error"]["code"] == "unauthorized", refused
            print("401 ok: tokenless /v1/stats refused")

            text = serialize(bibliography.generate_document(
                bibliography.BibliographyConfig(books=40, seed=23)))
            result = acme.embed(text, "(c) acme")
            assert result.record.tenant == "acme", result.record
            outcome = acme.detect(result.xml, result.record,
                                  expected="(c) acme")
            assert outcome.detected, outcome
            print("authenticated round-trip ok")

            # Cross-tenant: globex cannot use acme's leaked record,
            # and acme's record never shows in globex's listing.
            try:
                globex.detect(result.xml, result.record)
                raise AssertionError("cross-tenant detect succeeded")
            except RemoteServiceError as error:
                assert error.http_status == 403, error
                assert error.code == "forbidden", error
            assert acme.records()["total"] == 1
            assert globex.records()["total"] == 0
            print("isolation ok: 403 on leaked record, empty listing")

            # Quota: burst of 1, then a raw 429 with Retry-After.
            metered_token = mint(env, tenants_path, "metered")
            status, _, _ = http_status(f"{base}/v1/stats",
                                       metered_token)
            assert status == 200, status
            status, envelope, headers = http_status(
                f"{base}/v1/stats", metered_token)
            assert status == 429, (status, envelope)
            assert envelope["error"]["code"] == "rate-limited", envelope
            retry_after = int(headers["Retry-After"])
            assert retry_after >= 1, headers
            print(f"429 ok: Retry-After={retry_after}")

            # The SDK honours the header: its next call sleeps the
            # advertised delay and then succeeds.
            metered = WmXMLClient(base, token=metered_token, retries=3)
            start = time.monotonic()
            stats = metered.stats()
            waited = time.monotonic() - start
            assert stats["tenant"]["name"] == "metered", stats
            assert waited >= 1.0, f"client retried after only {waited:.2f}s"
            assert stats["tenant"]["errors"] >= 1, stats
            print(f"client retry ok: waited {waited:.2f}s for refill")
        finally:
            daemon.send_signal(signal.SIGTERM)
            try:
                returncode = daemon.wait(timeout=15)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait()
                returncode = -9
        assert returncode == 0, f"daemon exited {returncode}, not 0"
        print("clean shutdown ok (exit 0)")
        print("AUTH SMOKE PASSED")
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
