"""E4 (§4 part 1): "usability would not be seriously degraded".

Times the usability evaluation and archives usability-after-embedding
versus gamma, asserting the paper's claim (never destroyed; >= 0.97
strict at every density).
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.core import (
    UsabilityBaseline,
    Watermark,
    WmXMLEncoder,
)
from repro.datasets import bibliography
from repro.harness import e4_embedding_usability


def test_e4_embedding_usability(benchmark, results_dir):
    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    result = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key).embed(
        document, Watermark.from_message(BENCH_CONFIG.message))
    baseline = UsabilityBaseline.snapshot(document, scheme.shape,
                                          scheme.templates)

    report = benchmark(lambda: baseline.evaluate(result.document))
    assert not report.destroyed()

    table = e4_embedding_usability(BENCH_CONFIG, gammas=(1, 2, 4, 8))
    archive(results_dir, "e4_embedding_usability", table)
    assert all(strict >= 0.97 for strict in table.column("usability-strict"))
    assert not any(table.column("destroyed"))
