"""E2 (Figure 2): detection through rewritten queries per mapping.

Times detection with rewriting against a reorganised document and
archives the per-mapping detection table.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.core import Watermark, WmXMLDecoder, WmXMLEncoder
from repro.datasets import bibliography
from repro.harness import e2_rewriting_fanout
from repro.rewriting import reorganize


def test_e2_rewriting(benchmark, results_dir):
    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    watermark = Watermark.from_message(BENCH_CONFIG.message)
    result = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key).embed(
        document, watermark)
    target = bibliography.publisher_shape()
    reorganised = reorganize(result.document, scheme.shape, target).document
    decoder = WmXMLDecoder(BENCH_CONFIG.secret_key,
                           alpha=BENCH_CONFIG.alpha)

    outcome = benchmark(
        lambda: decoder.detect(reorganised, result.record, target,
                               expected=watermark))
    assert outcome.detected

    table = e2_rewriting_fanout(BENCH_CONFIG)
    archive(results_dir, "e2_rewriting", table)
    assert all(table.column("detected"))  # every mapping detects
    assert all(ratio == 1.0 for ratio in table.column("match-ratio"))
