"""E1 (Figure 1): reorganisation preserves information & query answers.

Times the shred -> rebuild reorganisation and archives the
query-answer-equivalence table.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.datasets import bibliography
from repro.harness import e1_reorganization_equivalence
from repro.rewriting import reorganize


def test_e1_reorganization(benchmark, results_dir):
    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))
    source = bibliography.book_shape()
    target = bibliography.publisher_shape()

    result = benchmark(lambda: reorganize(document, source, target))
    assert result.lossless

    table = e1_reorganization_equivalence(BENCH_CONFIG)
    archive(results_dir, "e1_reorganization", table)
    # Every template binding must answer identically on both shapes.
    for row in table.rows:
        answered, total = row[2].split("/")
        assert answered == total, row
