"""E3 (§4 part 1): "the watermark capacity is fully utilized".

Times embedding at the default density and archives the utilisation-
versus-gamma table, asserting the 1/gamma shape.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.core import Watermark, WmXMLEncoder
from repro.datasets import bibliography
from repro.harness import e3_capacity


def test_e3_capacity(benchmark, results_dir):
    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    watermark = Watermark.from_message(BENCH_CONFIG.message)
    encoder = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key)

    result = benchmark(lambda: encoder.embed(document, watermark))
    assert result.stats.selected_groups > 0

    table = e3_capacity(BENCH_CONFIG, gammas=(1, 2, 4, 8, 16))
    archive(results_dir, "e3_capacity", table)
    utilisations = table.column("utilisation")
    gammas = table.column("gamma")
    # gamma=1 uses every candidate; larger gamma tracks 1/gamma within
    # binomial noise (3 sigma).
    assert utilisations[0] == 1.0
    candidates = table.column("candidate-groups")[0]
    for gamma, utilisation in zip(gammas[1:], utilisations[1:]):
        expected = 1.0 / gamma
        sigma = (expected * (1 - expected) / candidates) ** 0.5
        assert abs(utilisation - expected) <= 3 * sigma + 1e-9, (
            gamma, utilisation)
