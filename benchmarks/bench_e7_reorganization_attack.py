"""E7 (§4 attack C): structural attacks, WmXML versus the baselines.

Archives the scheme x attack matrix and asserts the paper's qualitative
table:

* WmXML with rewriting survives shuffle, reorganisation, and both;
* WmXML without rewriting gets nothing from a reorganised copy;
* Agrawal-Kiernan-style physical paths die under shuffle already;
* Sion-style labels survive shuffle but die under reorganisation.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.attacks import SiblingShuffleAttack
from repro.baselines import AKWatermarker
from repro.core import Watermark
from repro.datasets import bibliography
from repro.harness import e7_reorganization_matrix


def test_e7_reorganization_matrix(benchmark, results_dir):
    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    watermark = Watermark.from_message(BENCH_CONFIG.message)
    ak = AKWatermarker(BENCH_CONFIG.secret_key, scheme.shape,
                       scheme.carriers, gamma=BENCH_CONFIG.gamma)
    marked, record = ak.embed(document, watermark)
    shuffle = SiblingShuffleAttack(seed=3)

    def shuffled_ak_detection():
        return ak.detect(shuffle.apply(marked).document, record, watermark)

    outcome = benchmark(shuffled_ak_detection)
    assert not outcome.detected  # the baseline's weakness, timed

    table = e7_reorganization_matrix(BENCH_CONFIG)
    archive(results_dir, "e7_reorganization_matrix", table)

    verdict = {
        (row[0], row[1]): row[5] for row in table.rows
    }
    assert verdict[("WmXML (rewritten)", "none")]
    assert verdict[("WmXML (rewritten)", "sibling-shuffle")]
    assert verdict[("WmXML (rewritten)", "reorganisation")]
    assert verdict[("WmXML (rewritten)", "shuffle+reorg")]
    assert not verdict[("WmXML (no rewriting)", "reorganisation")]
    assert verdict[("Agrawal-Kiernan", "none")]
    assert not verdict[("Agrawal-Kiernan", "sibling-shuffle")]
    assert not verdict[("Agrawal-Kiernan", "reorganisation")]
    assert verdict[("Sion-labeling", "none")]
    assert verdict[("Sion-labeling", "sibling-shuffle")]
    assert not verdict[("Sion-labeling", "reorganisation")]
