"""Perf-regression harness entry point (see ``repro.perf.bench``).

Runs the E9 pipeline stages, archives the timings to ``BENCH_e9.json``
at the repo root, and exits non-zero when any stage is more than 20%
slower than the best recorded run.  Typical use::

    ./benchmarks/run_bench.sh            # measure + gate
    ./benchmarks/run_bench.sh --no-check # record a new machine baseline

The measurement/archiving logic lives in :mod:`repro.perf.bench` so the
``wmxml bench`` subcommand and this script share one implementation.
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"))

from repro.perf import bench  # noqa: E402 - after the path bootstrap


def main(argv=None) -> int:
    return bench.main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
