"""Shared infrastructure for the benchmark suite.

Every experiment bench times its core operation with pytest-benchmark
and archives the experiment's result table under
``benchmarks/results/`` — those files are the "rows/series the paper
reports" (see EXPERIMENTS.md for the paper-vs-measured discussion).
"""

import pathlib

import pytest

from repro.harness import ExperimentConfig

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: One compact configuration shared by all experiment benches so the
#: whole suite stays fast while the statistics remain meaningful.
BENCH_CONFIG = ExperimentConfig(books=80, editors=8, seed=42)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def archive(results_dir: pathlib.Path, name: str, table) -> None:
    """Write a rendered table (or several) to results/<name>.txt."""
    if isinstance(table, (list, tuple)):
        text = "\n\n".join(t.render() for t in table)
    else:
        text = table.render()
    (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print("\n" + text)
