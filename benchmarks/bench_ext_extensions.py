"""EXT benches: the implemented extensions beyond the demo paper.

* EXT-1 — indexed detection: same votes as the XPath scan, order-of-
  magnitude faster (the E9 "future work" implemented);
* EXT-2 — ECC blind recovery: message recovery rate under reduction,
  raw vs repetition-coded;
* EXT-3 — fingerprint tracing under collusion: coalition size sweep.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.attacks import CollusionAttack, ReductionAttack
from repro.core import (
    Fingerprinter,
    RepetitionCode,
    Watermark,
    WmXMLDecoder,
    WmXMLEncoder,
)
from repro.datasets import bibliography
from repro.harness import ResultTable


def _document():
    return bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))


def test_ext1_indexed_detection(benchmark, results_dir):
    document = _document()
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    watermark = Watermark.from_message(BENCH_CONFIG.message)
    result = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key).embed(
        document, watermark)
    decoder = WmXMLDecoder(BENCH_CONFIG.secret_key)

    outcome = benchmark(
        lambda: decoder.detect(result.document, result.record, scheme.shape,
                               expected=watermark, indexed=True))
    assert outcome.detected

    scan = decoder.detect(result.document, result.record, scheme.shape,
                          expected=watermark)
    assert (scan.votes_total, scan.votes_matching) == \
        (outcome.votes_total, outcome.votes_matching)


def test_ext2_ecc_blind_recovery(benchmark, results_dir):
    document = _document()
    message = "EC"
    code = RepetitionCode(3)
    raw_wm = Watermark.from_message(message)
    coded_wm = code.encode_watermark(raw_wm)
    scheme = bibliography.default_scheme(1)

    raw_result = WmXMLEncoder(scheme, "raw-key").embed(document, raw_wm)
    coded_result = WmXMLEncoder(scheme, "ecc-key").embed(document, coded_wm)
    raw_decoder = WmXMLDecoder("raw-key")
    coded_decoder = WmXMLDecoder("ecc-key")

    table = ResultTable(
        "EXT-2: blind message recovery, raw vs repetition-3 ECC",
        ["keep-fraction", "raw-recovered", "ecc-recovered"])
    for keep in (1.0, 0.8, 0.6, 0.4, 0.3, 0.2):
        attack = ReductionAttack(keep, seed=5)
        raw_doc = attack.apply(raw_result.document).document
        coded_doc = attack.apply(coded_result.document).document
        raw_out = raw_decoder.detect(raw_doc, raw_result.record,
                                     scheme.shape)
        coded_out = coded_decoder.detect(coded_doc, coded_result.record,
                                         scheme.shape)
        table.add(keep,
                  raw_out.recovered_message == message,
                  code.decode_message(coded_out.recovered_bits) == message)
    archive(results_dir, "ext2_ecc", table)
    raw_wins = sum(bool(v) for v in table.column("raw-recovered"))
    ecc_wins = sum(bool(v) for v in table.column("ecc-recovered"))
    assert ecc_wins >= raw_wins  # the code can only help
    assert table.rows[0][1] and table.rows[0][2]  # both fine unattacked

    outcome = benchmark(
        lambda: coded_decoder.detect(coded_result.document,
                                     coded_result.record, scheme.shape))
    assert outcome.votes_total > 0


def test_ext3_collusion_tracing(benchmark, results_dir):
    document = _document()
    scheme = bibliography.default_scheme(BENCH_CONFIG.gamma)
    tracer = Fingerprinter(scheme, "master", alpha=1e-3)
    recipients = [f"user-{i}" for i in range(5)]
    copies = {name: tracer.issue(document, name) for name in recipients}

    table = ResultTable(
        "EXT-3: traitor tracing vs coalition size (random-pick collusion)",
        ["colluders", "accused", "colluders-caught", "innocents-accused"])
    for size in (1, 2, 3, 4):
        coalition = recipients[:size]
        if size == 1:
            merged = copies[coalition[0]].document
        else:
            merged = CollusionAttack(
                [copies[name].document for name in coalition],
                strategy="random", seed=7).apply(
                copies[coalition[0]].document).document
        trace = tracer.trace(merged)
        caught = [name for name in trace.accused if name in coalition]
        innocents = [name for name in trace.accused
                     if name not in coalition]
        table.add(size, len(trace.accused), len(caught), len(innocents))
    archive(results_dir, "ext3_collusion", table)
    assert table.rows[0][2] == 1        # single leaker always caught
    assert all(row[3] == 0 for row in table.rows)  # never frame innocents
    assert table.rows[1][2] >= 1        # 2-coalitions leak a member

    trace = benchmark(lambda: tracer.trace(copies["user-0"].document))
    assert trace.prime_suspect == "user-0"
