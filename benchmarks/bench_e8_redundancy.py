"""E8 (§4 attack D): redundancy removal; FD-aware identification ablation.

WmXML's FD-identified carrier embeds the same bit into every duplicate,
so unification rewrites nothing; the per-occurrence baselines lose the
disagreeing half of their duplicate votes.
"""

from benchmarks.conftest import BENCH_CONFIG, archive
from repro.attacks import RedundancyUnificationAttack
from repro.core import Watermark, WmXMLDecoder, WmXMLEncoder
from repro.datasets import bibliography
from repro.harness import e8_redundancy


def test_e8_redundancy(benchmark, results_dir):
    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=BENCH_CONFIG.books, editors=BENCH_CONFIG.editors,
        seed=BENCH_CONFIG.seed))
    scheme = bibliography.default_scheme(1)
    watermark = Watermark.from_message(BENCH_CONFIG.message)
    result = WmXMLEncoder(scheme, BENCH_CONFIG.secret_key).embed(
        document, watermark)
    attack = RedundancyUnificationAttack(bibliography.semantic_fd(),
                                         strategy="majority", seed=4)
    decoder = WmXMLDecoder(BENCH_CONFIG.secret_key, alpha=BENCH_CONFIG.alpha)

    def unified_detection():
        attacked = attack.apply(result.document).document
        return decoder.detect(attacked, result.record, scheme.shape,
                              expected=watermark)

    outcome = benchmark(unified_detection)
    assert outcome.detected
    assert outcome.match_ratio == 1.0

    table = e8_redundancy(BENCH_CONFIG)
    archive(results_dir, "e8_redundancy", table)
    for row in table.rows:
        scheme_name, strategy, rewritten, _, ratio, _, detected = row
        if scheme_name.startswith("WmXML"):
            # FD folding: nothing to rewrite, full match, always detected.
            assert rewritten == 0
            assert ratio == 1.0
            assert detected
        elif strategy != "(clean)":
            # Per-occurrence identification loses votes to unification.
            assert ratio < 1.0, row
