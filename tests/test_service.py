"""The HTTP service boundary: protocol, golden equivalence, resilience.

Four contracts:

* **Protocol** — ``WmXMLService.dispatch`` maps every request to the
  versioned ``wmxml-response-v1`` envelope, and every failure to the
  stable ``code`` slug + HTTP status from the one table in
  :mod:`repro.errors` (no traceback ever crosses the wire).
* **Interchangeability** — ``WmXMLClient`` and ``Pipeline`` are the
  same pipeline behind two transports: embeds and detects routed
  through a live loopback daemon are *bit-identical* to local results,
  including the PR 1 golden vectors and a batch served by the process
  pool (``processes=2``).
* **Concurrency** — ThreadingHTTPServer + compiled-pipeline thread
  safety: parallel clients all get the identical bytes.
* **Resilience** — the client retries connection-refused (a daemon
  still starting) and surfaces remote errors with their codes.
"""

import hashlib
import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import Pipeline, WmXMLSystem
from repro.datasets import bibliography
from repro.errors import WmXMLError
from repro.service import (
    FINGERPRINT_HEADER,
    PROTOCOL_HEADER,
    REQUEST_FORMAT,
    RESPONSE_FORMAT,
    RemoteServiceError,
    ServiceUnavailableError,
    WmXMLClient,
    WmXMLService,
    running_server,
)
from repro.xmlmodel import serialize

KEY = "golden-key-bib"
MESSAGE = "(c) golden"

#: The PR 1 golden sha of the marked bibliography (books=60, seed=1234,
#: gamma=2, key/message above) — the same constant
#: ``tests/test_golden_vectors.py`` locks locally, here re-locked
#: *through the HTTP boundary*.
GOLDEN_MARKED_SHA = (
    "e4be42bf4221ef09cf9fcfd618cb373c773758bea13c6b4206fce51d229e3833")
GOLDEN_RECORD_SHA = (
    "f560a2be927e49a15d9bf452b13fe5e3f5031a72147a446c4d96c48bf0ce303d")


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _request_body(**fields) -> bytes:
    return json.dumps({"format": REQUEST_FORMAT, **fields}).encode()


@pytest.fixture(scope="module")
def golden_text():
    return serialize(bibliography.generate_document(
        bibliography.BibliographyConfig(books=60, editors=6, seed=1234)))


@pytest.fixture(scope="module")
def system():
    system = WmXMLSystem(KEY)
    system.register("books", bibliography.default_scheme(2))
    return system


@pytest.fixture(scope="module")
def local(system, golden_text):
    """The local reference: one fused serial embed of the golden doc."""
    return system.pipeline("books").embed_many(
        [golden_text], MESSAGE, output="xml")[0]


@pytest.fixture(scope="module")
def service(system):
    return WmXMLService(system, processes=2)


@pytest.fixture(scope="module")
def live(service):
    """A real loopback daemon (batch endpoints pool over 2 workers)."""
    with running_server(service) as server:
        yield f"http://127.0.0.1:{server.server_address[1]}"


@pytest.fixture(scope="module")
def client(live):
    return WmXMLClient(live, scheme="books")


class TestDispatchProtocol:
    """The pure routing/error surface — no sockets involved."""

    def test_healthz(self, service, system):
        status, payload, headers = service.dispatch("GET", "/v1/healthz")
        assert status == 200
        assert payload["format"] == RESPONSE_FORMAT
        assert payload["ok"] is True
        assert payload["status"] == "ok"
        assert payload["schemes"] == ["books"]
        assert payload["key_fingerprint"] == system.key_fingerprint
        assert headers[PROTOCOL_HEADER] == RESPONSE_FORMAT

    def test_unknown_endpoint_is_not_found(self, service):
        status, payload, _ = service.dispatch("GET", "/v1/nope")
        assert status == 404
        assert payload["ok"] is False
        assert payload["error"]["code"] == "not-found"

    def test_wrong_method_is_405(self, service):
        for method, path in [("GET", "/v1/embed"), ("POST", "/v1/healthz"),
                             ("POST", "/v1/schemes")]:
            status, payload, _ = service.dispatch(method, path, b"{}")
            assert status == 405
            assert payload["error"]["code"] == "method-not-allowed"

    def test_malformed_json_body(self, service):
        status, payload, _ = service.dispatch("POST", "/v1/embed",
                                              b"{not json")
        assert status == 400
        assert payload["error"]["code"] == "malformed-request"

    def test_wrong_protocol_version_rejected(self, service):
        body = json.dumps({"format": "wmxml-request-v9",
                           "scheme": "books"}).encode()
        status, payload, _ = service.dispatch("POST", "/v1/embed", body)
        assert status == 400
        assert payload["error"]["code"] == "unsupported-protocol"

    def test_missing_field_named_in_error(self, service):
        status, payload, _ = service.dispatch(
            "POST", "/v1/embed", _request_body(scheme="books"))
        assert status == 400
        assert payload["error"]["code"] == "malformed-request"
        assert "message" in payload["error"]["message"]

    def test_unknown_scheme_is_404(self, service, golden_text):
        status, payload, _ = service.dispatch(
            "POST", "/v1/embed",
            _request_body(scheme="nope", document=golden_text,
                          message=MESSAGE))
        assert status == 404
        assert payload["error"]["code"] == "unknown-scheme"

    def test_bad_xml_document_maps_to_syntax_code(self, service):
        status, payload, _ = service.dispatch(
            "POST", "/v1/embed",
            _request_body(scheme="books", document="<broken",
                          message=MESSAGE))
        assert status == 400
        assert payload["error"]["code"] == "xml-syntax"

    def test_bad_record_maps_to_record_code(self, service, golden_text):
        status, payload, _ = service.dispatch(
            "POST", "/v1/detect",
            _request_body(scheme="books", document=golden_text,
                          record={"format": "nope"}))
        assert status == 400
        assert payload["error"]["code"] == "bad-record"

    def test_bad_strategy_rejected(self, service, golden_text, local):
        status, payload, _ = service.dispatch(
            "POST", "/v1/detect",
            _request_body(scheme="books", document=golden_text,
                          record=local.record.to_dict(),
                          strategy="quantum"))
        assert status == 400
        assert payload["error"]["code"] == "malformed-request"

    def test_oversize_body_is_413(self, system):
        small = WmXMLService(system, max_body_bytes=64)
        status, payload, _ = small.dispatch("POST", "/v1/embed",
                                            b"x" * 65)
        assert status == 413
        assert payload["error"]["code"] == "oversize-body"

    def test_scheme_get_supports_etag_revalidation(self, service):
        status, payload, headers = service.dispatch("GET",
                                                    "/v1/schemes/books")
        assert status == 200
        etag = headers["ETag"]
        assert etag == f'"{payload["fingerprint"]}"'
        status, payload, headers = service.dispatch(
            "GET", "/v1/schemes/books", b"",
            {"If-None-Match": etag})
        assert status == 304
        assert payload is None
        assert headers["ETag"] == etag
        # RFC 7232 forms proxies actually send: weak validators,
        # lists, and '*' must all revalidate too.
        for header in (f"W/{etag}", f'"other", {etag}', "*"):
            status, _, _ = service.dispatch(
                "GET", "/v1/schemes/books", b"",
                {"If-None-Match": header})
            assert status == 304, header
        status, _, _ = service.dispatch(
            "GET", "/v1/schemes/books", b"",
            {"If-None-Match": '"stale"'})
        assert status == 200

    def test_put_scheme_registers(self, system):
        service = WmXMLService(system)
        body = json.dumps(bibliography.default_scheme(4).to_dict()).encode()
        status, payload, _ = service.dispatch("PUT", "/v1/schemes/dense",
                                              body)
        assert status == 200
        assert payload["registered"] == "dense"
        assert "dense" in system.scheme_names()
        assert (payload["fingerprint"]
                == system.list_schemes()["dense"])

    def test_put_scheme_beyond_ceiling_is_registry_full(self):
        # PUT pins each name for the daemon's life; a wire client must
        # not be able to grow the registry (and its pipelines) forever.
        # The ceiling bounds *wire* additions — boot-time schemes
        # (here: 'books') never count against it.
        system = WmXMLSystem(KEY)
        system.register("books", bibliography.default_scheme(2))
        service = WmXMLService(system, max_schemes=2)
        body = json.dumps(bibliography.default_scheme(4).to_dict()).encode()
        status, _, _ = service.dispatch("PUT", "/v1/schemes/second", body)
        assert status == 200
        status, _, _ = service.dispatch("PUT", "/v1/schemes/third", body)
        assert status == 200
        status, payload, _ = service.dispatch("PUT", "/v1/schemes/fourth",
                                              body)
        assert status == 507
        assert payload["error"]["code"] == "registry-full"
        # Replacing an existing name is always allowed.
        status, _, _ = service.dispatch("PUT", "/v1/schemes/books", body)
        assert status == 200

    def test_concurrent_puts_cannot_race_past_the_ceiling(self):
        # The check + insert is one critical section: N parallel PUTs
        # of distinct names must still land at exactly the ceiling
        # (1 boot scheme + max_schemes wire additions).
        system = WmXMLSystem(KEY)
        system.register("books", bibliography.default_scheme(2))
        service = WmXMLService(system, max_schemes=4)
        body = json.dumps(bibliography.default_scheme(4).to_dict()).encode()
        with ThreadPoolExecutor(max_workers=8) as pool:
            statuses = list(pool.map(
                lambda i: service.dispatch(
                    "PUT", f"/v1/schemes/racer-{i}", body)[0],
                range(8)))
        assert len(system.scheme_names()) == 5
        assert sorted(statuses) == [200] * 4 + [507] * 4

    def test_stats_count_requests_and_errors(self, system):
        service = WmXMLService(system)
        service.dispatch("GET", "/v1/healthz")
        service.dispatch("GET", "/v1/nope")
        status, payload, _ = service.dispatch("GET", "/v1/stats")
        assert status == 200
        assert payload["requests"] == 2
        assert payload["errors"] == 1
        assert payload["endpoints"]["GET /v1/healthz"]["calls"] == 1

    def test_scheme_paths_share_one_stats_bucket(self, system):
        service = WmXMLService(system)
        service.dispatch("GET", "/v1/schemes/books")
        service.dispatch("GET", "/v1/schemes/other")
        _, payload, _ = service.dispatch("GET", "/v1/stats")
        assert payload["endpoints"]["GET /v1/schemes/{name}"]["calls"] == 2

    def test_unrouted_paths_share_one_stats_bucket(self, system):
        # A scanner probing random URLs must not grow the stats dict
        # (and every /v1/stats payload) without bound.
        service = WmXMLService(system)
        for probe in ("/a1", "/a2", "/v1/embedx", "/"):
            service.dispatch("GET", probe)
        _, payload, _ = service.dispatch("GET", "/v1/stats")
        assert payload["endpoints"]["GET (unknown)"]["calls"] == 4
        assert not any("/a1" in name for name in payload["endpoints"])

    def test_half_valid_record_is_bad_record_not_server_fault(
            self, service, golden_text):
        # Right format tag, missing fields: malformed client input,
        # so 400 bad-record — not a 500 that pollutes error stats.
        status, payload, _ = service.dispatch(
            "POST", "/v1/detect",
            _request_body(scheme="books", document=golden_text,
                          record={"format": "wmxml-record-v1"}))
        assert status == 400
        assert payload["error"]["code"] == "bad-record"

    def test_non_wmxml_exception_becomes_internal_error_envelope(
            self, system, golden_text, monkeypatch):
        # A genuine daemon bug must still come back as an envelope,
        # never a crashed handler thread / dropped connection.
        service = WmXMLService(system)
        monkeypatch.setattr(service.system, "pipeline",
                            lambda *a, **k: (_ for _ in ()).throw(
                                RuntimeError("boom")))
        status, payload, headers = service.dispatch(
            "POST", "/v1/embed",
            _request_body(scheme="books", document=golden_text,
                          message=MESSAGE))
        assert status == 500
        assert payload["ok"] is False
        assert payload["error"]["code"] == "internal-error"
        assert "RuntimeError" in payload["error"]["message"]
        assert headers[PROTOCOL_HEADER] == RESPONSE_FORMAT


class TestGoldenVectorsThroughHTTP:
    """Client and pipeline are interchangeable, bit for bit."""

    def test_embed_matches_local_pipeline_and_golden_sha(
            self, client, local, golden_text):
        remote = client.embed(golden_text, MESSAGE)
        assert remote.xml == local.xml
        assert remote.record.to_dict() == local.record.to_dict()
        assert remote.stats.to_dict() == local.stats.to_dict()
        assert _sha256(remote.xml) == GOLDEN_MARKED_SHA
        record_json = json.dumps(remote.record.to_dict(), sort_keys=True)
        assert _sha256(record_json) == GOLDEN_RECORD_SHA

    def test_detect_matches_local_pipeline(self, client, system, local):
        remote = client.detect(local.xml, local.record, expected=MESSAGE)
        local_outcome = system.pipeline("books").detect_many(
            [(local.xml, local.record)], expected=MESSAGE)[0]
        assert remote.to_dict() == local_outcome.to_dict()
        assert remote.detected

    @pytest.mark.parametrize("strategy", ["scan", "indexed", "auto"])
    def test_every_strategy_crosses_the_wire(self, client, system, local,
                                             strategy):
        remote = client.detect(local.xml, local.record, expected=MESSAGE,
                               strategy=strategy)
        local_outcome = system.pipeline("books").detect_many(
            [(local.xml, local.record)], expected=MESSAGE,
            strategy=strategy)[0]
        assert remote.to_dict() == local_outcome.to_dict()

    def test_batch_embed_through_the_process_pool(self, client, system):
        # The acceptance batch: served by the daemon's processes=2
        # pool, bit-identical to the local serial embed of the same
        # fleet.
        texts = [
            serialize(bibliography.generate_document(
                bibliography.BibliographyConfig(books=12, editors=3,
                                                seed=2000 + index)))
            for index in range(6)
        ]
        remote = client.embed_many(texts, MESSAGE)
        local = system.pipeline("books").embed_many(texts, MESSAGE,
                                                    output="xml")
        assert [item.xml for item in remote] == [item.xml
                                                 for item in local]
        assert ([item.record.to_dict() for item in remote]
                == [item.record.to_dict() for item in local])

    def test_batch_detect_with_shared_record(self, client, system, local):
        items = [(local.xml, local.record)] * 5
        remote = client.detect_many(items, expected=MESSAGE)
        local_outcomes = system.pipeline("books").detect_many(
            items, expected=MESSAGE)
        assert ([outcome.to_dict() for outcome in remote]
                == [outcome.to_dict() for outcome in local_outcomes])
        assert all(outcome.detected for outcome in remote)

    def test_inline_scheme_request(self, live, golden_text, local):
        # A caller may ship the wmxml-scheme-v1 object inline instead
        # of naming a registered deployment; same pipeline, same bytes.
        anonymous = WmXMLClient(
            live, scheme=bibliography.default_scheme(2).to_dict())
        remote = anonymous.embed(golden_text, MESSAGE)
        assert remote.xml == local.xml

    def test_reorganized_copy_detects_through_the_wire(self, client,
                                                       system, local):
        # The paper's Figure-2 case: reorganize the marked copy into
        # another shape, then detect remotely with shape= — verdict
        # must match the local pipeline's exactly.
        from repro.datasets.bibliography import editor_shape
        from repro.rewriting import reorganize

        target = editor_shape()
        reorganized = reorganize(local.to_document(),
                                 system.pipeline("books").shape,
                                 target).document
        remote = client.detect(reorganized, local.record,
                               expected=MESSAGE, shape=target)
        local_outcome = system.pipeline("books").detect(
            reorganized, local.record, expected=MESSAGE, shape=target)
        assert remote.detected
        assert remote.to_dict() == local_outcome.to_dict()

    def test_fingerprint_header_matches_registry(self, live, client,
                                                 golden_text):
        body = _request_body(scheme="books", document=golden_text,
                             message=MESSAGE)
        request = urllib.request.Request(
            f"{live}/v1/embed", data=body, method="POST",
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=30) as response:
            fingerprint = response.headers[FINGERPRINT_HEADER]
        assert fingerprint == client.list_schemes()["books"]


class TestSchemeRegistryOverHTTP:
    def test_put_get_round_trip(self, client):
        scheme = bibliography.default_scheme(3)
        fingerprint = client.put_scheme("sparse", scheme)
        assert client.list_schemes()["sparse"] == fingerprint
        assert client.get_scheme("sparse").to_dict() == scheme.to_dict()

    def test_get_unknown_scheme_raises_with_code(self, client):
        with pytest.raises(RemoteServiceError) as excinfo:
            client.get_scheme("never-registered")
        assert excinfo.value.code == "unknown-scheme"
        assert excinfo.value.http_status == 404

    def test_remote_errors_are_wmxml_errors(self, client):
        with pytest.raises(WmXMLError):
            client.get_scheme("never-registered")

    def test_awkward_scheme_names_round_trip(self, client):
        # '#' would be a fragment and ' ' a malformed request line if
        # the client did not percent-encode (and the server unquote).
        scheme = bibliography.default_scheme(3)
        name = "v2#prod candidate"
        fingerprint = client.put_scheme(name, scheme)
        assert client.list_schemes()[name] == fingerprint
        assert client.get_scheme(name).to_dict() == scheme.to_dict()


class TestConcurrentRequests:
    def test_parallel_clients_get_identical_bytes(self, live, system,
                                                  golden_text, local):
        client = WmXMLClient(live, scheme="books")
        expected_detect = system.pipeline("books").detect_many(
            [(local.xml, local.record)], expected=MESSAGE)[0].to_dict()

        def embed_round(_):
            return client.embed(golden_text, MESSAGE).xml

        def detect_round(_):
            return client.detect(local.xml, local.record,
                                 expected=MESSAGE).to_dict()

        with ThreadPoolExecutor(max_workers=8) as pool:
            embeds = list(pool.map(embed_round, range(8)))
            detects = list(pool.map(detect_round, range(8)))
        assert all(xml == local.xml for xml in embeds)
        assert all(outcome == expected_detect for outcome in detects)


class TestErrorMappingOverHTTP:
    def test_unknown_scheme_maps_to_404(self, client, golden_text):
        with pytest.raises(RemoteServiceError) as excinfo:
            client.embed(golden_text, MESSAGE, scheme="nope")
        assert excinfo.value.code == "unknown-scheme"
        assert excinfo.value.http_status == 404

    def test_malformed_request_maps_to_400(self, live):
        request = urllib.request.Request(
            f"{live}/v1/embed", data=b"{broken", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["code"] == "malformed-request"

    def test_invalid_content_length_maps_to_400(self, live):
        # '-1' would make rfile.read block until EOF (bypassing the
        # body ceiling); 'abc' would desync the keep-alive stream.
        import http.client

        host = live[len("http://"):]
        for bogus in ("-1", "abc"):
            conn = http.client.HTTPConnection(host, timeout=10)
            try:
                conn.putrequest("POST", "/v1/embed")
                conn.putheader("Content-Type", "application/json")
                conn.putheader("Content-Length", bogus)
                conn.endheaders()
                response = conn.getresponse()
                payload = json.loads(response.read())
            finally:
                conn.close()
            assert response.status == 400, bogus
            assert payload["error"]["code"] == "malformed-request"

    def test_healthz_and_stats_do_not_leak_envelope_keys(self, client):
        for payload in (client.healthz(), client.stats()):
            assert "format" not in payload
            assert "ok" not in payload

    def test_handler_refusals_show_up_in_stats(self, system):
        # Oversize/invalid-framing refusals never reach dispatch but
        # must still count: an operator polling /v1/stats has to see
        # that the daemon is refusing traffic.
        with running_server(WmXMLService(system, max_body_bytes=64)) \
                as server:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            client = WmXMLClient(url, scheme="books", retries=0)
            with pytest.raises(RemoteServiceError):
                client.embed("<db>" + "x" * 128 + "</db>", MESSAGE)
            # The snapshot is taken while the stats request itself is
            # still in flight, so it shows exactly the one refusal —
            # bucketed separately so real endpoint latency stays clean.
            stats = client.stats()
            assert stats["errors"] == 1
            assert stats["requests"] == 1
            assert "POST /v1/embed (refused)" in stats["endpoints"]
            assert "POST /v1/embed" not in stats["endpoints"]

    def test_chunked_transfer_encoding_is_refused_and_closed(self, live):
        # Chunk bytes would stay unread on the keep-alive stream and
        # desync the next request, so the daemon refuses and closes.
        import http.client

        host = live[len("http://"):]
        conn = http.client.HTTPConnection(host, timeout=10)
        try:
            conn.putrequest("POST", "/v1/embed")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Transfer-Encoding", "chunked")
            conn.endheaders()
            response = conn.getresponse()
            payload = json.loads(response.read())
        finally:
            conn.close()
        assert response.status == 400
        assert payload["error"]["code"] == "malformed-request"
        assert response.getheader("Connection") == "close"

    def test_raw_bit_watermark_gets_a_clear_client_side_error(self, client,
                                                              golden_text):
        # The -v1 protocol carries text messages only; a 3-bit
        # Watermark must fail with a clear wire-limitation error, not
        # a misleading detect-time WatermarkDecodeError.
        from repro.core.watermark import Watermark
        from repro.service.protocol import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            client.embed(golden_text, Watermark([1, 0, 1]))
        assert "text messages" in str(excinfo.value)

    def test_non_json_success_response_maps_to_wmxml_error(self):
        # A proxy splash page answering 200 text/html must not leak a
        # raw JSONDecodeError through the one-handler contract.
        from repro.service.protocol import ServiceError

        with pytest.raises(ServiceError):
            WmXMLClient._decode(b"<html>welcome to the hotel wifi</html>")
        with pytest.raises(ServiceError):
            WmXMLClient._decode(b'["a", "list"]')

    def test_shared_pool_creation_is_thread_safe(self):
        # Concurrent batch requests on a fresh daemon must not race
        # two executors into existence (the loser's workers leak).
        import repro.parallel as parallel

        parallel.shutdown_pools()
        try:
            with ThreadPoolExecutor(max_workers=8) as threads:
                pools = list(threads.map(
                    lambda _: parallel.shared_pool(2), range(8)))
            assert all(pool is pools[0] for pool in pools)
        finally:
            parallel.shutdown_pools()

    def test_truncated_error_body_still_maps_to_remote_error(self):
        # The daemon dies after the error status line but before the
        # body: read() raises, but the SDK caller must still get a
        # WmXMLError.
        import io

        from repro.service.client import _remote_error

        class DyingBody(io.RawIOBase):
            def readable(self):
                return True

            def read(self, *args):
                raise ConnectionResetError(104, "Connection reset")

        error = urllib.error.HTTPError(
            "http://127.0.0.1:1/v1/embed", 400, "Bad Request", {},
            DyingBody())
        mapped = _remote_error(error)
        assert isinstance(mapped, RemoteServiceError)
        assert mapped.http_status == 400

    def test_non_object_json_error_body_maps_to_remote_error(self):
        # An HTTP error whose body is valid JSON but not an object (a
        # proxy answering '["not found"]') must still come back as a
        # RemoteServiceError, not an AttributeError.
        import io

        from repro.service.client import _remote_error

        for body in (b'["not found"]', b'"nope"', b"<html>504</html>"):
            error = urllib.error.HTTPError(
                "http://127.0.0.1:1/v1/embed", 404, "Not Found", {},
                io.BytesIO(body))
            mapped = _remote_error(error)
            assert isinstance(mapped, RemoteServiceError)
            assert mapped.code == "remote-error"
            assert mapped.http_status == 404

    def test_handler_sets_a_socket_timeout(self):
        # A client that opens a connection and never sends its claimed
        # body must not pin a server thread forever.
        from repro.service.app import _Handler

        assert _Handler.timeout and 0 < _Handler.timeout <= 300

    def test_head_healthz_answers_like_get_minus_the_body(self, live):
        # Load balancers probe with HEAD; it must not be an HTML 501.
        request = urllib.request.Request(f"{live}/v1/healthz",
                                         method="HEAD")
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
            assert int(response.headers["Content-Length"]) > 0
            assert response.read() == b""

    def test_unbound_verbs_still_get_an_envelope(self, live):
        # DELETE/PATCH must route through dispatch and come back as a
        # method-not-allowed envelope, not http.server's HTML 501.
        for method in ("DELETE", "PATCH"):
            request = urllib.request.Request(
                f"{live}/v1/schemes/books", method=method)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            assert excinfo.value.code == 405
            payload = json.loads(excinfo.value.read())
            assert payload["error"]["code"] == "method-not-allowed"

    def test_oversize_body_maps_to_413(self, system):
        with running_server(WmXMLService(system, max_body_bytes=128)) \
                as server:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            client = WmXMLClient(url, scheme="books", retries=0)
            with pytest.raises(RemoteServiceError) as excinfo:
                client.embed("<db>" + "x" * 256 + "</db>", MESSAGE)
            assert excinfo.value.code == "oversize-body"
            assert excinfo.value.http_status == 413


class TestClientRetry:
    def test_connection_refused_exhausts_into_service_unavailable(self):
        import socket

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        client = WmXMLClient(f"http://127.0.0.1:{port}", retries=2,
                             retry_delay=0.01)
        start = time.perf_counter()
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.healthz()
        assert "attempt" in str(excinfo.value)
        assert time.perf_counter() - start < 5

    def test_read_timeout_maps_to_wmxml_error(self, monkeypatch):
        # A read timeout escapes urllib as a bare TimeoutError; the
        # client must keep the one-handler (WmXMLError) contract.
        import urllib.request as urlreq

        def slow(*args, **kwargs):
            raise TimeoutError("timed out")

        monkeypatch.setattr(urlreq, "urlopen", slow)
        client = WmXMLClient("http://127.0.0.1:1", timeout=0.5)
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.healthz()
        assert "0.5" in str(excinfo.value)

    def test_broken_pipe_maps_to_connection_closed(self, monkeypatch):
        # A mid-request close (daemon died, or it refused an oversize
        # body 413-without-reading) must not masquerade as "no daemon
        # answered" — but its cause is ambiguous, so code/status stay
        # neutral rather than claiming an oversize refusal.
        import urllib.error
        import urllib.request as urlreq

        def broken(*args, **kwargs):
            raise urllib.error.URLError(BrokenPipeError(32, "Broken pipe"))

        monkeypatch.setattr(urlreq, "urlopen", broken)
        client = WmXMLClient("http://127.0.0.1:1", scheme="books")
        with pytest.raises(RemoteServiceError) as excinfo:
            client.embed("<db><x/></db>", MESSAGE)
        assert excinfo.value.code == "connection-closed"
        assert excinfo.value.http_status == 502

    def test_empty_batches_short_circuit_like_local_pipeline(self):
        # Pipeline.embed_many([])/detect_many([]) return []; the remote
        # twin must too — without even needing a reachable daemon.
        client = WmXMLClient("http://127.0.0.1:1", scheme="books",
                             retries=0)
        assert client.embed_many([], MESSAGE) == []
        assert client.detect_many([]) == []

    def test_remote_disconnected_is_retried_not_misdiagnosed(
            self, monkeypatch):
        # A daemon restarting behind a supervisor accepts then closes:
        # that is retryable, and must never surface as the misleading
        # connection-closed/413 oversize diagnosis.
        import http.client
        import urllib.error
        import urllib.request as urlreq

        from repro.service import client as client_module

        calls = []

        def disconnecting(*args, **kwargs):
            calls.append(1)
            raise urllib.error.URLError(
                http.client.RemoteDisconnected("closed"))

        monkeypatch.setattr(urlreq, "urlopen", disconnecting)
        monkeypatch.setattr(client_module.time, "sleep", lambda _: None)
        client = WmXMLClient("http://127.0.0.1:1", retries=2)
        with pytest.raises(ServiceUnavailableError):
            client.healthz()
        assert len(calls) == 3  # initial + 2 retries

    def test_mid_response_failure_maps_to_wmxml_error(self, monkeypatch):
        # response.read() errors escape urllib unwrapped; the client
        # must still honour the one-handler contract.
        import urllib.request as urlreq

        class TruncatedResponse:
            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def read(self):
                raise ConnectionResetError(104, "Connection reset")

        monkeypatch.setattr(urlreq, "urlopen",
                            lambda *a, **k: TruncatedResponse())
        client = WmXMLClient("http://127.0.0.1:1")
        with pytest.raises(ServiceUnavailableError) as excinfo:
            client.healthz()
        assert "mid-response" in str(excinfo.value)

    def test_backoff_sleep_is_capped(self, monkeypatch):
        # retries=30 must mean "wait longer", not "sleep for hours":
        # the exponential ramp stops doubling at RETRY_DELAY_CAP.
        import socket

        from repro.service import client as client_module

        with socket.socket() as sock:
            sock.bind(("127.0.0.1", 0))
            port = sock.getsockname()[1]
        sleeps = []
        monkeypatch.setattr(client_module.time, "sleep", sleeps.append)
        client = WmXMLClient(f"http://127.0.0.1:{port}", retries=30,
                             retry_delay=0.1)
        with pytest.raises(ServiceUnavailableError):
            client.healthz()
        assert len(sleeps) == 30
        assert max(sleeps) == client_module.RETRY_DELAY_CAP

    def test_retry_survives_daemon_startup_lag(self, system, monkeypatch):
        # Deterministic startup lag: the first three connection
        # attempts are refused, then the real (already-bound) daemon
        # answers — no probe-close-rebind port race.
        import urllib.error
        import urllib.request as urlreq

        refusals = {"left": 3}
        real_urlopen = urlreq.urlopen

        def refusing_then_real(request, **kwargs):
            if refusals["left"]:
                refusals["left"] -= 1
                raise urllib.error.URLError(
                    ConnectionRefusedError(111, "Connection refused"))
            return real_urlopen(request, **kwargs)

        monkeypatch.setattr(urlreq, "urlopen", refusing_then_real)
        with running_server(WmXMLService(system)) as server:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            client = WmXMLClient(url, retries=20, retry_delay=0.01)
            health = client.healthz()
            assert health["status"] == "ok"
            assert refusals["left"] == 0

    def test_remote_error_pickles(self):
        # Worker exceptions are pickled back from process pools; the
        # three-argument __init__ must survive the round-trip.
        import pickle

        error = RemoteServiceError("unknown-scheme", "nope", 404)
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, RemoteServiceError)
        assert clone.code == "unknown-scheme"
        assert clone.http_status == 404
        assert str(clone) == "nope"


class TestServeCommandHelpers:
    def test_scheme_spec_parsing(self, tmp_path):
        from repro.cli import _scheme_spec

        assert _scheme_spec("books=/tmp/s.json") == ("books", "/tmp/s.json")
        assert _scheme_spec("/tmp/catalogue.json") == ("catalogue",
                                                       "/tmp/catalogue.json")
        # A bare path whose directories contain '=' is not a NAME=path.
        assert _scheme_spec("/data/run=3/books.json") == (
            "books", "/data/run=3/books.json")
        # An existing file always wins over NAME=path splitting.
        tricky = tmp_path / "a=b.json"
        tricky.write_text("{}")
        assert _scheme_spec(str(tricky)) == ("a=b", str(tricky))

    def test_build_service_registers_named_schemes(self, tmp_path):
        import argparse

        from repro.cli import build_service

        path = tmp_path / "scheme.json"
        bibliography.default_scheme(2).save(str(path))
        args = argparse.Namespace(
            key="serve-secret", alpha=1e-3, processes=3,
            max_body_bytes=1024, scheme_files=[f"books={path}", str(path)])
        service = build_service(args)
        assert service.system.scheme_names() == ["books", "scheme"]
        assert service.processes == 3
        assert service.max_body_bytes == 1024

    def test_build_service_rejects_duplicate_names(self, tmp_path):
        # Two specs resolving to one registry name must fail loudly:
        # replace semantics would silently serve only the last one.
        import argparse

        from repro.cli import build_service

        for sub in ("prod", "staging"):
            (tmp_path / sub).mkdir()
            bibliography.default_scheme(2).save(
                str(tmp_path / sub / "books.json"))
        args = argparse.Namespace(
            key="k", alpha=1e-3, processes=None, max_body_bytes=None,
            scheme_files=[str(tmp_path / "prod" / "books.json"),
                          str(tmp_path / "staging" / "books.json")])
        with pytest.raises(SystemExit) as excinfo:
            build_service(args)
        assert "duplicate scheme name 'books'" in str(excinfo.value)

    def test_build_service_rejects_bad_scheme_file(self, tmp_path):
        import argparse

        from repro.cli import build_service

        path = tmp_path / "bad.json"
        path.write_text("{}")
        args = argparse.Namespace(
            key="k", alpha=1e-3, processes=None, max_body_bytes=1024,
            scheme_files=[str(path)])
        with pytest.raises(SystemExit):
            build_service(args)
