"""Additional XPath engine coverage: axes, mixed expressions, evaluator
corner cases not exercised by the main test files."""

import pytest

from repro.xmlmodel import parse
from repro.xpath import (
    XPathTypeError,
    compile_xpath,
    evaluate_xpath,
    select,
    select_strings,
)

DOC = parse(
    "<library>"
    '<section name="db">'
    "<shelf><code>A1</code>"
    "<item><title>Alpha</title><pages>100</pages></item>"
    "<item><title>Beta</title><pages>250</pages></item>"
    "</shelf>"
    "<shelf><code>A2</code>"
    "<item><title>Gamma</title><pages>50</pages></item>"
    "</shelf>"
    "</section>"
    '<section name="net">'
    "<shelf><code>B1</code>"
    "<item><title>Delta</title><pages>300</pages></item>"
    "</shelf>"
    "</section>"
    "</library>"
)


class TestDeepNavigation:
    def test_multi_level_predicates(self):
        titles = select_strings(
            DOC,
            "/library/section[@name='db']/shelf[code='A1']/item/title")
        assert titles == ["Alpha", "Beta"]

    def test_descendant_with_predicate(self):
        assert select_strings(DOC, "//item[pages > 200]/title") == \
            ["Beta", "Delta"]

    def test_ancestor_or_self(self):
        items = select(DOC, "//item[title='Gamma']")
        sections = select(items[0], "ancestor-or-self::section")
        assert [s.get_attribute("name") for s in sections] == ["db"]

    def test_parent_attribute_chain(self):
        names = select_strings(DOC, "//shelf[code='B1']/../@name")
        assert names == ["net"]

    def test_double_descendant(self):
        assert len(select(DOC, "//shelf//title")) == 4

    def test_relative_descendant_from_context(self):
        section = select(DOC, "/library/section[1]")[0]
        assert len(select(section, ".//item")) == 3

    def test_self_axis_with_name(self):
        section = select(DOC, "/library/section[1]")[0]
        assert select(section, "self::section") == [section]
        assert select(section, "self::library") == []


class TestExpressionCorners:
    def test_count_over_union(self):
        value = evaluate_xpath(DOC, "count(//code | //title)")
        assert value == 7.0

    def test_sum_of_pages(self):
        assert evaluate_xpath(DOC, "sum(//pages)") == 700.0

    def test_arithmetic_with_node_sets(self):
        value = evaluate_xpath(
            DOC, "sum(//pages) div count(//item)")
        assert value == 175.0

    def test_boolean_coercion_in_predicates(self):
        # Non-empty node-set predicate keeps the node.
        assert len(select(DOC, "//shelf[item]")) == 3
        assert select(DOC, "//shelf[missing]") == []

    def test_string_functions_on_paths(self):
        value = evaluate_xpath(
            DOC, "concat(//section[1]/@name, '-', //section[2]/@name)")
        assert value == "db-net"

    def test_normalize_space_in_predicate(self):
        doc = parse("<a><b>  x  </b></a>")
        assert len(select(doc, "/a/b[normalize-space()='x']")) == 1

    def test_numeric_equality_across_types(self):
        assert evaluate_xpath(DOC, "//pages = 100") is True
        assert evaluate_xpath(DOC, "//pages = 101") is False
        assert evaluate_xpath(DOC, "100 = //pages") is True

    def test_not_equal_node_set_semantics(self):
        # '!=' is existential too: some pages differ from 100.
        assert evaluate_xpath(DOC, "//pages != 100") is True

    def test_relational_flip(self):
        assert evaluate_xpath(DOC, "400 > //pages") is True
        assert evaluate_xpath(DOC, "10 > //pages") is False

    def test_union_of_unions(self):
        nodes = select(DOC, "//code | //title | /library")
        assert nodes[0].tag == "library"  # document order

    def test_mod_and_div_precedence(self):
        assert evaluate_xpath(DOC, "7 mod 4 * 2") == 6.0

    def test_negative_positions_never_match(self):
        assert select(DOC, "//item[-1]") == []

    def test_fractional_position_never_matches(self):
        assert select(DOC, "//item[1.5]") == []


class TestEvaluatorErrors:
    def test_predicate_on_scalar(self):
        with pytest.raises(XPathTypeError):
            evaluate_xpath(DOC, "(1 + 2)[1]")

    def test_path_after_scalar(self):
        with pytest.raises(XPathTypeError):
            evaluate_xpath(DOC, "(1 + 2)/x")

    def test_union_with_scalar(self):
        with pytest.raises(XPathTypeError):
            evaluate_xpath(DOC, "//item | 3")

    def test_select_strings_on_number(self):
        with pytest.raises(XPathTypeError):
            compile_xpath("1 + 1").select(DOC)


class TestDetachedAndSubtreeContexts:
    def test_query_detached_subtree(self):
        shelf = select(DOC, "//shelf[code='A1']")[0].copy()
        # Absolute paths resolve against the subtree's own root.
        assert select_strings(shelf, "/shelf/item/title") == \
            ["Alpha", "Beta"]

    def test_position_within_subtree(self):
        shelf = select(DOC, "//shelf[code='A1']")[0]
        assert select_strings(shelf, "item[2]/title") == ["Beta"]

    def test_attribute_parent_navigation(self):
        attrs = select(DOC, "//section/@name")
        parents = select(attrs[0], "..")
        assert parents[0].tag == "section"
