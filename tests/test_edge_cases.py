"""Edge cases across the pipeline: empty inputs, extreme parameters,
structural misuse — the failure modes a downstream user will hit."""

import pytest

from repro.attacks import CollusionAttack, ReductionAttack
from repro.core import (
    CarrierSpec,
    KeyIdentifier,
    UsabilityBaseline,
    UsabilityTemplate,
    Watermark,
    WatermarkRecord,
    WatermarkingScheme,
    WmXMLDecoder,
    WmXMLEncoder,
)
from repro.rewriting import LogicalExecutor, LogicalQuery
from repro.semantics import Row, level, shape
from repro.xmlmodel import parse

FLAT = shape("flat", "db", [
    level("item", group_by=["key"], attributes={"key": "key"},
          leaves={"value": "value"}),
])


def make_scheme(gamma=1):
    return WatermarkingScheme(
        shape=FLAT,
        carriers=[CarrierSpec.create("value", "numeric",
                                     KeyIdentifier(("key",)))],
        gamma=gamma)


def make_doc(n=10):
    rows = [Row.from_values({"key": f"k{i}", "value": str(100 + i)})
            for i in range(n)]
    return FLAT.build(rows)


class TestEmptyAndTiny:
    def test_empty_document_embed(self):
        doc = parse("<db/>")
        result = WmXMLEncoder(make_scheme(), "k").embed(
            doc, Watermark.from_message("M"))
        assert result.stats.capacity_groups == 0
        assert len(result.record) == 0

    def test_empty_record_detection(self):
        doc = make_doc()
        record = WatermarkRecord(gamma=1, nbits=8, shape_name="flat",
                                 key_fingerprint="x")
        outcome = WmXMLDecoder("k").detect(doc, record, FLAT,
                                           expected=Watermark([1] * 8))
        assert not outcome.detected
        assert outcome.votes_total == 0

    def test_single_entity_document(self):
        doc = make_doc(1)
        wm = Watermark([1])
        result = WmXMLEncoder(make_scheme(), "k").embed(doc, wm)
        outcome = WmXMLDecoder("k", alpha=0.6).detect(
            result.document, result.record, FLAT, expected=wm)
        assert outcome.votes_matching == outcome.votes_total == 1

    def test_watermark_longer_than_capacity(self):
        # More bits than carrier groups: detection still verifies what
        # was embedded (most positions simply get no votes).
        doc = make_doc(4)
        wm = Watermark.from_message("a long ownership message")
        result = WmXMLEncoder(make_scheme(), "k").embed(doc, wm)
        outcome = WmXMLDecoder("k").detect(result.document, result.record,
                                           FLAT, expected=wm)
        assert outcome.votes_matching == outcome.votes_total == 4
        assert outcome.recovered_fraction < 0.1

    def test_gamma_exceeding_capacity(self):
        doc = make_doc(5)
        result = WmXMLEncoder(make_scheme(gamma=10_000), "k").embed(
            doc, Watermark.from_message("M"))
        # With overwhelming probability nothing is selected.
        assert result.stats.selected_groups <= 1

    def test_executor_on_empty_document(self):
        executor = LogicalExecutor(parse("<db/>"), FLAT)
        assert executor.row_count == 0
        assert executor.execute(LogicalQuery.create(
            "value", {"key": "k0"})) == []


class TestNestingEdges:
    def test_rows_missing_group_field_skipped(self):
        rows = [
            Row.from_values({"key": "a", "value": "1"}),
            Row.from_values({"value": "2"}),  # no key: cannot be placed
        ]
        doc = FLAT.build(rows)
        assert len(doc.root.child_elements("item")) == 1

    def test_empty_relation_builds_bare_root(self):
        doc = FLAT.build([])
        assert doc.root.tag == "db"
        assert doc.root.children == []

    def test_duplicate_key_rows_grouped(self):
        rows = [
            Row.from_values({"key": "a", "value": "1"}),
            Row.from_values({"key": "a", "value": "2"}),
        ]
        doc = FLAT.build(rows)
        items = doc.root.child_elements("item")
        assert len(items) == 1
        values = [el.text for el in items[0].child_elements("value")]
        assert values == ["1", "2"]


class TestCollusionEdges:
    def test_structural_misalignment_rejected(self):
        a = make_doc(5)
        b = make_doc(6)  # different structure
        attack = CollusionAttack([a, b])
        with pytest.raises(ValueError):
            attack.apply(a)

    def test_identical_copies_merge_to_same(self):
        doc = make_doc(5)
        attack = CollusionAttack([doc.copy(), doc.copy()],
                                 strategy="majority")
        report = attack.apply(doc)
        assert report.modifications == 0
        assert report.document.equals(doc)


class TestUsabilityEdges:
    def test_no_templates_reports_zero_queries(self):
        doc = make_doc()
        baseline = UsabilityBaseline.snapshot(doc, FLAT, [])
        report = baseline.evaluate(doc)
        assert report.queries == 0
        assert report.strict == 0.0

    def test_casefold_normalisation(self):
        template = UsabilityTemplate("t", "value", ("key",), casefold=True)
        assert template.normalise({"AbC"}) == {"abc"}
        plain = UsabilityTemplate("t", "value", ("key",))
        assert plain.normalise({"AbC"}) == {"AbC"}

    def test_evaluation_on_empty_document(self):
        doc = make_doc()
        templates = [UsabilityTemplate("t", "value", ("key",))]
        baseline = UsabilityBaseline.snapshot(doc, FLAT, templates)
        report = baseline.evaluate(parse("<db/>"))
        assert report.strict == 0.0
        assert report.destroyed()


class TestAttackEdges:
    def test_reduction_of_empty_document(self):
        report = ReductionAttack(0.5).apply(parse("<db/>"))
        assert report.modifications == 0

    def test_detection_under_total_reduction(self):
        doc = make_doc(10)
        wm = Watermark.from_message("M")
        result = WmXMLEncoder(make_scheme(), "k").embed(doc, wm)
        emptied = ReductionAttack(0.0).apply(result.document).document
        outcome = WmXMLDecoder("k").detect(emptied, result.record, FLAT,
                                           expected=wm)
        assert outcome.votes_total == 0
        assert not outcome.detected
        assert outcome.query_survival == 0.0
