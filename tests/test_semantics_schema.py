"""Unit tests for schema model, validation, and inference."""

import base64

import pytest

from repro.semantics import (
    AttributeDecl,
    Choice,
    ElementDecl,
    LeafType,
    Particle,
    Schema,
    SchemaError,
    SchemaValidationError,
    assert_valid,
    composite,
    infer_leaf_type,
    infer_schema,
    is_valid,
    leaf,
    validate,
)
from repro.xmlmodel import parse
from tests.conftest import DB1_XML


def book_schema() -> Schema:
    return Schema("db", [
        composite("db", [Particle("book", 0, None)]),
        composite(
            "book",
            [
                Particle("title"),
                Particle("author", 1, None),
                Particle("editor", 0, 1),
                Particle("year"),
            ],
            attributes=[AttributeDecl("publisher")],
        ),
        leaf("title"),
        leaf("author"),
        leaf("editor"),
        leaf("year", LeafType.YEAR),
    ])


class TestLeafTypes:
    def test_string_accepts_anything(self):
        assert LeafType.STRING.accepts("anything at all")

    def test_integer(self):
        assert LeafType.INTEGER.accepts("42")
        assert LeafType.INTEGER.accepts("-17")
        assert not LeafType.INTEGER.accepts("4.2")
        assert not LeafType.INTEGER.accepts("abc")

    def test_decimal(self):
        assert LeafType.DECIMAL.accepts("4.2")
        assert LeafType.DECIMAL.accepts("-0.5")
        assert LeafType.DECIMAL.accepts(".5")
        assert LeafType.DECIMAL.accepts("42")
        assert not LeafType.DECIMAL.accepts("4.2.3")

    def test_year(self):
        assert LeafType.YEAR.accepts("1998")
        assert not LeafType.YEAR.accepts("98")
        assert not LeafType.YEAR.accepts("19985")

    def test_date(self):
        assert LeafType.DATE.accepts("2005-08-30")
        assert not LeafType.DATE.accepts("2005-13-30")
        assert not LeafType.DATE.accepts("2005-08-32")
        assert not LeafType.DATE.accepts("30/08/2005")

    def test_base64(self):
        payload = base64.b64encode(b"image bytes").decode("ascii")
        assert LeafType.BASE64.accepts(payload)
        assert not LeafType.BASE64.accepts("not base64!!")


class TestSchemaModel:
    def test_particle_bounds_validated(self):
        with pytest.raises(SchemaError):
            Particle("x", 2, 1)
        with pytest.raises(SchemaError):
            Particle("x", -1)

    def test_choice_needs_two(self):
        with pytest.raises(SchemaError):
            Choice(("only",))

    def test_leaf_and_content_conflict(self):
        with pytest.raises(SchemaError):
            ElementDecl("x", content=(Particle("y"),),
                        leaf_type=LeafType.STRING)

    def test_duplicate_attribute_decl(self):
        with pytest.raises(SchemaError):
            ElementDecl("x", attributes=(
                AttributeDecl("a"), AttributeDecl("a")))

    def test_undeclared_reference(self):
        with pytest.raises(SchemaError):
            Schema("db", [composite("db", [Particle("ghost")])])

    def test_missing_root(self):
        with pytest.raises(SchemaError):
            Schema("db", [leaf("other")])

    def test_duplicate_declaration(self):
        with pytest.raises(SchemaError):
            Schema("db", [leaf("db"), leaf("db")])

    def test_render(self):
        schema = book_schema()
        text = schema.render()
        assert "root db" in text
        assert "author+" in text
        assert "editor?" in text

    def test_matches_children(self):
        schema = book_schema()
        assert schema.matches_children(
            "book", ["title", "author", "author", "editor", "year"])
        assert schema.matches_children("book", ["title", "author", "year"])
        assert not schema.matches_children("book", ["title", "year"])
        assert not schema.matches_children(
            "book", ["author", "title", "year"])
        assert not schema.matches_children("book", ["title", "author",
                                                    "year", "extra"])

    def test_choice_matching(self):
        schema = Schema("r", [
            composite("r", [Choice(("a", "b"), 1, None)]),
            leaf("a"), leaf("b"),
        ])
        assert schema.matches_children("r", ["a", "b", "a"])
        assert not schema.matches_children("r", [])


class TestValidator:
    def test_valid_document(self, db1_doc):
        assert is_valid(book_schema(), db1_doc)
        assert_valid(book_schema(), db1_doc)  # should not raise

    def test_wrong_root(self):
        doc = parse("<database/>")
        violations = validate(book_schema(), doc)
        assert any("root element" in v.message for v in violations)

    def test_missing_required_child(self):
        doc = parse('<db><book publisher="x"><title>T</title>'
                    "<year>1998</year></book></db>")
        violations = validate(book_schema(), doc)
        assert any("content model" in v.message for v in violations)

    def test_missing_required_attribute(self):
        doc = parse("<db><book><title>T</title><author>A</author>"
                    "<year>1998</year></book></db>")
        violations = validate(book_schema(), doc)
        assert any("missing required attribute" in v.message
                   for v in violations)

    def test_undeclared_attribute(self):
        doc = parse('<db><book publisher="x" isbn="123"><title>T</title>'
                    "<author>A</author><year>1998</year></book></db>")
        violations = validate(book_schema(), doc)
        assert any("undeclared attribute" in v.message for v in violations)

    def test_bad_leaf_type(self):
        doc = parse('<db><book publisher="x"><title>T</title>'
                    "<author>A</author><year>not-a-year</year></book></db>")
        violations = validate(book_schema(), doc)
        assert any("not a valid year" in v.message for v in violations)

    def test_text_in_composite(self):
        doc = parse('<db>stray text<book publisher="x"><title>T</title>'
                    "<author>A</author><year>1998</year></book></db>")
        violations = validate(book_schema(), doc)
        assert any("text content" in v.message for v in violations)

    def test_undeclared_element(self):
        schema = Schema("db", [composite("db", [Particle("x", 0, None)]),
                               leaf("x")])
        doc = parse("<db><y/></db>")
        violations = validate(schema, doc)
        assert any("do not match" in v.message or "undeclared" in v.message
                   for v in violations)

    def test_assert_valid_raises(self):
        with pytest.raises(SchemaValidationError) as excinfo:
            assert_valid(book_schema(), parse("<wrong/>"))
        assert excinfo.value.violations

    def test_violation_str(self):
        violations = validate(book_schema(), parse("<wrong/>"))
        assert "/wrong" in str(violations[0])


class TestInference:
    def test_infer_leaf_type_priorities(self):
        assert infer_leaf_type(["1998", "2001"]) is LeafType.YEAR
        assert infer_leaf_type(["1998", "42"]) is LeafType.INTEGER
        assert infer_leaf_type(["1.5", "2"]) is LeafType.DECIMAL
        assert infer_leaf_type(["2005-08-30"]) is LeafType.DATE
        assert infer_leaf_type(["hello"]) is LeafType.STRING
        assert infer_leaf_type([]) is LeafType.STRING

    def test_inferred_schema_validates_source(self):
        doc = parse(DB1_XML)
        schema = infer_schema(doc)
        assert is_valid(schema, doc)

    def test_inferred_occurrences(self):
        doc = parse(DB1_XML)
        schema = infer_schema(doc)
        book = schema.declaration("book")
        rendered = [item.render() for item in book.content]
        # author repeats -> generalised to unbounded.
        assert any(r.startswith("author") and "+" in r or r == "author+"
                   for r in rendered)

    def test_inferred_attribute_required(self):
        doc = parse('<db><b x="1"/><b x="2"/></db>')
        schema = infer_schema(doc)
        decl = schema.declaration("b").attribute("x")
        assert decl.required

    def test_inferred_attribute_optional(self):
        doc = parse('<db><b x="1"/><b/></db>')
        schema = infer_schema(doc)
        decl = schema.declaration("b").attribute("x")
        assert not decl.required

    def test_conflicting_order_falls_back_to_choice(self):
        doc = parse("<db><r><a/><b/></r><r><b/><a/></r></db>")
        schema = infer_schema(doc)
        assert is_valid(schema, doc)

    def test_non_contiguous_repeats(self):
        doc = parse("<db><r><a/><b/><a/></r></db>")
        schema = infer_schema(doc)
        assert is_valid(schema, doc)

    def test_inferred_leaf_types(self):
        doc = parse(DB1_XML)
        schema = infer_schema(doc)
        assert schema.declaration("year").leaf_type is LeafType.YEAR
        assert schema.declaration("title").leaf_type is LeafType.STRING
