"""Unit tests for identity creation and keyed selection."""

import pytest

from repro.core import (
    CarrierSpec,
    FDIdentifier,
    KeyIdentifier,
    KeyedPRF,
    build_carrier_groups,
    identity_string,
    select_groups,
)
from repro.semantics import RecordError
from repro.xmlmodel import parse


def year_carrier():
    return CarrierSpec.create("year", "numeric", KeyIdentifier(("title",)))


def publisher_carrier():
    return CarrierSpec.create(
        "publisher", "categorical", FDIdentifier(("editor",)),
        {"domain": ["mkp", "acm", "springer", "ieee"]})


class TestCarrierSpec:
    def test_create(self):
        carrier = year_carrier()
        assert carrier.field == "year"
        assert carrier.identifier.kind() == "key"

    def test_carrier_in_own_identifier_rejected(self):
        with pytest.raises(RecordError):
            CarrierSpec.create("year", "numeric", KeyIdentifier(("year",)))

    def test_param_map(self):
        carrier = publisher_carrier()
        assert carrier.param_map["domain"][0] == "mkp"

    def test_empty_identifier_rejected(self):
        with pytest.raises(RecordError):
            KeyIdentifier(())
        with pytest.raises(RecordError):
            FDIdentifier(())


class TestIdentityString:
    def test_deterministic_and_order_free(self):
        a = identity_string("year", [("title", "T"), ("author", "A")])
        b = identity_string("year", [("author", "A"), ("title", "T")])
        assert a == b

    def test_distinguishes_fields(self):
        a = identity_string("year", [("title", "T")])
        b = identity_string("price", [("title", "T")])
        assert a != b

    def test_no_separator_ambiguity(self):
        # A value containing delimiter-like characters must never make
        # two different binding sets collide.
        a = identity_string("f", [("x", "a"), ("y", "b")])
        b = identity_string("f", [("x", 'a"],["y","b')])
        c = identity_string("f", [("x", "a\x1fy\x1eb")])
        assert len({a, b, c}) == 3


class TestBuildGroups:
    def test_key_identified_groups(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(rows, [year_carrier()], book_shape)
        assert len(groups) == 3  # one per book title
        assert all(group.size == 1 for group in groups)
        assert all(group.is_consistent() for group in groups)

    def test_fd_identified_folding(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(rows, [publisher_carrier()],
                                      book_shape)
        # Two editors -> two groups; Harrypotter's group folds 2 books.
        assert len(groups) == 2
        sizes = sorted(group.size for group in groups)
        assert sizes == [1, 2]

    def test_fd_group_values_agree(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(rows, [publisher_carrier()],
                                      book_shape)
        folded = next(g for g in groups if g.size == 2)
        assert folded.values == ["mkp", "mkp"]
        assert folded.is_consistent()

    def test_queries_are_logical(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(rows, [year_carrier()], book_shape)
        query = groups[0].query
        assert query.target == "year"
        assert query.conditions[0][0] == "title"

    def test_missing_identifier_field_skips_row(self, book_shape):
        doc = parse("<db><book publisher='x'><title>T</title>"
                    "<year>1998</year></book>"
                    "<book publisher='y'><year>2000</year></book></db>")
        rows = book_shape.shred(doc)
        groups = build_carrier_groups(rows, [year_carrier()], book_shape)
        assert len(groups) == 1  # the title-less book has no identity

    def test_unknown_field_raises(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        bad = CarrierSpec.create("salary", "numeric", KeyIdentifier(("title",)))
        with pytest.raises(RecordError):
            build_carrier_groups(rows, [bad], book_shape)

    def test_attribute_nodes_deduplicated(self, db1_doc, book_shape):
        # Book 1 yields two rows (two authors) sharing one @publisher;
        # the FD group must hold each distinct attribute node once.
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(rows, [publisher_carrier()],
                                      book_shape)
        folded = next(g for g in groups if "Harrypotter" in g.identity)
        assert folded.size == 2  # two books, not three rows

    def test_identity_differs_across_groups(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(
            rows, [year_carrier(), publisher_carrier()], book_shape)
        identities = [group.identity for group in groups]
        assert len(identities) == len(set(identities))


class TestSelection:
    def test_gamma_one_selects_all(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(rows, [year_carrier()], book_shape)
        slots, stats = select_groups(groups, KeyedPRF("k"), 1, 8)
        assert len(slots) == len(groups)
        assert stats.utilisation == 1.0

    def test_bit_indices_in_range(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(rows, [year_carrier()], book_shape)
        slots, _ = select_groups(groups, KeyedPRF("k"), 1, 4)
        assert all(0 <= slot.bit_index < 4 for slot in slots)

    def test_selection_deterministic(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(rows, [year_carrier()], book_shape)
        slots_a, _ = select_groups(groups, KeyedPRF("k"), 2, 8)
        slots_b, _ = select_groups(groups, KeyedPRF("k"), 2, 8)
        assert [s.group.identity for s in slots_a] == \
            [s.group.identity for s in slots_b]

    def test_key_changes_selection(self, db1_doc, book_shape):
        # With enough synthetic groups, two keys select different sets.
        rows = book_shape.shred(db1_doc)
        groups = build_carrier_groups(rows, [year_carrier()], book_shape)
        ids_a = {s.group.identity
                 for s in select_groups(groups, KeyedPRF("k1"), 1, 64)[0]}
        slots_a, _ = select_groups(groups, KeyedPRF("k1"), 1, 64)
        slots_b, _ = select_groups(groups, KeyedPRF("k2"), 1, 64)
        indices_a = [s.bit_index for s in slots_a]
        indices_b = [s.bit_index for s in slots_b]
        assert indices_a != indices_b  # overwhelmingly likely

    def test_stats_empty(self):
        slots, stats = select_groups([], KeyedPRF("k"), 4, 8)
        assert slots == []
        assert stats.utilisation == 0.0
