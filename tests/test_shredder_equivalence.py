"""The single-pass shredder must reproduce the XPath shredder exactly.

``DocumentShape.shred`` walks the tree directly (one pass, child-tag
indexes); ``RecordSpec.shred`` evaluates the compiled field paths per
entity.  Every shape of every dataset profile — clean and reorganised —
must yield identical rows in identical order, with the same backing
nodes, or watermark identities would silently drift.
"""

import pytest

from repro.core.identity import identity_string
from repro.datasets import bibliography, jobs, library
from repro.rewriting import reorganize
from repro.xmlmodel.tree import Element
from repro.xpath.values import AttributeNode


def _profiles():
    bib_doc = bibliography.generate_document(
        bibliography.BibliographyConfig(books=40, editors=5, seed=7))
    jobs_doc = jobs.generate_document(jobs.JobsConfig(jobs=40, seed=7))
    lib_doc = library.generate_document(library.LibraryConfig(
        items=40, seed=7))
    return [
        ("bibliography/book", bib_doc, bibliography.book_shape()),
        ("bibliography/publisher", None, bibliography.publisher_shape()),
        ("bibliography/editor", None, bibliography.editor_shape()),
        ("jobs/listing", jobs_doc, jobs.listing_shape()),
        ("jobs/by-company", None, jobs.by_company_shape()),
        ("jobs/by-city", None, jobs.by_city_shape()),
        ("library/catalogue", lib_doc, library.catalogue_shape()),
        ("library/by-category", None, library.by_category_shape()),
    ]


def _same_node(fast, reference) -> bool:
    if isinstance(fast, AttributeNode) or isinstance(reference, AttributeNode):
        return fast == reference
    return fast is reference


def _assert_rows_equal(fast_rows, reference_rows):
    assert len(fast_rows) == len(reference_rows)
    for fast, reference in zip(fast_rows, reference_rows):
        assert fast.entity is reference.entity
        assert fast.values == reference.values
        assert set(fast.nodes) == set(reference.nodes)
        for name, node in fast.nodes.items():
            assert _same_node(node, reference.nodes[name]), name


def test_fast_shred_matches_xpath_shred_on_every_profile_shape():
    cases = _profiles()
    documents = {}
    for name, document, shape in cases:
        family = name.split("/")[0]
        if document is not None:
            documents[family] = document
    for name, document, shape in cases:
        family = name.split("/")[0]
        base = documents[family]
        if document is None:
            # Reorganise the family's base document into this shape.
            source = next(s for n, d, s in cases
                          if n.split("/")[0] == family and d is not None)
            document = reorganize(base, source, shape).document
        fast = shape.shred(document)
        reference = shape.record_spec.shred(document)
        assert fast, name
        _assert_rows_equal(fast, reference)


def test_fast_shred_on_entity_subtree_matches_xpath():
    document = bibliography.generate_document(
        bibliography.BibliographyConfig(books=10, seed=3))
    shape = bibliography.book_shape()
    entity = document.root.children_by_tag("book")[0]
    # XPath absolute entity paths resolve from the tree root even when
    # handed a mid-tree element; the walker must do the same.
    _assert_rows_equal(shape.shred(entity), shape.record_spec.shred(entity))


def test_fast_shred_foreign_document_yields_nothing():
    shape = bibliography.book_shape()
    foreign = Element("catalog")
    foreign.add_child("entry", text="x")
    from repro.xmlmodel.tree import Document

    assert shape.shred(Document(foreign)) == []


def test_fast_shred_reflects_mutation():
    document = bibliography.generate_document(
        bibliography.BibliographyConfig(books=5, seed=3))
    shape = bibliography.book_shape()
    before = len(shape.shred(document))
    document.root.children_by_tag("book")[0].detach()
    after_rows = shape.shred(document)
    assert len(after_rows) < before
    _assert_rows_equal(after_rows, shape.record_spec.shred(document))


class TestIdentityStringEncoder:
    """The hand-rolled JSON encoder must match json.dumps byte-for-byte."""

    CASES = [
        ("field", [("a", "plain")]),
        ("field", [("b", 'quotes " inside'), ("a", "and 'single'")]),
        ("field", [("k", "back\\slash"), ("k2", "tab\there")]),
        ("field", [("k", "newline\nand\rcarriage")]),
        ("field", [("k", "unicode: åéîøü — 中文 🎉")]),
        ("field", [("k", "control \x01\x1f chars")]),
        ("f", []),
    ]

    @pytest.mark.parametrize("field_name,bindings", CASES)
    def test_matches_json_dumps(self, field_name, bindings):
        import json

        expected = json.dumps([field_name, sorted(bindings)],
                              ensure_ascii=False, separators=(",", ":"))
        assert identity_string(field_name, bindings) == expected
