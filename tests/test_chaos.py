"""The chaos sweep: every fault point against a live daemon.

One scenario per registered fault point, all asserting the same
system-level invariants *after* the fault:

* **No hung request** — every request completes (client timeout would
  fail the test otherwise); failures are clean error envelopes.
* **The daemon survives** — ``/v1/healthz`` answers after the sweep
  and a fresh embed records normally.
* **No partial block** — records and ledger blocks stay paired.
* **Verifiable or cleanly quarantined** — after :meth:`recover`, the
  provenance chain verifies; anything a fault tore off is in
  quarantine, not deleted, not silently repaired.

The sweep is exhaustive by construction: a newly registered fault
point without a scenario here fails ``test_sweep_covers_every_point``.
"""

import json
import threading
import time

import pytest

from repro import faults
from repro.api import WmXMLSystem
from repro.datasets import bibliography
from repro.errors import WmXMLError
from repro.registry import WatermarkRegistry
from repro.service import (
    REQUEST_FORMAT,
    WmXMLClient,
    WmXMLService,
    running_server,
)
from repro.xmlmodel import parse, serialize

KEY = "chaos-key"

#: How each seam is armed during its sweep scenario.  ``times`` keeps
#: the fault transient (the system must *recover*, which a permanently
#: dark disk by definition prevents); ``pool.chunk`` stays armed to
#: prove the serial fallback finishes the batch even when every fresh
#: worker keeps dying.
SCENARIOS = {
    "service.dispatch": dict(mode="raise", times=1),
    "service.response": dict(mode="raise", times=1),
    "pool.chunk": dict(mode="exit", scope="worker"),
    "registry.sqlite.commit": dict(mode="raise", error="sqlite",
                                   times=1),
    "registry.sqlite.read": dict(mode="raise", error="sqlite", times=1),
    "registry.append.torn": dict(mode="raise", error="os", times=1),
    # after=2: corrupt the *last* seal of the 3-document batch.  A
    # corrupted interior seal with blocks already chained on top is
    # tampering by definition (recovery rightly refuses to touch it);
    # the crash-shaped case is the trailing block.
    "ledger.seal": dict(mode="corrupt", times=1, after=2),
}


def _doc_texts(count: int = 3) -> list[str]:
    return [serialize(bibliography.generate_document(
        bibliography.BibliographyConfig(books=12, editors=3,
                                        seed=4000 + i)))
        for i in range(count)]


def _build_service(tmp_path) -> WmXMLService:
    registry = WatermarkRegistry.open(str(tmp_path / "chaos.db"))
    system = WmXMLSystem(KEY, registry=registry, issuer="chaos")
    system.register("books", bibliography.default_scheme(2))
    return WmXMLService(system, processes=2, retry_after=0)


@pytest.fixture(autouse=True)
def clean_slate():
    faults.disarm()
    yield
    faults.disarm()


def test_sweep_covers_every_point():
    """A new seam without a chaos scenario must fail loudly."""
    assert set(SCENARIOS) == set(faults.fault_points())


@pytest.mark.parametrize("point", sorted(SCENARIOS))
def test_fault_sweep(point, tmp_path):
    spec = dict(SCENARIOS[point])
    mode = spec.pop("mode")
    service = _build_service(tmp_path)
    registry = service.system.registry
    texts = _doc_texts()

    with running_server(service, port=0, quiet=True) as server:
        host, port = server.server_address[:2]
        client = WmXMLClient(f"http://{host}:{port}", scheme="books",
                             timeout=60, retries=3, retry_delay=0.01)

        faults.arm(point, mode, **spec)
        # the request mix every scenario runs under fire: a recorded
        # batch issue, a registry query, a health probe — each either
        # succeeds or fails with a *clean envelope*, never a hang
        clean_failures = []
        for action in (
                lambda: client.issue_many(texts, "alice"),
                lambda: client.records(),
                lambda: client.healthz()):
            try:
                action()
            except WmXMLError as error:
                clean_failures.append(error)
        faults.disarm()

        # verifiable or cleanly quarantined — never silently broken.
        # (Recovery runs before new appends, exactly as a restarted
        # daemon would run it at open time.)
        report = registry.recover()
        assert report.ok, (report.verification.reason
                           if report.verification else "not verifiable")

        # the daemon survived: health answers and a fresh embed
        # reaches the ledger
        health = client.healthz()
        assert health["status"] in ("ok", "degraded")
        result = client.issue(texts[0], "bob")
        assert result.record is not None

    # no partial block: records and ledger rows stay paired
    backend = registry.backend
    assert backend.record_count() == backend.block_count()
    assert registry.verify_chain().intact
    for item in registry.quarantined():
        assert item["kind"] in ("record", "block")
        assert item["reason"]


def test_pool_chunk_chaos_output_matches_serial(tmp_path):
    """Worker death under fire never changes bytes: the daemon's
    pooled batch (healed serially) equals a local serial embed."""
    service = _build_service(tmp_path)
    texts = _doc_texts(4)

    reference_system = WmXMLSystem(KEY, issuer="chaos")
    reference_system.register("books", bibliography.default_scheme(2))
    serial = [reference_system.issue("books", parse(text),
                                     "alice").document
              for text in texts]

    with running_server(service, port=0, quiet=True) as server:
        host, port = server.server_address[:2]
        client = WmXMLClient(f"http://{host}:{port}", scheme="books",
                             timeout=60)
        with faults.injected("pool.chunk", "exit", scope="worker"):
            pooled = client.issue_many(texts, "alice")

    assert [item.xml for item in pooled] == \
        [serialize(document) for document in serial]


def test_dispatch_chaos_under_concurrency(tmp_path):
    """Sustained dispatch faults with concurrent clients: every
    request gets an answer (envelope or result), the daemon never
    wedges, and the ledger stays verifiable."""
    service = _build_service(tmp_path)
    text = _doc_texts(1)[0]
    outcomes = []
    lock = threading.Lock()

    with running_server(service, port=0, quiet=True) as server:
        host, port = server.server_address[:2]

        def worker(index):
            client = WmXMLClient(f"http://{host}:{port}",
                                 scheme="books", timeout=60,
                                 retries=0)
            try:
                client.issue(text, f"user-{index}")
                verdict = "ok"
            except WmXMLError:
                verdict = "envelope"
            with lock:
                outcomes.append(verdict)

        with faults.injected("service.dispatch", p=0.5, seed=7):
            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)

    assert len(outcomes) == 8  # nobody hung
    assert service.inflight == 0
    report = service.system.registry.recover()
    assert report.ok
    assert service.system.registry.verify_chain().intact
