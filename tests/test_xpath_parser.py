"""Unit tests for the XPath lexer and parser."""

import pytest

from repro.xpath import XPathSyntaxError, ast
from repro.xpath.lexer import tokenize
from repro.xpath.parser import parse_xpath


class TestLexer:
    def test_simple_path(self):
        kinds = [(t.kind, t.value) for t in tokenize("/db/book")]
        assert kinds == [
            ("OPERATOR", "/"), ("NAME", "db"),
            ("OPERATOR", "/"), ("NAME", "book"), ("EOF", ""),
        ]

    def test_double_slash(self):
        tokens = tokenize("//book")
        assert tokens[0].value == "//"

    def test_string_literals(self):
        tokens = tokenize("'single' \"double\"")
        assert tokens[0].kind == "LITERAL" and tokens[0].value == "single"
        assert tokens[1].kind == "LITERAL" and tokens[1].value == "double"

    def test_unterminated_literal(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        tokens = tokenize("3 3.14 .5")
        assert [t.value for t in tokens[:3]] == ["3", "3.14", ".5"]
        assert all(t.kind == "NUMBER" for t in tokens[:3])

    def test_star_disambiguation(self):
        # After a name, '*' is multiplication; at step start it is a wildcard.
        mult = tokenize("price * 2")
        assert mult[1].kind == "OPERATOR" and mult[1].value == "*"
        wild = tokenize("/db/*")
        assert wild[-2].kind == "NAME" and wild[-2].value == "*"

    def test_and_or_disambiguation(self):
        ops = tokenize("a and b or c")
        assert [(t.kind, t.value) for t in ops[1:4:2]] == [
            ("OPERATOR", "and"), ("OPERATOR", "or")]
        names = tokenize("/and/or")
        assert names[1].kind == "NAME" and names[1].value == "and"

    def test_axis_token(self):
        tokens = tokenize("child::book")
        assert tokens[0].kind == "AXIS" and tokens[0].value == "child"
        assert tokens[1].kind == "NAME" and tokens[1].value == "book"

    def test_unknown_axis(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("sideways::book")

    def test_qualified_name(self):
        tokens = tokenize("ns:tag")
        assert tokens[0].value == "ns:tag"

    def test_dot_and_dotdot(self):
        tokens = tokenize("./..")
        assert tokens[0].kind == "DOT"
        assert tokens[2].kind == "DOTDOT"

    def test_unexpected_character(self):
        with pytest.raises(XPathSyntaxError):
            tokenize("book $ title")

    def test_hyphenated_function_name(self):
        tokens = tokenize("starts-with(a, 'x')")
        assert tokens[0].value == "starts-with"


class TestParserPaths:
    def test_absolute_path(self):
        expr = parse_xpath("/db/book")
        assert isinstance(expr, ast.LocationPath)
        assert expr.absolute
        assert [s.test.name for s in expr.steps] == ["db", "book"]
        assert all(s.axis == ast.CHILD for s in expr.steps)

    def test_relative_path(self):
        expr = parse_xpath("book/title")
        assert not expr.absolute

    def test_descendant_shorthand(self):
        expr = parse_xpath("//book")
        assert expr.steps[0].axis == ast.DESCENDANT_OR_SELF
        assert expr.steps[1].test.name == "book"

    def test_attribute_step(self):
        expr = parse_xpath("/db/book/@publisher")
        assert expr.steps[-1].axis == ast.ATTRIBUTE

    def test_wildcard(self):
        expr = parse_xpath("/db/*")
        assert expr.steps[-1].test.name == "*"

    def test_text_node_test(self):
        expr = parse_xpath("/db/book/title/text()")
        test = expr.steps[-1].test
        assert isinstance(test, ast.NodeTypeTest)
        assert test.node_type == "text"

    def test_dot_dotdot_steps(self):
        expr = parse_xpath("./..")
        assert expr.steps[0].axis == ast.SELF
        assert expr.steps[1].axis == ast.PARENT

    def test_explicit_axes(self):
        expr = parse_xpath("ancestor::db/descendant::title")
        assert expr.steps[0].axis == ast.ANCESTOR
        assert expr.steps[1].axis == ast.DESCENDANT

    def test_root_only(self):
        expr = parse_xpath("/")
        assert expr.absolute and expr.steps == ()

    def test_predicates(self):
        expr = parse_xpath("/db/book[title='DB Design'][2]/author")
        book = expr.steps[1]
        assert len(book.predicates) == 2
        first = book.predicates[0]
        assert isinstance(first, ast.BinaryOp) and first.op == "="

    def test_nested_path_in_predicate(self):
        expr = parse_xpath("/db/book[author/name='X']")
        pred = expr.steps[1].predicates[0]
        assert isinstance(pred.left, ast.LocationPath)

    def test_union(self):
        expr = parse_xpath("/db/book | /db/journal")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "|"


class TestParserExpressions:
    def test_precedence_or_and(self):
        expr = parse_xpath("1 or 0 and 0")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_precedence_arith(self):
        expr = parse_xpath("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_comparison_chain(self):
        expr = parse_xpath("1 < 2 = true()")
        assert expr.op == "="
        assert expr.left.op == "<"

    def test_unary_minus(self):
        expr = parse_xpath("-3")
        assert isinstance(expr, ast.Negate)

    def test_double_negation(self):
        expr = parse_xpath("--3")
        assert isinstance(expr.operand, ast.Negate)

    def test_function_call(self):
        expr = parse_xpath("contains(title, 'DB')")
        assert isinstance(expr, ast.FunctionCall)
        assert expr.name == "contains"
        assert len(expr.args) == 2

    def test_function_no_args(self):
        expr = parse_xpath("true()")
        assert expr.args == ()

    def test_filter_with_predicate_and_path(self):
        expr = parse_xpath("(//book)[1]/title")
        assert isinstance(expr, ast.FilterExpression)
        assert len(expr.predicates) == 1
        assert expr.path is not None

    def test_parenthesised_expr(self):
        expr = parse_xpath("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_div_mod(self):
        expr = parse_xpath("6 div 2 mod 2")
        assert expr.op == "mod"


class TestParserErrors:
    @pytest.mark.parametrize("bad", [
        "", "   ", "/db/book[", "/db/book]", "/db/..unknown::x",
        "1 +", "@", "/db/book[']", "fn(", "a ~ b", "/db//",
    ])
    def test_rejects(self, bad):
        with pytest.raises(XPathSyntaxError):
            parse_xpath(bad)

    def test_trailing_tokens(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/db/book extra")

    def test_non_string(self):
        with pytest.raises(TypeError):
            parse_xpath(42)  # type: ignore[arg-type]


class TestRoundTrip:
    """str(parse(x)) must re-parse to an equivalent AST."""

    CASES = [
        "/db/book/title",
        "//book",
        "/db/book[title='DB Design']/author",
        "/db/book[@publisher='mkp']/year",
        "book/author",
        "/db/book[2]",
        "/db/book[title='X' and year='1998']",
        "count(/db/book)",
        "/db/book/title | /db/book/author",
        "/db/book[contains(title, 'DB')]",
        "descendant::title",
        "/db/book/../book",
        "/db/*[1]/text()",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_render_reparse(self, text):
        first = parse_xpath(text)
        second = parse_xpath(str(first))
        assert str(second) == str(first)
