"""Shared fixtures: the paper's Figure 1 documents and common shapes."""

import pytest

from repro.semantics import level, shape
from repro.xmlmodel import parse

#: db1.xml from Figure 1 of the paper (book-centric organisation),
#: regularised to use <author> for both books so that one relation
#: underlies both organisations (the paper's second book uses <writer>,
#: an incidental schema quirk its own reorganisation example drops too).
DB1_XML = (
    "<db>"
    '<book publisher="mkp">'
    "<title>Readings in Database Systems</title>"
    "<author>Stonebraker</author>"
    "<author>Hellerstein</author>"
    "<editor>Harrypotter</editor>"
    "<year>1998</year>"
    "</book>"
    '<book publisher="acm">'
    "<title>Database Design</title>"
    "<author>Berstein</author>"
    "<author>Newcomer</author>"
    "<editor>Gamer</editor>"
    "<year>1998</year>"
    "</book>"
    '<book publisher="mkp">'
    "<title>XML Query Processing</title>"
    "<author>Stonebraker</author>"
    "<editor>Harrypotter</editor>"
    "<year>2001</year>"
    "</book>"
    "</db>"
)


@pytest.fixture()
def db1_doc():
    return parse(DB1_XML)


@pytest.fixture()
def book_shape():
    """The db1.xml organisation: book-centric."""
    return shape(
        "book-centric",
        "db",
        [
            level(
                "book",
                group_by=["title"],
                attributes={"publisher": "publisher"},
                leaves={
                    "title": "title",
                    "author": "author",
                    "editor": "editor",
                    "year": "year",
                },
            ),
        ],
    )


@pytest.fixture()
def publisher_shape():
    """The db2.xml organisation from Figure 1: publisher/author-centric.

    Extended with editor and year leaves on the book level so the
    reorganisation is information-preserving (required for the paper's
    claim that db1 and db2 are equally usable).
    """
    return shape(
        "publisher-centric",
        "db",
        [
            level("publisher", group_by=["publisher"],
                  attributes={"name": "publisher"}),
            level("author", group_by=["author"],
                  attributes={"name": "author"}),
            level("book", group_by=["title"], text_field="title",
                  leaves={"editor": "editor", "year": "year"}),
        ],
    )
