"""Unit tests for the keyed PRF."""

import pytest

from repro.core import KeyedPRF


class TestKeyedPRF:
    def test_deterministic(self):
        a = KeyedPRF("secret")
        b = KeyedPRF("secret")
        assert a.digest("p", "x") == b.digest("p", "x")
        assert a.integer("p", "x") == b.integer("p", "x")

    def test_key_separation(self):
        a = KeyedPRF("secret-1")
        b = KeyedPRF("secret-2")
        assert a.digest("p", "x") != b.digest("p", "x")

    def test_purpose_separation(self):
        prf = KeyedPRF("secret")
        assert prf.digest("p1", "x") != prf.digest("p2", "x")

    def test_part_boundaries_matter(self):
        # ("ab", "c") must differ from ("a", "bc").
        prf = KeyedPRF("secret")
        assert prf.digest("p", "ab", "c") != prf.digest("p", "a", "bc")

    def test_bytes_key_accepted(self):
        assert KeyedPRF(b"raw-bytes").integer("p") >= 0

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            KeyedPRF("")

    def test_fingerprint_is_stable_and_short(self):
        prf = KeyedPRF("secret")
        assert prf.fingerprint() == KeyedPRF("secret").fingerprint()
        assert len(prf.fingerprint()) == 16

    def test_bit_values(self):
        prf = KeyedPRF("secret")
        bits = {prf.bit("p", str(i)) for i in range(64)}
        assert bits == {0, 1}

    def test_stream_length_and_determinism(self):
        prf = KeyedPRF("secret")
        assert len(prf.stream("p", 100, "x")) == 100
        assert prf.stream("p", 100, "x") == prf.stream("p", 100, "x")
        assert prf.stream("p", 33, "x") == prf.stream("p", 100, "x")[:33]


class TestSelection:
    def test_gamma_one_selects_all(self):
        prf = KeyedPRF("secret")
        assert all(prf.selects(f"id-{i}", 1) for i in range(50))

    def test_gamma_rate_roughly_inverse(self):
        prf = KeyedPRF("secret")
        gamma = 4
        selected = sum(prf.selects(f"id-{i}", gamma) for i in range(4000))
        assert 800 <= selected <= 1200  # expectation 1000

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            KeyedPRF("secret").selects("x", 0)

    def test_bit_index_range_and_coverage(self):
        prf = KeyedPRF("secret")
        nbits = 16
        indices = [prf.bit_index(f"id-{i}", nbits) for i in range(800)]
        assert all(0 <= index < nbits for index in indices)
        assert set(indices) == set(range(nbits))

    def test_bit_index_invalid(self):
        with pytest.raises(ValueError):
            KeyedPRF("secret").bit_index("x", 0)


class TestOffsets:
    def test_distinct_and_in_range(self):
        prf = KeyedPRF("secret")
        offsets = prf.offsets("id", 8, 100)
        assert len(offsets) == 8
        assert len(set(offsets)) == 8
        assert all(0 <= o < 100 for o in offsets)

    def test_small_modulus_uses_all(self):
        prf = KeyedPRF("secret")
        assert prf.offsets("id", 8, 3) == [0, 1, 2]

    def test_zero_modulus(self):
        assert KeyedPRF("secret").offsets("id", 8, 0) == []

    def test_deterministic(self):
        assert KeyedPRF("k").offsets("id", 5, 50) == \
            KeyedPRF("k").offsets("id", 5, 50)


class TestKeyedOrder:
    def test_permutation(self):
        prf = KeyedPRF("secret")
        items = [f"v{i}" for i in range(10)]
        ordered = prf.keyed_order("p", items)
        assert sorted(ordered) == sorted(items)

    def test_key_dependent(self):
        items = [f"v{i}" for i in range(10)]
        a = KeyedPRF("k1").keyed_order("p", items)
        b = KeyedPRF("k2").keyed_order("p", items)
        assert a != b  # overwhelmingly likely

    def test_input_order_independent(self):
        prf = KeyedPRF("secret")
        items = [f"v{i}" for i in range(10)]
        assert prf.keyed_order("p", items) == \
            prf.keyed_order("p", list(reversed(items)))
