"""The ``repro.api`` facade: builder, system registry, pipelines, batches.

The facade must be a *pure* wrapper: everything it produces has to be
bit-identical to driving the core encoder/decoder by hand — asserted
here against the same golden digests the core golden-vector suite
locks.
"""

import hashlib
import json
import threading

import pytest

from repro import api
from repro.datasets import bibliography, library
from repro.xmlmodel import serialize

from test_golden_vectors import EMBEDDERS, GOLDEN


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _small_bibliography(seed=1):
    return bibliography.generate_document(
        bibliography.BibliographyConfig(books=30, editors=5, seed=seed))


class TestSchemeBuilder:
    def test_builds_a_valid_scheme(self):
        scheme = (api.SchemeBuilder(bibliography.book_shape())
                  .carrier("year", "numeric", key="title")
                  .carrier("publisher", "categorical", fd="editor",
                           params={"domain": ["mkp", "acm"]})
                  .template("authors-of-title", "author", "title")
                  .gamma(2)
                  .build())
        assert scheme.gamma == 2
        assert [c.field for c in scheme.carriers] == ["year", "publisher"]
        assert scheme.carriers[0].identifier.kind() == "key"
        assert scheme.carriers[1].identifier.kind() == "fd"
        assert scheme.templates[0].name == "authors-of-title"

    def test_requires_a_shape(self):
        with pytest.raises(api.WmXMLError):
            api.SchemeBuilder().carrier("year", "numeric",
                                        key="title").build()

    def test_requires_exactly_one_identifier_kind(self):
        builder = api.SchemeBuilder(bibliography.book_shape())
        with pytest.raises(api.WmXMLError):
            builder.carrier("year", "numeric")
        with pytest.raises(api.WmXMLError):
            builder.carrier("year", "numeric", key="title", fd="editor")

    def test_builder_output_matches_handwritten_scheme(self):
        built = (api.SchemeBuilder(bibliography.book_shape())
                 .carrier("year", "numeric", key="title")
                 .gamma(3)
                 .build())
        handwritten = api.WatermarkingScheme(
            shape=bibliography.book_shape(),
            carriers=[api.CarrierSpec.create(
                "year", "numeric", api.KeyIdentifier(("title",)))],
            gamma=3)
        assert built.to_dict() == handwritten.to_dict()


class TestWmXMLSystem:
    def test_registry_round_trip(self):
        system = api.WmXMLSystem("secret")
        scheme = bibliography.default_scheme(2)
        system.register("bib", scheme)
        assert system.scheme("bib") is scheme
        assert system.scheme_names() == ["bib"]

    def test_unknown_scheme_is_a_wmxml_error(self):
        system = api.WmXMLSystem("secret")
        with pytest.raises(api.UnknownSchemeError):
            system.scheme("nope")
        with pytest.raises(api.WmXMLError):
            system.pipeline("nope")
        with pytest.raises(KeyError):  # legacy catch style still works
            system.scheme("nope")

    def test_register_accepts_declarative_dicts(self):
        system = api.WmXMLSystem("secret")
        registered = system.register(
            "bib", bibliography.default_scheme(2).to_dict())
        assert isinstance(registered, api.WatermarkingScheme)
        assert registered.gamma == 2

    def test_register_file(self, tmp_path):
        path = tmp_path / "scheme.json"
        bibliography.default_scheme(2).save(str(path))
        system = api.WmXMLSystem("secret")
        scheme = system.register_file("bib", str(path))
        assert scheme.shape.name == "book-centric"

    def test_pipeline_is_compiled_once_and_cached(self):
        system = api.WmXMLSystem("secret")
        system.register("bib", bibliography.default_scheme(2))
        assert system.pipeline("bib") is system.pipeline("bib")
        # A different alpha is a different pipeline.
        assert system.pipeline("bib") is not system.pipeline("bib", 0.05)

    def test_pipeline_cache_is_keyed_by_content_for_adhoc_schemes(self):
        # The service case: a scheme dict arrives with every request;
        # equal content must hit the same compiled pipeline instead of
        # growing the cache per call.
        system = api.WmXMLSystem("secret")
        first = system.pipeline(bibliography.default_scheme(2).to_dict())
        second = system.pipeline(bibliography.default_scheme(2).to_dict())
        assert first is second
        # Distinct-but-equal scheme objects share it too.
        assert system.pipeline(bibliography.default_scheme(2)) is first
        # Different content is a different pipeline.
        assert system.pipeline(
            bibliography.default_scheme(4).to_dict()) is not first

    def test_content_cache_evicts_lru_beyond_its_ceiling(self):
        # Inline schemes can arrive from the wire on every request; a
        # client cycling unique deployments must not grow the daemon's
        # memory without bound.
        from repro.api.system import CONTENT_CACHE_MAX

        system = api.WmXMLSystem("secret")
        kept = system.pipeline(bibliography.default_scheme(2).to_dict())
        for gamma in range(3, CONTENT_CACHE_MAX + 8):
            # Re-touching the first scheme keeps it most-recent.
            system.pipeline(bibliography.default_scheme(2).to_dict())
            system.pipeline(bibliography.default_scheme(gamma).to_dict())
        assert len(system._content_pipelines) <= CONTENT_CACHE_MAX
        assert system.pipeline(
            bibliography.default_scheme(2).to_dict()) is kept

    def test_scheme_fingerprint_matches_pipeline_without_compiling(self):
        # GET /v1/schemes lists fingerprints for every deployment; the
        # listing must not compile (and pin) pipelines to do so.
        system = api.WmXMLSystem("secret")
        system.register("bib", bibliography.default_scheme(2))
        fingerprint = system.scheme_fingerprint("bib")
        assert not system._named_pipelines
        assert fingerprint == system.pipeline("bib").fingerprint

    def test_scheme_with_fingerprint_is_cached_and_consistent(self):
        # The daemon's conditional-GET endpoint polls this; repeat
        # reads must hit the cache and the pair must track replaces.
        system = api.WmXMLSystem("secret")
        system.register("bib", bibliography.default_scheme(2))
        scheme, fingerprint = system.scheme_with_fingerprint("bib")
        assert scheme is system.scheme("bib")
        assert fingerprint == system.scheme_fingerprint("bib")
        assert system._name_fingerprints["bib"] == fingerprint
        system.register("bib", bibliography.default_scheme(4))
        scheme2, fingerprint2 = system.scheme_with_fingerprint("bib")
        assert scheme2.gamma == 4
        assert fingerprint2 != fingerprint

    def test_scheme_fingerprint_cache_invalidates_on_replace(self):
        # Named fingerprints are cached (the registry listing is a
        # polling endpoint) but must track re-registration.
        system = api.WmXMLSystem("secret")
        system.register("bib", bibliography.default_scheme(2))
        old = system.scheme_fingerprint("bib")
        assert system.scheme_fingerprint("bib") == old  # cache hit
        system.register("bib", bibliography.default_scheme(4))
        new = system.scheme_fingerprint("bib")
        assert new != old
        assert new == system.pipeline("bib").fingerprint

    def test_reregistering_mid_compile_does_not_pin_the_stale_pipeline(
            self, monkeypatch):
        # A PUT replacing 'bib' while another thread compiles the old
        # scheme must not let the stale pipeline land in the cache —
        # that would silently serve the replaced deployment forever
        # while the registry advertises the new fingerprint.
        import repro.api.system as system_module

        system = api.WmXMLSystem("secret")
        system.register("bib", bibliography.default_scheme(2))
        real_pipeline = system_module.Pipeline
        raced = []

        def racing_pipeline(scheme, key, alpha):
            if not raced:  # replace the name mid-first-compile
                raced.append(True)
                system.register("bib", bibliography.default_scheme(4))
            return real_pipeline(scheme, key, alpha=alpha)

        monkeypatch.setattr(system_module, "Pipeline",
                            lambda scheme, key, alpha: racing_pipeline(
                                scheme, key, alpha))
        pipeline = system.pipeline("bib")
        assert pipeline.scheme.gamma == 4
        assert system.pipeline("bib") is pipeline
        assert (system.scheme_fingerprint("bib")
                == pipeline.fingerprint)

    def test_non_json_scheme_params_raise_a_wmxml_error(self):
        # A frozenset domain builds a working in-memory scheme but has
        # no JSON form; the facade must say so, not leak a TypeError.
        scheme = (api.SchemeBuilder(bibliography.book_shape())
                  .carrier("publisher", "categorical", fd="editor",
                           params={"domain": frozenset(("mkp", "acm"))})
                  .build())
        with pytest.raises(api.SchemeFormatError):
            api.WmXMLSystem("secret").pipeline(scheme)

    def test_reregistering_rebinds_the_name(self):
        system = api.WmXMLSystem("secret")
        system.register("bib", bibliography.default_scheme(2))
        old = system.pipeline("bib")
        system.register("bib", bibliography.default_scheme(4))
        new = system.pipeline("bib")
        assert new is not old
        assert new.scheme.gamma == 4

    def test_key_never_exposed_in_repr(self):
        system = api.WmXMLSystem("super-secret-key")
        assert "super-secret-key" not in repr(system)
        assert system.key_fingerprint in repr(system)

    def test_embed_detect_convenience(self):
        system = api.WmXMLSystem("secret")
        system.register("bib", bibliography.default_scheme(2))
        result = system.embed("bib", _small_bibliography(), "(c) me")
        outcome = system.detect("bib", result.document, result.record,
                                expected="(c) me")
        assert outcome.detected


class TestPipelineGoldenEquivalence:
    """The facade reproduces the golden vectors bit-for-bit."""

    CONFIGS = {
        "bibliography": (
            lambda: bibliography.generate_document(
                bibliography.BibliographyConfig(
                    books=60, editors=6, seed=1234)),
            lambda: bibliography.default_scheme(2),
            "(c) golden", "golden-key-bib"),
        "library": (
            lambda: library.generate_document(
                library.LibraryConfig(items=60, seed=99)),
            lambda: library.default_scheme(3),
            "GOLD", "golden-key-lib"),
    }

    @pytest.mark.parametrize("profile", sorted(CONFIGS))
    def test_embed_via_facade_is_bit_identical(self, profile):
        make_doc, make_scheme, message, key = self.CONFIGS[profile]
        golden = GOLDEN[profile]
        pipeline = api.WmXMLSystem(key).pipeline(make_scheme())
        result = pipeline.embed(make_doc(), message)
        assert _sha256(serialize(result.document)) == golden["marked_sha256"]
        record_json = json.dumps(result.record.to_dict(), sort_keys=True)
        assert _sha256(record_json) == golden["record_sha256"]

    @pytest.mark.parametrize("profile", sorted(CONFIGS))
    @pytest.mark.parametrize("strategy", ["scan", "indexed", "auto"])
    def test_detect_via_facade_matches_golden(self, profile, strategy):
        make_doc, make_scheme, message, key = self.CONFIGS[profile]
        golden = GOLDEN[profile]
        pipeline = api.WmXMLSystem(key).pipeline(make_scheme())
        result = pipeline.embed(make_doc(), message)
        outcome = pipeline.detect(result.document, result.record,
                                  expected=message, strategy=strategy)
        assert outcome.detected
        assert outcome.votes_total == golden["votes_total"]
        assert outcome.votes_matching == golden["votes_matching"]
        assert outcome.queries_answered == golden["queries_answered"]


class TestPipelineBatch:
    def test_embed_many_matches_one_by_one(self):
        scheme = bibliography.default_scheme(2)
        docs = [_small_bibliography(seed) for seed in (1, 2, 3)]
        batch = api.Pipeline(scheme, "k").embed_many(docs, "(c) batch")
        for seed, result in zip((1, 2, 3), batch):
            solo = api.Pipeline(scheme, "k").embed(
                _small_bibliography(seed), "(c) batch")
            assert serialize(result.document) == serialize(solo.document)
            assert result.record.to_dict() == solo.record.to_dict()

    def test_embed_many_leaves_inputs_untouched_by_default(self):
        scheme = bibliography.default_scheme(1)
        doc = _small_bibliography()
        before = serialize(doc)
        api.Pipeline(scheme, "k").embed_many([doc], "(c) x")
        assert serialize(doc) == before

    def test_detect_many(self):
        scheme = bibliography.default_scheme(2)
        pipeline = api.Pipeline(scheme, "k")
        results = pipeline.embed_many(
            [_small_bibliography(seed) for seed in (1, 2)], "(c) many")
        outcomes = pipeline.detect_many(
            [(r.document, r.record) for r in results], expected="(c) many")
        assert len(outcomes) == 2
        assert all(o.detected for o in outcomes)

    def test_embed_many_accepts_raw_xml_text(self):
        scheme = bibliography.default_scheme(2)
        docs = [_small_bibliography(seed) for seed in (1, 2)]
        from_docs = api.Pipeline(scheme, "k").embed_many(docs, "(c) t")
        from_text = api.Pipeline(scheme, "k").embed_many(
            [serialize(doc) for doc in docs], "(c) t")
        for a, b in zip(from_docs, from_text):
            assert serialize(a.document) == serialize(b.document)
            assert a.record.to_dict() == b.record.to_dict()

    def test_embed_many_text_with_process_sharding(self):
        scheme = bibliography.default_scheme(2)
        texts = [serialize(_small_bibliography(seed)) for seed in (1, 2, 3)]
        serial = api.Pipeline(scheme, "k").embed_many(texts, "(c) p")
        sharded = api.Pipeline(scheme, "k").embed_many(texts, "(c) p",
                                                       processes=2)
        for a, b in zip(serial, sharded):
            assert serialize(a.document) == serialize(b.document)

    def test_detect_many_accepts_iterator_input(self):
        scheme = bibliography.default_scheme(2)
        pipeline = api.Pipeline(scheme, "k")
        results = pipeline.embed_many(
            [_small_bibliography(seed) for seed in (1, 2)], "(c) gen")
        outcomes = pipeline.detect_many(
            iter([(r.document, r.record) for r in results]),
            expected="(c) gen")
        assert len(outcomes) == 2
        assert all(o.detected for o in outcomes)

    def test_detect_many_accepts_raw_xml_text(self):
        scheme = bibliography.default_scheme(2)
        pipeline = api.Pipeline(scheme, "k")
        results = pipeline.embed_many(
            [_small_bibliography(seed) for seed in (1, 2)], "(c) many")
        outcomes = pipeline.detect_many(
            [(serialize(r.document), r.record) for r in results],
            expected="(c) many", processes=2)
        assert len(outcomes) == 2
        assert all(o.detected for o in outcomes)

    def test_unknown_strategy_rejected(self):
        scheme = bibliography.default_scheme(2)
        pipeline = api.Pipeline(scheme, "k")
        result = pipeline.embed(_small_bibliography(), "(c) s")
        with pytest.raises(api.WmXMLError):
            pipeline.detect(result.document, result.record,
                            strategy="warp")

    def test_concurrent_embeds_are_deterministic(self):
        scheme = bibliography.default_scheme(2)
        pipeline = api.Pipeline(scheme, "k")
        reference = serialize(
            pipeline.embed(_small_bibliography(), "(c) mt").document)
        outputs = [None] * 8
        def work(slot):
            result = pipeline.embed(_small_bibliography(), "(c) mt")
            outputs[slot] = serialize(result.document)
        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(output == reference for output in outputs)


def test_goldens_also_hold_for_core_embedders_used_here():
    """Guard: the fixtures this module borrows still exist upstream."""
    assert set(EMBEDDERS) == {"bibliography", "library"}
