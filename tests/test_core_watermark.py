"""Unit tests for watermark messages, tallies, and statistics."""

import pytest

from repro.core import (
    VoteTally,
    Watermark,
    binomial_pvalue,
    bit_error_rate,
)


class TestWatermark:
    def test_message_roundtrip(self):
        wm = Watermark.from_message("© WmXML 2005")
        assert wm.to_message() == "© WmXML 2005"

    def test_ascii_bits(self):
        wm = Watermark.from_message("A")  # 0x41 = 01000001
        assert wm.bits == (0, 1, 0, 0, 0, 0, 0, 1)

    def test_from_bits(self):
        wm = Watermark([1, 0, 1])
        assert len(wm) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Watermark([])
        with pytest.raises(ValueError):
            Watermark.from_message("")

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            Watermark([0, 2, 1])

    def test_to_message_non_byte_aligned(self):
        assert Watermark([1, 0, 1]).to_message() is None

    def test_to_message_invalid_utf8(self):
        wm = Watermark([1] * 8)  # 0xFF alone is invalid UTF-8
        assert wm.to_message() is None

    def test_equality_and_hash(self):
        assert Watermark([1, 0]) == Watermark([1, 0])
        assert Watermark([1, 0]) != Watermark([0, 1])
        assert hash(Watermark([1, 0])) == hash(Watermark([1, 0]))

    def test_hamming_distance(self):
        assert Watermark([1, 0, 1]).hamming_distance(Watermark([1, 1, 0])) == 2
        with pytest.raises(ValueError):
            Watermark([1]).hamming_distance(Watermark([1, 0]))

    def test_repr(self):
        assert "nbits=8" in repr(Watermark.from_message("A"))


class TestVoteTally:
    def test_majority(self):
        tally = VoteTally()
        tally.add(0, 1)
        tally.add(0, 1)
        tally.add(0, 0)
        assert tally.majority(0) == 1

    def test_tie_is_none(self):
        tally = VoteTally()
        tally.add(0, 1)
        tally.add(0, 0)
        assert tally.majority(0) is None

    def test_unseen_is_none(self):
        assert VoteTally().majority(3) is None

    def test_reconstruct(self):
        tally = VoteTally()
        tally.add(0, 1)
        tally.add(2, 0)
        assert tally.reconstruct(3) == [1, None, 0]

    def test_matching_votes(self):
        tally = VoteTally()
        tally.add(0, 1)
        tally.add(0, 1)
        tally.add(1, 0)
        tally.add(1, 1)  # disagrees with expected below
        expected = Watermark([1, 0])
        matching, total = tally.matching_votes(expected)
        assert (matching, total) == (3, 4)

    def test_total_votes(self):
        tally = VoteTally()
        for _ in range(5):
            tally.add(0, 1)
        assert tally.total_votes == 5

    def test_recovered_fraction(self):
        tally = VoteTally()
        tally.add(0, 1)
        tally.add(3, 0)
        assert tally.recovered_fraction(4) == 0.5
        assert tally.recovered_fraction(0) == 0.0


class TestStatistics:
    def test_empty_tally_never_detects(self):
        assert binomial_pvalue(0, 0) == 1.0

    def test_perfect_match_small(self):
        # 10 of 10 matching: p = 2^-10.
        assert binomial_pvalue(10, 10) == pytest.approx(2 ** -10)

    def test_half_match_is_insignificant(self):
        assert binomial_pvalue(50, 100) > 0.4

    def test_monotone_in_matches(self):
        assert binomial_pvalue(90, 100) < binomial_pvalue(60, 100)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            binomial_pvalue(11, 10)
        with pytest.raises(ValueError):
            binomial_pvalue(-1, 10)

    def test_bit_error_rate(self):
        expected = Watermark([1, 0, 1, 1])
        assert bit_error_rate([1, 0, 1, 1], expected) == 0.0
        assert bit_error_rate([1, 0, 0, 1], expected) == 0.25
        assert bit_error_rate([1, None, 1, 1], expected) == 0.25

    def test_bit_error_rate_length_mismatch(self):
        with pytest.raises(ValueError):
            bit_error_rate([1], Watermark([1, 0]))
