"""The consolidated WmXMLError hierarchy and strict message decoding.

Contract: every error the library raises on purpose is catchable via
``except WmXMLError`` — a service wraps any WmXML call in one handler.
Legacy catch styles (per-layer bases, builtin bases like ValueError)
must keep working too.
"""

import pytest

from repro import api
from repro.core.algorithms import AlgorithmError, create_algorithm
from repro.core.watermark import Watermark
from repro.datasets import bibliography
from repro.errors import WmXMLError
from repro.perf.bench import BenchError
from repro.semantics.errors import (
    ConstraintError,
    RecordError,
    SchemaError,
    SemanticsError,
)
from repro.xmlmodel import parse
from repro.xmlmodel.errors import XMLError, XMLSyntaxError, XMLTreeError
from repro.xpath import compile_xpath
from repro.xpath.errors import XPathError, XPathSyntaxError

#: Every public error class must descend from the one base.
PUBLIC_ERRORS = [
    AlgorithmError,
    BenchError,
    ConstraintError,
    RecordError,
    SchemaError,
    SemanticsError,
    XMLError,
    XMLSyntaxError,
    XMLTreeError,
    XPathError,
    XPathSyntaxError,
    api.RecordFormatError,
    api.SchemeFormatError,
    api.SerializationError,
    api.UnknownSchemeError,
    api.WatermarkDecodeError,
]


@pytest.mark.parametrize("error_cls", PUBLIC_ERRORS,
                         ids=lambda cls: cls.__name__)
def test_every_public_error_is_a_wmxml_error(error_cls):
    assert issubclass(error_cls, WmXMLError)


def test_api_reexports_the_base():
    assert api.WmXMLError is WmXMLError


class TestOneHandlerCatchesEverything:
    """Live raises from different layers, one ``except WmXMLError``."""

    def test_xml_parse_error(self):
        with pytest.raises(api.WmXMLError):
            parse("<unclosed>")

    def test_xpath_syntax_error(self):
        with pytest.raises(api.WmXMLError):
            compile_xpath("//book[")

    def test_unknown_algorithm(self):
        with pytest.raises(api.WmXMLError):
            create_algorithm("quantum", {})

    def test_scheme_validation_error(self):
        with pytest.raises(api.WmXMLError):
            api.WatermarkingScheme(shape=bibliography.book_shape(),
                                   carriers=[])

    def test_carrier_in_own_identifier(self):
        with pytest.raises(api.WmXMLError):
            api.CarrierSpec.create("year", "numeric",
                                   api.KeyIdentifier(("year",)))

    def test_bad_scheme_document(self):
        with pytest.raises(api.WmXMLError):
            api.WatermarkingScheme.from_dict({"format": "wrong"})

    def test_unknown_registry_name(self):
        with pytest.raises(api.WmXMLError):
            api.WmXMLSystem("k").pipeline("ghost")


class TestLegacyCatchStylesStillWork:
    def test_per_layer_bases_unchanged(self):
        with pytest.raises(XMLError):
            parse("<unclosed>")
        with pytest.raises(XPathError):
            compile_xpath("//book[")
        with pytest.raises(SemanticsError):
            api.WatermarkingScheme(shape=bibliography.book_shape(),
                                   carriers=[])

    def test_unknown_scheme_error_renders_without_keyerror_quotes(self):
        try:
            api.WmXMLSystem("k").scheme("typo")
        except api.UnknownSchemeError as error:
            assert str(error).startswith("unknown scheme")  # no repr quotes

    def test_builtin_bases_kept_for_dual_parented_errors(self):
        assert issubclass(api.SerializationError, ValueError)
        assert issubclass(api.UnknownSchemeError, KeyError)
        assert issubclass(BenchError, RuntimeError)
        assert issubclass(api.WatermarkDecodeError, ValueError)


def _all_error_classes() -> list[type]:
    """Every WmXMLError subclass defined anywhere in the system.

    Importing ``repro.api``, ``repro.service`` and ``repro.perf.bench``
    (done at module top) loads every layer that declares errors; the
    recursive subclass walk then finds the complete hierarchy.
    """
    import repro.service  # noqa: F401 - registers the service errors

    found: list[type] = []
    queue = [WmXMLError]
    while queue:
        cls = queue.pop()
        for sub in cls.__subclasses__():
            if sub not in found:
                found.append(sub)
                queue.append(sub)
    return found


class TestErrorCodes:
    """The service-boundary contract: stable codes, one status table.

    Regression gate for the code <-> HTTP-status table: *every* error
    class in the system must declare its own slug, and the slug must
    have a status in :data:`repro.errors.HTTP_STATUS_BY_CODE` — so an
    error class added without service wiring fails here, not in
    production.
    """

    def test_every_error_class_declares_its_own_code(self):
        missing = [cls.__name__ for cls in _all_error_classes()
                   if "code" not in cls.__dict__]
        assert missing == [], (
            f"error classes inheriting a parent's code instead of "
            f"declaring their own: {missing}")

    def test_table_covers_every_error_class(self):
        uncovered = [
            f"{cls.__name__} ({cls.code})" for cls in _all_error_classes()
            if cls.code not in api.HTTP_STATUS_BY_CODE
        ]
        assert uncovered == [], (
            f"codes missing from HTTP_STATUS_BY_CODE: {uncovered}")
        assert WmXMLError.code in api.HTTP_STATUS_BY_CODE

    def test_codes_are_unique_across_classes(self):
        classes = _all_error_classes()
        codes = [cls.code for cls in classes]
        assert len(set(codes)) == len(codes), (
            "two error classes share a code slug — clients could not "
            "tell them apart")

    def test_codes_are_wire_safe_slugs(self):
        for cls in _all_error_classes():
            assert cls.code == cls.code.lower()
            assert all(ch.isalnum() or ch == "-" for ch in cls.code), (
                f"{cls.__name__}.code={cls.code!r} is not a slug")

    def test_statuses_are_plausible_http(self):
        for code, status in api.HTTP_STATUS_BY_CODE.items():
            assert 400 <= status < 600, (code, status)

    def test_error_code_reads_instance_override(self):
        from repro.service import RemoteServiceError

        error = RemoteServiceError("unknown-scheme", "nope", 404)
        assert api.error_code(error) == "unknown-scheme"
        assert api.error_payload(error)["http_status"] == 404

    def test_error_payload_shape(self):
        payload = api.error_payload(api.UnknownSchemeError("ghost"))
        assert payload == {
            "code": "unknown-scheme",
            "message": "unknown scheme 'ghost'",
            "http_status": 404,
        }

    def test_foreign_exceptions_map_to_internal_error(self):
        assert api.error_code(ValueError("x")) == "internal-error"
        assert api.http_status_for("no-such-code") == 500

    def test_foreign_code_attributes_are_not_trusted(self):
        # HTTPError.code is an int HTTP status, SystemExit.code an exit
        # status — neither is a WmXML slug and neither may leak into an
        # error envelope.
        import io
        import urllib.error

        foreign = urllib.error.HTTPError("http://x", 404, "nf", {},
                                         io.BytesIO(b""))
        assert api.error_code(foreign) == "internal-error"
        assert api.error_code(SystemExit(2)) == "internal-error"
        assert api.error_payload(foreign)["code"] == "internal-error"


class TestCliErrorResults:
    """``wmxml detect --result`` surfaces codes on failure (exit 2)."""

    def test_bad_record_writes_error_payload(self, tmp_path, capsys):
        import json

        from repro.cli import main
        from repro.xmlmodel import write_file

        document = bibliography.generate_document(
            bibliography.BibliographyConfig(books=10, seed=1))
        doc_path = tmp_path / "doc.xml"
        write_file(str(doc_path), document)
        record_path = tmp_path / "record.json"
        record_path.write_text('{"format": "not-a-record"}')
        result_path = tmp_path / "verdict.json"

        code = main(["detect", "-i", str(doc_path), "-r", str(record_path),
                     "-k", "secret", "--result", str(result_path)])
        assert code == 2
        payload = json.loads(result_path.read_text())
        assert payload["error"]["code"] == "bad-record"
        assert payload["error"]["http_status"] == 400
        assert "[bad-record]" in capsys.readouterr().err


class TestStrictToMessage:
    def test_default_returns_none_on_bad_length(self):
        assert Watermark([1, 0, 1]).to_message() is None

    def test_default_returns_none_on_bad_utf8(self):
        assert Watermark([1] * 8).to_message() is None  # 0xFF

    def test_strict_raises_on_bad_length(self):
        with pytest.raises(api.WatermarkDecodeError, match="whole number"):
            Watermark([1, 0, 1]).to_message(strict=True)

    def test_strict_raises_on_bad_utf8(self):
        with pytest.raises(api.WatermarkDecodeError, match="UTF-8"):
            Watermark([1] * 8).to_message(strict=True)

    def test_strict_decodes_clean_messages(self):
        watermark = Watermark.from_message("héllo")
        assert watermark.to_message(strict=True) == "héllo"


class TestMessageStatusReporting:
    """DetectionResult says *why* no message was decoded."""

    def _pipeline(self, gamma):
        return api.Pipeline(bibliography.default_scheme(gamma), "status-key")

    def _document(self):
        return bibliography.generate_document(
            bibliography.BibliographyConfig(books=60, editors=6, seed=4))

    def test_decoded_status_when_message_recovers(self):
        pipeline = self._pipeline(gamma=1)  # dense: every bit voted on
        result = pipeline.embed(self._document(), "OK!")
        outcome = pipeline.detect(result.document, result.record)
        assert outcome.recovered_message == "OK!"
        assert outcome.message_status == "decoded"

    def test_incomplete_status_when_bits_missing(self):
        pipeline = self._pipeline(gamma=2)
        # A long message over sparse selection: some bit positions get
        # no votes, so blind reconstruction cannot finish.
        result = pipeline.embed(
            self._document(), "(c) a rather long ownership message")
        outcome = pipeline.detect(result.document, result.record)
        assert outcome.recovered_message is None
        assert outcome.message_status == "incomplete"

    def test_status_survives_serialization(self):
        pipeline = self._pipeline(gamma=1)
        result = pipeline.embed(self._document(), "OK!")
        outcome = pipeline.detect(result.document, result.record)
        reloaded = api.DetectionResult.from_json(outcome.to_json())
        assert reloaded.message_status == "decoded"
