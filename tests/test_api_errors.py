"""The consolidated WmXMLError hierarchy and strict message decoding.

Contract: every error the library raises on purpose is catchable via
``except WmXMLError`` — a service wraps any WmXML call in one handler.
Legacy catch styles (per-layer bases, builtin bases like ValueError)
must keep working too.
"""

import pytest

from repro import api
from repro.core.algorithms import AlgorithmError, create_algorithm
from repro.core.watermark import Watermark
from repro.datasets import bibliography
from repro.errors import WmXMLError
from repro.perf.bench import BenchError
from repro.semantics.errors import (
    ConstraintError,
    RecordError,
    SchemaError,
    SemanticsError,
)
from repro.xmlmodel import parse
from repro.xmlmodel.errors import XMLError, XMLSyntaxError, XMLTreeError
from repro.xpath import compile_xpath
from repro.xpath.errors import XPathError, XPathSyntaxError

#: Every public error class must descend from the one base.
PUBLIC_ERRORS = [
    AlgorithmError,
    BenchError,
    ConstraintError,
    RecordError,
    SchemaError,
    SemanticsError,
    XMLError,
    XMLSyntaxError,
    XMLTreeError,
    XPathError,
    XPathSyntaxError,
    api.RecordFormatError,
    api.SchemeFormatError,
    api.SerializationError,
    api.UnknownSchemeError,
    api.WatermarkDecodeError,
]


@pytest.mark.parametrize("error_cls", PUBLIC_ERRORS,
                         ids=lambda cls: cls.__name__)
def test_every_public_error_is_a_wmxml_error(error_cls):
    assert issubclass(error_cls, WmXMLError)


def test_api_reexports_the_base():
    assert api.WmXMLError is WmXMLError


class TestOneHandlerCatchesEverything:
    """Live raises from different layers, one ``except WmXMLError``."""

    def test_xml_parse_error(self):
        with pytest.raises(api.WmXMLError):
            parse("<unclosed>")

    def test_xpath_syntax_error(self):
        with pytest.raises(api.WmXMLError):
            compile_xpath("//book[")

    def test_unknown_algorithm(self):
        with pytest.raises(api.WmXMLError):
            create_algorithm("quantum", {})

    def test_scheme_validation_error(self):
        with pytest.raises(api.WmXMLError):
            api.WatermarkingScheme(shape=bibliography.book_shape(),
                                   carriers=[])

    def test_carrier_in_own_identifier(self):
        with pytest.raises(api.WmXMLError):
            api.CarrierSpec.create("year", "numeric",
                                   api.KeyIdentifier(("year",)))

    def test_bad_scheme_document(self):
        with pytest.raises(api.WmXMLError):
            api.WatermarkingScheme.from_dict({"format": "wrong"})

    def test_unknown_registry_name(self):
        with pytest.raises(api.WmXMLError):
            api.WmXMLSystem("k").pipeline("ghost")


class TestLegacyCatchStylesStillWork:
    def test_per_layer_bases_unchanged(self):
        with pytest.raises(XMLError):
            parse("<unclosed>")
        with pytest.raises(XPathError):
            compile_xpath("//book[")
        with pytest.raises(SemanticsError):
            api.WatermarkingScheme(shape=bibliography.book_shape(),
                                   carriers=[])

    def test_unknown_scheme_error_renders_without_keyerror_quotes(self):
        try:
            api.WmXMLSystem("k").scheme("typo")
        except api.UnknownSchemeError as error:
            assert str(error).startswith("unknown scheme")  # no repr quotes

    def test_builtin_bases_kept_for_dual_parented_errors(self):
        assert issubclass(api.SerializationError, ValueError)
        assert issubclass(api.UnknownSchemeError, KeyError)
        assert issubclass(BenchError, RuntimeError)
        assert issubclass(api.WatermarkDecodeError, ValueError)


class TestStrictToMessage:
    def test_default_returns_none_on_bad_length(self):
        assert Watermark([1, 0, 1]).to_message() is None

    def test_default_returns_none_on_bad_utf8(self):
        assert Watermark([1] * 8).to_message() is None  # 0xFF

    def test_strict_raises_on_bad_length(self):
        with pytest.raises(api.WatermarkDecodeError, match="whole number"):
            Watermark([1, 0, 1]).to_message(strict=True)

    def test_strict_raises_on_bad_utf8(self):
        with pytest.raises(api.WatermarkDecodeError, match="UTF-8"):
            Watermark([1] * 8).to_message(strict=True)

    def test_strict_decodes_clean_messages(self):
        watermark = Watermark.from_message("héllo")
        assert watermark.to_message(strict=True) == "héllo"


class TestMessageStatusReporting:
    """DetectionResult says *why* no message was decoded."""

    def _pipeline(self, gamma):
        return api.Pipeline(bibliography.default_scheme(gamma), "status-key")

    def _document(self):
        return bibliography.generate_document(
            bibliography.BibliographyConfig(books=60, editors=6, seed=4))

    def test_decoded_status_when_message_recovers(self):
        pipeline = self._pipeline(gamma=1)  # dense: every bit voted on
        result = pipeline.embed(self._document(), "OK!")
        outcome = pipeline.detect(result.document, result.record)
        assert outcome.recovered_message == "OK!"
        assert outcome.message_status == "decoded"

    def test_incomplete_status_when_bits_missing(self):
        pipeline = self._pipeline(gamma=2)
        # A long message over sparse selection: some bit positions get
        # no votes, so blind reconstruction cannot finish.
        result = pipeline.embed(
            self._document(), "(c) a rather long ownership message")
        outcome = pipeline.detect(result.document, result.record)
        assert outcome.recovered_message is None
        assert outcome.message_status == "incomplete"

    def test_status_survives_serialization(self):
        pipeline = self._pipeline(gamma=1)
        result = pipeline.embed(self._document(), "OK!")
        outcome = pipeline.detect(result.document, result.record)
        reloaded = api.DetectionResult.from_json(outcome.to_json())
        assert reloaded.message_status == "decoded"
