"""Unit tests for serialisation and canonical form (repro.xmlmodel)."""

import pytest

from repro.xmlmodel import (
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
    canonicalize,
    content_digest,
    parse,
    pretty,
    semantically_equal,
    serialize,
    write_file,
)


class TestSerialize:
    def test_empty_element(self):
        assert serialize(Element("db")) == "<db/>"

    def test_attribute_escaping(self):
        el = Element("a", attributes={"x": 'va"l&<'})
        assert serialize(el) == '<a x="va&quot;l&amp;&lt;"/>'

    def test_text_escaping(self):
        el = Element("a", text="a&b<c>d")
        assert serialize(el) == "<a>a&amp;b&lt;c&gt;d</a>"

    def test_newline_in_attribute_escaped(self):
        el = Element("a", attributes={"x": "line1\nline2"})
        out = serialize(el)
        assert "&#10;" in out
        assert parse(out).root.get_attribute("x") == "line1\nline2"

    def test_xml_declaration(self):
        out = serialize(Document(Element("db")), xml_declaration=True)
        assert out.startswith('<?xml version="1.0"')

    def test_comment_and_pi(self):
        el = Element("a", children=[Comment("c"), ProcessingInstruction("t", "d")])
        assert serialize(el) == "<a><!--c--><?t d?></a>"

    def test_document_prolog(self):
        doc = Document(Element("db"), prolog=[Comment("hdr")])
        assert serialize(doc) == "<!--hdr--><db/>"

    def test_cr_in_text_escaped(self):
        doc = parse(serialize(Element("a", text="x\ry")))
        assert doc.root.text == "x\ry"
        assert serialize(Element("a", text="x\ry")) == "<a>x&#13;y</a>"

    def test_cr_in_attribute_escaped(self):
        el = Element("a", attributes={"v": "x\ry"})
        assert serialize(el) == '<a v="x&#13;y"/>'
        assert parse(serialize(el)).root.get_attribute("v") == "x\ry"


class TestPretty:
    def test_indents_children(self):
        doc = parse("<db><book><title>X</title></book></db>")
        out = pretty(doc)
        assert "<db>\n" in out
        assert "  <book>\n" in out
        assert "    <title>X</title>\n" in out

    def test_leaf_text_inline(self):
        assert pretty(Element("t", text="v")) == "<t>v</t>\n"

    def test_empty_element(self):
        assert pretty(Element("t")) == "<t/>\n"

    def test_pretty_reparses_equal(self):
        doc = parse("<db><book a='1'><t>x</t><u>y</u></book></db>")
        again = parse(pretty(doc))
        assert doc.equals(again)

    def test_declaration(self):
        assert pretty(Element("a"), xml_declaration=True).startswith("<?xml")

    def test_comment_and_pi_lines(self):
        el = Element("a", children=[Comment("c"), ProcessingInstruction("p", "d")])
        out = pretty(el)
        assert "<!--c-->" in out
        assert "<?p d?>" in out

    def test_epilog_emitted(self):
        """Regression: trailing comments/PIs used to vanish on pretty()."""
        doc = Document(Element("db"),
                       epilog=[Comment("tail"),
                               ProcessingInstruction("p", "d")])
        out = pretty(doc)
        assert out.index("<db/>") < out.index("<!--tail-->")
        assert "<?p d?>" in out


class TestWriteFile:
    def test_write_pretty(self, tmp_path):
        path = tmp_path / "out.xml"
        write_file(str(path), Element("db", text="x"))
        content = path.read_text(encoding="utf-8")
        assert content.startswith("<?xml")
        assert "<db>x</db>" in content

    def test_write_compact(self, tmp_path):
        path = tmp_path / "out.xml"
        write_file(str(path), Element("db"), pretty_print=False)
        assert path.read_text(encoding="utf-8").endswith("<db/>")


class TestCanonical:
    def test_attribute_order_invariant(self):
        a = parse('<a x="1" y="2"/>')
        b = parse('<a y="2" x="1"/>')
        assert canonicalize(a) == canonicalize(b)

    def test_whitespace_invariant(self):
        a = parse("<db><x>1</x></db>")
        b = parse("<db>\n   <x>1</x>\n</db>")
        assert semantically_equal(a, b)

    def test_internal_whitespace_collapsed(self):
        a = parse("<x>two  words</x>")
        b = parse("<x>two words</x>")
        assert semantically_equal(a, b)

    def test_comments_ignored(self):
        a = parse("<db><!--noise--><x>1</x></db>")
        b = parse("<db><x>1</x></db>")
        assert semantically_equal(a, b)

    def test_content_difference_detected(self):
        a = parse("<x>1</x>")
        b = parse("<x>2</x>")
        assert not semantically_equal(a, b)
        assert content_digest(a) != content_digest(b)

    def test_digest_stable(self):
        doc = parse('<a x="1"><b>t</b></a>')
        assert content_digest(doc) == content_digest(doc.copy())
        assert len(content_digest(doc)) == 64

    def test_element_order_significant(self):
        a = parse("<db><x>1</x><y>2</y></db>")
        b = parse("<db><y>2</y><x>1</x></db>")
        assert not semantically_equal(a, b)
