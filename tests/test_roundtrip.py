"""Round-trip guarantees: ``parse(serialize(doc))`` is the same document.

The watermarking system's detection-side guarantees only hold if the
XML substrate round-trips documents faithfully — a document written and
re-read must carry the same content bit for bit.  This suite locks that
property three ways:

* the three dataset profiles (the documents the system actually ships),
* adversarial hand-picked cases: epilog nodes, CR/CRLF content, CDATA,
  mixed content, attribute edge characters,
* hypothesis-generated random documents, including carriage returns.

Structural equality is :meth:`Node.equals`; byte fidelity is the
``serialize`` fixpoint (serialising the reparsed tree reproduces the
exact same string).
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.datasets import bibliography, jobs, library
from repro.xmlmodel import (
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
    parse,
    parse_many,
    pretty,
    serialize,
    write_file,
)


def assert_roundtrips(document: Document) -> str:
    """Serialise, reparse, and require equality both ways; return text."""
    text = serialize(document)
    reparsed = parse(text)
    assert reparsed.root.equals(document.root)
    assert serialize(reparsed) == text
    return text


# -- dataset profiles ------------------------------------------------------------


PROFILE_DOCUMENTS = {
    "bibliography": lambda: bibliography.generate_document(
        bibliography.BibliographyConfig(books=60, editors=6, seed=11)),
    "jobs": lambda: jobs.generate_document(jobs.JobsConfig(jobs=60, seed=11)),
    "library": lambda: library.generate_document(
        library.LibraryConfig(items=40, seed=11)),
}


@pytest.mark.parametrize("profile", sorted(PROFILE_DOCUMENTS))
def test_profile_documents_roundtrip(profile):
    document = PROFILE_DOCUMENTS[profile]()
    assert_roundtrips(document)


@pytest.mark.parametrize("profile", sorted(PROFILE_DOCUMENTS))
def test_profile_documents_pretty_reparse_equal(profile):
    document = PROFILE_DOCUMENTS[profile]()
    again = parse(pretty(document), strip_whitespace=True)
    assert again.root.equals(document.root)


def test_parse_many_matches_parse_one_by_one():
    texts = [serialize(build()) for build in PROFILE_DOCUMENTS.values()]
    batch = parse_many(texts)
    assert [serialize(document) for document in batch] == texts


# -- adversarial cases ------------------------------------------------------------


class TestEpilog:
    def _document(self):
        return Document(
            Element("db", children=[Element("x", text="1")]),
            prolog=[Comment(" header ")],
            epilog=[Comment(" trailer "), ProcessingInstruction("audit", "v=1")],
        )

    def test_serialize_preserves_epilog(self):
        text = serialize(self._document())
        assert text.endswith("<!-- trailer --><?audit v=1?>")
        reparsed = parse(text)
        assert len(reparsed.epilog) == 2
        assert isinstance(reparsed.epilog[0], Comment)
        assert isinstance(reparsed.epilog[1], ProcessingInstruction)

    def test_pretty_emits_epilog(self):
        out = pretty(self._document())
        assert "<!-- trailer -->" in out
        assert "<?audit v=1?>" in out
        # epilog renders after the root element closes
        assert out.index("</db>") < out.index("<!-- trailer -->")

    def test_pretty_reparse_keeps_epilog(self):
        reparsed = parse(pretty(self._document()), strip_whitespace=True)
        assert [type(node) for node in reparsed.epilog] == [
            Comment, ProcessingInstruction]

    def test_write_file_pretty_keeps_epilog(self, tmp_path):
        path = tmp_path / "doc.xml"
        write_file(str(path), self._document())
        content = path.read_text(encoding="utf-8")
        assert "<!-- trailer -->" in content
        assert "<?audit v=1?>" in content


class TestCarriageReturns:
    def test_parser_normalizes_crlf_and_cr(self):
        doc = parse("<a>line1\r\nline2\rline3</a>")
        assert doc.root.text == "line1\nline2\nline3"

    def test_cr_in_cdata_normalized(self):
        doc = parse("<a><![CDATA[x\r\ny]]></a>")
        assert doc.root.text == "x\ny"

    def test_cr_char_reference_survives_normalization(self):
        doc = parse("<a>&#13;&#xD;</a>")
        assert doc.root.text == "\r\r"

    def test_text_cr_roundtrips_via_reference(self):
        doc = Document(Element("a", text="x\ry"))
        text = serialize(doc)
        assert "&#13;" in text
        assert parse(text).root.text == "x\ry"

    def test_attribute_cr_roundtrips_via_reference(self):
        doc = Document(Element("a", attributes={"v": "x\r\ny"}))
        text = serialize(doc)
        assert "&#13;&#10;" in text
        assert parse(text).root.get_attribute("v") == "x\r\ny"

    def test_crlf_in_attribute_source_normalized(self):
        doc = parse('<a v="x\r\ny"/>')
        assert doc.root.get_attribute("v") == "x\ny"

    def test_cr_only_document_roundtrips(self):
        document = Document(Element("a", text="\r"))
        assert_roundtrips(document)


class TestCData:
    def test_cdata_content_roundtrips_escaped(self):
        doc = parse("<a><![CDATA[<markup> & friends ]]></a>")
        assert doc.root.text == "<markup> & friends "
        assert_roundtrips(doc)

    def test_cdata_between_text_runs(self):
        doc = parse("<a>x<![CDATA[&]]>y</a>")
        assert doc.root.text == "x&y"
        assert_roundtrips(doc)


class TestMixedContent:
    def test_mixed_content_roundtrips(self):
        doc = parse("<p>lead <b>bold</b> middle <i>it</i> tail</p>")
        assert_roundtrips(doc)

    def test_mixed_with_comments_and_pis(self):
        doc = parse("<p>a<!--c-->b<?pi d?>c</p>")
        assert_roundtrips(doc)
        assert doc.root.text == "abc"

    def test_whitespace_only_runs_preserved_by_serialize(self):
        doc = parse("<p><a/>  <b/></p>")
        assert serialize(doc) == "<p><a/>  <b/></p>"


# -- generated documents ------------------------------------------------------------

# Printable unicode incl. \r, \n, \t; excludes other control chars the
# tree model does not model.  min_size=1 because a zero-length text
# node has no markup representation (``<a></a>`` reparses childless).
_content_text = st.text(
    alphabet=st.characters(
        codec="utf-8",
        exclude_categories=("Cs", "Cc", "Co"),
    ) | st.sampled_from(["\r", "\n", "\t", "&", "<", ">", '"', "'", "]"]),
    min_size=1,
    max_size=24,
)
_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_\-]{0,8}", fullmatch=True)


@st.composite
def _elements(draw, depth=0):
    element = Element(draw(_names))
    for name in draw(st.lists(_names, max_size=2, unique=True)):
        element.set_attribute(name, draw(_content_text))
    children = draw(st.integers(min_value=0, max_value=3 if depth < 2 else 0))
    for _ in range(children):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            element.append(Text(draw(_content_text)))
        elif kind == 1:
            element.append(draw(_elements(depth=depth + 1)))
        elif kind == 2:
            element.append(Comment(draw(
                st.text(alphabet="abc xyz", max_size=10))))
        else:
            # Leading whitespace in PI data is consumed as the
            # target/data separator on reparse, so generate data that
            # starts with a non-space (or is empty).
            element.append(ProcessingInstruction(
                draw(_names),
                draw(st.text(alphabet="abc xyz", max_size=10)
                     .filter(lambda s: s == s.lstrip()))))
    return element


@settings(max_examples=60, deadline=None)
@given(_elements())
def test_generated_documents_roundtrip(root):
    document = Document(root)
    text = serialize(document)
    reparsed = parse(text)
    # Byte fixpoint is the strict guarantee; equals() would forgive
    # whitespace-only runs.
    assert serialize(reparsed) == text
    # And the text content seen by the watermarking layers is identical
    # after one round trip (carriage returns included).
    assert reparsed.root.string_value() == root.string_value()
    assert reparsed.root.attributes == root.attributes
