"""Unit/integration tests for the encoder-decoder pipeline and usability."""

import pytest

from repro.core import (
    CarrierSpec,
    FDIdentifier,
    KeyIdentifier,
    UsabilityBaseline,
    UsabilityTemplate,
    Watermark,
    WatermarkRecord,
    WatermarkingScheme,
    WmXMLDecoder,
    WmXMLEncoder,
    values_match,
)
from repro.rewriting import reorganize
from repro.semantics import RecordError
from repro.xmlmodel import parse, serialize

SECRET = "owner-secret-key"
MESSAGE = "(c)WmXML"


@pytest.fixture()
def scheme(book_shape):
    return WatermarkingScheme(
        shape=book_shape,
        carriers=[
            CarrierSpec.create("year", "numeric", KeyIdentifier(("title",))),
            CarrierSpec.create(
                "publisher", "categorical", FDIdentifier(("editor",)),
                {"domain": ["mkp", "acm", "springer", "ieee"]}),
        ],
        templates=[
            UsabilityTemplate("authors-of", "author", ("title",)),
            UsabilityTemplate("year-of", "year", ("title",), tolerance=0.002),
        ],
        gamma=1,
    )


@pytest.fixture()
def embedded(db1_doc, scheme):
    encoder = WmXMLEncoder(scheme, SECRET)
    return encoder.embed(db1_doc, Watermark.from_message(MESSAGE))


class TestSchemeValidation:
    def test_valid_scheme(self, scheme):
        assert scheme.gamma == 1
        assert "year" in scheme.describe()

    def test_unknown_carrier_field(self, book_shape):
        with pytest.raises(RecordError):
            WatermarkingScheme(book_shape, [
                CarrierSpec.create("salary", "numeric",
                                   KeyIdentifier(("title",)))])

    def test_unknown_template_field(self, book_shape):
        with pytest.raises(RecordError):
            WatermarkingScheme(
                book_shape,
                [CarrierSpec.create("year", "numeric",
                                    KeyIdentifier(("title",)))],
                templates=[UsabilityTemplate("t", "salary", ("title",))])

    def test_bad_gamma(self, book_shape):
        with pytest.raises(RecordError):
            WatermarkingScheme(
                book_shape,
                [CarrierSpec.create("year", "numeric",
                                    KeyIdentifier(("title",)))],
                gamma=0)

    def test_no_carriers(self, book_shape):
        with pytest.raises(RecordError):
            WatermarkingScheme(book_shape, [])

    def test_unknown_algorithm(self, book_shape):
        with pytest.raises(Exception):
            WatermarkingScheme(book_shape, [
                CarrierSpec.create("year", "wat", KeyIdentifier(("title",)))])

    def test_carrier_for(self, scheme):
        assert scheme.carrier_for("year").algorithm == "numeric"
        with pytest.raises(RecordError):
            scheme.carrier_for("missing")


class TestEmbedding:
    def test_original_untouched_by_default(self, db1_doc, scheme):
        before = serialize(db1_doc)
        WmXMLEncoder(scheme, SECRET).embed(
            db1_doc, Watermark.from_message(MESSAGE))
        assert serialize(db1_doc) == before

    def test_in_place_mode(self, db1_doc, scheme):
        before = serialize(db1_doc)
        result = WmXMLEncoder(scheme, SECRET).embed(
            db1_doc, Watermark.from_message(MESSAGE), in_place=True)
        assert result.document is db1_doc
        assert serialize(db1_doc) != before

    def test_stats(self, embedded):
        stats = embedded.stats
        assert stats.capacity_groups == 5  # 3 years + 2 publisher groups
        assert stats.selected_groups == 5  # gamma=1
        assert stats.embedded_groups == 5
        assert stats.per_field == {"year": 3, "publisher": 2}
        assert stats.utilisation == 1.0
        # Mean mixes relative numeric error (~1e-3) with categorical
        # swap indicators (0 or 1); it must stay a sane [0, 1] average.
        assert 0.0 <= stats.mean_distortion <= 1.0

    def test_record_contents(self, embedded):
        record = embedded.record
        assert record.gamma == 1
        assert record.nbits == len(Watermark.from_message(MESSAGE))
        assert len(record.queries) == 5
        fields = {q.field for q in record.queries}
        assert fields == {"year", "publisher"}

    def test_fd_duplicates_marked_identically(self, embedded):
        # Harrypotter's two books must carry the same publisher value.
        from repro.xpath import select_strings
        values = select_strings(
            embedded.document,
            "/db/book[editor='Harrypotter']/@publisher")
        assert len(values) == 2
        assert len(set(values)) == 1

    def test_embedding_is_deterministic(self, db1_doc, scheme):
        wm = Watermark.from_message(MESSAGE)
        a = WmXMLEncoder(scheme, SECRET).embed(db1_doc, wm)
        b = WmXMLEncoder(scheme, SECRET).embed(db1_doc, wm)
        assert serialize(a.document) == serialize(b.document)

    def test_different_keys_differ(self, db1_doc, scheme):
        wm = Watermark.from_message(MESSAGE)
        a = WmXMLEncoder(scheme, "key-1").embed(db1_doc, wm)
        b = WmXMLEncoder(scheme, "key-2").embed(db1_doc, wm)
        assert serialize(a.document) != serialize(b.document)

    def test_gamma_reduces_marking(self, db1_doc, book_shape):
        carriers = [CarrierSpec.create("year", "numeric",
                                       KeyIdentifier(("title",)))]
        dense = WatermarkingScheme(book_shape, carriers, gamma=1)
        sparse = WatermarkingScheme(book_shape, carriers, gamma=1000)
        wm = Watermark.from_message(MESSAGE)
        dense_result = WmXMLEncoder(dense, SECRET).embed(db1_doc, wm)
        sparse_result = WmXMLEncoder(sparse, SECRET).embed(db1_doc, wm)
        assert sparse_result.stats.selected_groups <= \
            dense_result.stats.selected_groups


class TestDetection:
    def test_detects_on_marked_document(self, embedded, book_shape):
        decoder = WmXMLDecoder(SECRET, alpha=0.05)
        outcome = decoder.detect(embedded.document, embedded.record,
                                 book_shape,
                                 expected=Watermark.from_message(MESSAGE))
        assert outcome.match_ratio == 1.0
        assert outcome.detected
        assert outcome.query_survival == 1.0

    def test_wrong_key_fails(self, embedded, book_shape):
        decoder = WmXMLDecoder("wrong-key", alpha=0.05)
        outcome = decoder.detect(embedded.document, embedded.record,
                                 book_shape,
                                 expected=Watermark.from_message(MESSAGE))
        # Wrong key reads wrong parities for categorical and wrong
        # expected bits everywhere: match ratio collapses to ~chance.
        assert outcome.match_ratio < 1.0 or not outcome.detected

    def test_unmarked_document_not_detected(self, db1_doc, embedded,
                                            book_shape):
        decoder = WmXMLDecoder(SECRET, alpha=1e-3)
        outcome = decoder.detect(db1_doc, embedded.record, book_shape,
                                 expected=Watermark.from_message(MESSAGE))
        assert not outcome.detected

    def test_detection_after_reorganization(self, embedded, book_shape,
                                            publisher_shape):
        db2 = reorganize(embedded.document, book_shape,
                         publisher_shape).document
        decoder = WmXMLDecoder(SECRET, alpha=0.05)
        outcome = decoder.detect(db2, embedded.record, publisher_shape,
                                 expected=Watermark.from_message(MESSAGE))
        assert outcome.match_ratio == 1.0
        assert outcome.detected

    def test_no_rewriting_loses_watermark(self, embedded, book_shape,
                                          publisher_shape):
        db2 = reorganize(embedded.document, book_shape,
                         publisher_shape).document
        decoder = WmXMLDecoder(SECRET, alpha=0.05)
        outcome = decoder.detect(db2, embedded.record, book_shape,
                                 expected=Watermark.from_message(MESSAGE))
        assert outcome.votes_total == 0
        assert not outcome.detected

    def test_blind_reconstruction_partial(self, embedded, book_shape):
        decoder = WmXMLDecoder(SECRET)
        outcome = decoder.detect(embedded.document, embedded.record,
                                 book_shape)
        wm = Watermark.from_message(MESSAGE)
        recovered_indices = [
            i for i, bit in enumerate(outcome.recovered_bits)
            if bit is not None]
        assert recovered_indices  # something recovered
        assert all(outcome.recovered_bits[i] == wm.bits[i]
                   for i in recovered_indices)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            WmXMLDecoder(SECRET, alpha=0.0)
        with pytest.raises(ValueError):
            WmXMLDecoder(SECRET, alpha=1.5)

    def test_result_str(self, embedded, book_shape):
        decoder = WmXMLDecoder(SECRET, alpha=0.05)
        outcome = decoder.detect(embedded.document, embedded.record,
                                 book_shape,
                                 expected=Watermark.from_message(MESSAGE))
        assert "votes match" in str(outcome)


class TestRecordPersistence:
    def test_json_roundtrip(self, embedded):
        text = embedded.record.to_json()
        loaded = WatermarkRecord.from_json(text)
        assert loaded.gamma == embedded.record.gamma
        assert loaded.nbits == embedded.record.nbits
        assert len(loaded) == len(embedded.record)
        assert loaded.queries[0] == embedded.record.queries[0]

    def test_file_roundtrip(self, embedded, tmp_path):
        path = tmp_path / "record.json"
        embedded.record.save(str(path))
        loaded = WatermarkRecord.load(str(path))
        assert loaded.key_fingerprint == embedded.record.key_fingerprint

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            WatermarkRecord.from_json('{"format": "other"}')

    def test_loaded_record_still_detects(self, embedded, book_shape):
        loaded = WatermarkRecord.from_json(embedded.record.to_json())
        decoder = WmXMLDecoder(SECRET, alpha=0.05)
        outcome = decoder.detect(embedded.document, loaded, book_shape,
                                 expected=Watermark.from_message(MESSAGE))
        assert outcome.detected


class TestUsability:
    def test_marked_document_fully_usable(self, db1_doc, scheme, embedded,
                                          book_shape):
        baseline = UsabilityBaseline.snapshot(db1_doc, book_shape,
                                              scheme.templates)
        report = baseline.evaluate(embedded.document)
        assert report.strict == 1.0
        assert report.jaccard == 1.0
        assert not report.destroyed()

    def test_reorganised_document_fully_usable(self, db1_doc, scheme,
                                               embedded, book_shape,
                                               publisher_shape):
        db2 = reorganize(embedded.document, book_shape,
                         publisher_shape).document
        baseline = UsabilityBaseline.snapshot(db1_doc, book_shape,
                                              scheme.templates)
        report = baseline.evaluate(db2, publisher_shape)
        assert report.strict == 1.0

    def test_damage_reduces_usability(self, db1_doc, scheme, book_shape):
        baseline = UsabilityBaseline.snapshot(db1_doc, book_shape,
                                              scheme.templates)
        damaged = db1_doc.copy()
        for title in damaged.root.iter_elements("title"):
            title.set_text("DESTROYED")
        report = baseline.evaluate(damaged)
        assert report.strict == 0.0
        assert report.destroyed()

    def test_tolerance_absorbs_small_numeric_changes(self, db1_doc,
                                                     book_shape):
        templates = [UsabilityTemplate("year-of", "year", ("title",),
                                       tolerance=0.002)]
        baseline = UsabilityBaseline.snapshot(db1_doc, book_shape, templates)
        perturbed = db1_doc.copy()
        year = perturbed.root.find("book").find("year")
        year.set_text("1999")  # within 0.2% of 1998
        assert baseline.evaluate(perturbed).strict == 1.0

    def test_zero_tolerance_counts_perturbation(self, db1_doc, book_shape):
        templates = [UsabilityTemplate("year-of", "year", ("title",))]
        baseline = UsabilityBaseline.snapshot(db1_doc, book_shape, templates)
        perturbed = db1_doc.copy()
        perturbed.root.find("book").find("year").set_text("1999")
        report = baseline.evaluate(perturbed)
        assert report.strict < 1.0

    def test_partial_damage_jaccard(self, db1_doc, book_shape):
        templates = [UsabilityTemplate("authors-of", "author", ("title",))]
        baseline = UsabilityBaseline.snapshot(db1_doc, book_shape, templates)
        damaged = db1_doc.copy()
        # Remove one of the two authors of book 1.
        book = damaged.root.find("book")
        book.remove(book.child_elements("author")[1])
        report = baseline.evaluate(damaged)
        assert 0.0 < report.jaccard < 1.0
        assert report.strict < 1.0

    def test_template_validation(self):
        with pytest.raises(ValueError):
            UsabilityTemplate("t", "year", ())
        with pytest.raises(ValueError):
            UsabilityTemplate("t", "year", ("year",))
        with pytest.raises(ValueError):
            UsabilityTemplate("t", "year", ("title",), tolerance=-1)

    def test_values_match(self):
        assert values_match("5", "5", 0.0)
        assert not values_match("5", "5.01", 0.0)
        assert values_match("100", "100.5", 0.01)
        assert not values_match("100", "102", 0.01)
        assert not values_match("abc", "abd", 0.5)

    def test_template_serialisation(self):
        template = UsabilityTemplate("t", "year", ("title",), tolerance=0.01)
        again = UsabilityTemplate.from_dict(template.to_dict())
        assert again == template
