"""Tests for the extension features: indexed execution, DTD import/
export, error-correcting codes, and fingerprinting with collusion."""

import pytest

from repro.attacks import (
    CollusionAttack,
    ReductionAttack,
    ReorganizationAttack,
    ValueAlterationAttack,
)
from repro.core import (
    Fingerprinter,
    Hamming74Code,
    RepetitionCode,
    Watermark,
    WmXMLDecoder,
    WmXMLEncoder,
    choose_code,
)
from repro.datasets import bibliography, jobs
from repro.rewriting import LogicalExecutor, LogicalQuery, compile_logical
from repro.semantics import (
    SchemaError,
    infer_schema,
    is_valid,
    parse_dtd,
    render_dtd,
)
from repro.xpath import compile_xpath

CONFIG = bibliography.BibliographyConfig(books=60, editors=8, seed=51)


@pytest.fixture(scope="module")
def doc():
    return bibliography.generate_document(CONFIG)


# ---------------------------------------------------------------------------
# Indexed logical execution
# ---------------------------------------------------------------------------

class TestLogicalExecutor:
    def test_matches_xpath_on_clean_document(self, doc):
        shape = bibliography.book_shape()
        executor = LogicalExecutor(doc, shape)
        rows = shape.shred(doc)
        for row in rows[:20]:
            query = LogicalQuery.create("year", {"title": row["title"]})
            via_xpath = set(compile_xpath(
                compile_logical(query, shape)).select_strings(doc))
            via_index = set(executor.execute_strings(query))
            assert via_index == via_xpath

    def test_matches_xpath_on_attacked_document(self, doc):
        shape = bibliography.book_shape()
        attacked = ValueAlterationAttack(0.4, seed=9).apply(doc).document
        executor = LogicalExecutor(attacked, shape)
        for row in shape.shred(doc)[:20]:
            query = LogicalQuery.create("year", {"title": row["title"]})
            via_xpath = set(compile_xpath(
                compile_logical(query, shape)).select_strings(attacked))
            via_index = set(executor.execute_strings(query))
            assert via_index == via_xpath

    def test_fd_query_multiplicity(self, doc):
        shape = bibliography.book_shape()
        executor = LogicalExecutor(doc, shape)
        fd = bibliography.semantic_fd()
        group = fd.duplicated_groups(doc)[0]
        query = LogicalQuery.create("publisher",
                                    {"editor": group.lhs[0]})
        assert len(executor.execute(query)) == len(group)

    def test_unknown_target_raises(self, doc):
        from repro.semantics import RecordError
        executor = LogicalExecutor(doc, bibliography.book_shape())
        with pytest.raises(RecordError):
            executor.execute(LogicalQuery.create("salary", {"title": "X"}))

    def test_no_conditions_returns_all(self, doc):
        executor = LogicalExecutor(doc, bibliography.book_shape())
        nodes = executor.execute(LogicalQuery("year", ()))
        assert len(nodes) == 60

    def test_decoder_indexed_parity(self, doc):
        scheme = bibliography.default_scheme(2)
        wm = Watermark.from_message("IDX")
        result = WmXMLEncoder(scheme, "idx-key").embed(doc, wm)
        decoder = WmXMLDecoder("idx-key")
        reduced = ReductionAttack(0.6, seed=3).apply(result.document).document
        scan = decoder.detect(reduced, result.record, scheme.shape,
                              expected=wm)
        fast = decoder.detect(reduced, result.record, scheme.shape,
                              expected=wm, indexed=True)
        assert (scan.votes_total, scan.votes_matching) == \
            (fast.votes_total, fast.votes_matching)
        assert scan.detected == fast.detected

    def test_decoder_indexed_after_reorganization(self, doc):
        scheme = bibliography.default_scheme(2)
        wm = Watermark.from_message("IDX")
        result = WmXMLEncoder(scheme, "idx-key").embed(doc, wm)
        target = bibliography.publisher_shape()
        stolen = ReorganizationAttack(scheme.shape, target).apply(
            result.document).document
        outcome = WmXMLDecoder("idx-key").detect(
            stolen, result.record, target, expected=wm, indexed=True)
        assert outcome.detected
        assert outcome.match_ratio == 1.0


# ---------------------------------------------------------------------------
# DTD import / export
# ---------------------------------------------------------------------------

class TestDTD:
    DTD = """
    <!-- root element: db -->
    <!ELEMENT db (book*)>
    <!ELEMENT book (title, (author|writer)+, editor?, year)>
    <!ATTLIST book publisher CDATA #REQUIRED
                   isbn CDATA #IMPLIED>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT writer (#PCDATA)>
    <!ELEMENT editor (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
    <!-- wmxml:type tag=year type=year -->
    """

    def test_parse_structure(self):
        schema = parse_dtd(self.DTD)
        assert schema.root == "db"
        book = schema.declaration("book")
        assert book.child_tags() == {"title", "author", "writer",
                                     "editor", "year"}
        assert book.attribute("publisher").required
        assert not book.attribute("isbn").required

    def test_type_hint_applied(self):
        schema = parse_dtd(self.DTD)
        from repro.semantics import LeafType
        assert schema.declaration("year").leaf_type is LeafType.YEAR

    def test_parsed_schema_validates_paper_document(self):
        from repro.datasets.paper import figure1_db1
        schema = parse_dtd(self.DTD)
        assert is_valid(schema, figure1_db1())

    def test_choice_group(self):
        schema = parse_dtd(self.DTD)
        assert schema.matches_children(
            "book", ["title", "writer", "writer", "editor", "year"])
        assert schema.matches_children(
            "book", ["title", "author", "year"])
        assert not schema.matches_children("book", ["title", "year"])

    def test_render_parse_fixpoint(self, doc):
        schema = infer_schema(doc)
        text = render_dtd(schema)
        again = parse_dtd(text)
        assert is_valid(again, doc)
        assert render_dtd(again) == text

    def test_jobs_roundtrip(self):
        feed = jobs.generate_document(jobs.JobsConfig(jobs=30))
        schema = infer_schema(feed)
        assert is_valid(parse_dtd(render_dtd(schema)), feed)

    def test_mixed_content_rejected(self):
        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT a (#PCDATA|b)*><!ELEMENT b (#PCDATA)>")

    def test_nested_groups_rejected(self):
        with pytest.raises(SchemaError):
            parse_dtd("<!ELEMENT a ((b,c)|d)>"
                      "<!ELEMENT b (#PCDATA)><!ELEMENT c (#PCDATA)>"
                      "<!ELEMENT d (#PCDATA)>")

    def test_empty_dtd_rejected(self):
        with pytest.raises(SchemaError):
            parse_dtd("<!-- nothing here -->")

    def test_empty_element_supported(self):
        schema = parse_dtd("<!ELEMENT x EMPTY>")
        assert schema.declaration("x").is_leaf


# ---------------------------------------------------------------------------
# Error-correcting codes
# ---------------------------------------------------------------------------

class TestRepetitionCode:
    def test_roundtrip(self):
        code = RepetitionCode(3)
        bits = [1, 0, 1, 1, 0]
        assert code.decode(code.encode(bits)) == bits

    def test_corrects_minority_errors(self):
        code = RepetitionCode(5)
        word = code.encode([1, 0])
        word[0] ^= 1  # two errors in the first block
        word[1] ^= 1
        assert code.decode(word) == [1, 0]

    def test_erasure_tolerance(self):
        code = RepetitionCode(3)
        word = list(code.encode([1]))
        soft = [None, 1, 1]
        assert code.decode(soft) == [1]

    def test_tie_is_none(self):
        code = RepetitionCode(2)
        assert code.decode([0, 1]) == [None]
        assert code.decode([None, None]) == [None]

    def test_length_check(self):
        with pytest.raises(ValueError):
            RepetitionCode(3).decode([1, 0])

    def test_factor_validated(self):
        with pytest.raises(ValueError):
            RepetitionCode(0)


class TestHamming74:
    def test_roundtrip(self):
        code = Hamming74Code()
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        decoded = code.decode(code.encode(bits))
        assert decoded[:len(bits)] == bits

    def test_corrects_any_single_error(self):
        code = Hamming74Code()
        bits = [1, 0, 1, 1]
        word = code.encode(bits)
        for position in range(7):
            damaged = list(word)
            damaged[position] ^= 1
            assert code.decode(damaged)[:4] == bits, position

    def test_single_erasure_recovered(self):
        code = Hamming74Code()
        bits = [0, 1, 1, 0]
        word = list(code.encode(bits))
        for position in range(7):
            soft = list(word)
            soft[position] = None
            assert code.decode(soft)[:4] == bits, position

    def test_double_erasure_undecodable(self):
        code = Hamming74Code()
        word = list(code.encode([1, 1, 1, 1]))
        word[0] = None
        word[3] = None
        assert code.decode(word) == [None] * 4

    def test_padding(self):
        code = Hamming74Code()
        assert code.encoded_length(5) == 14  # two blocks

    def test_message_helpers(self):
        code = Hamming74Code()
        wm = Watermark.from_message("Hi")
        encoded = code.encode_watermark(wm)
        assert code.decode_message(list(encoded.bits)) == "Hi"

    def test_choose_code(self):
        assert isinstance(choose_code("repetition", factor=2),
                          RepetitionCode)
        assert isinstance(choose_code("hamming74"), Hamming74Code)
        with pytest.raises(ValueError):
            choose_code("turbo")


class TestECCWithPipeline:
    def test_blind_recovery_with_ecc_beats_raw(self, doc):
        """ECC-encoded blind recovery survives deletion that breaks raw."""
        code = RepetitionCode(3)
        message = "EC"
        raw = Watermark.from_message(message)
        encoded = code.encode_watermark(raw)
        scheme = bibliography.default_scheme(1)
        result = WmXMLEncoder(scheme, "ecc-key").embed(doc, encoded)
        attacked = ReductionAttack(0.55, seed=8).apply(
            result.document).document
        outcome = WmXMLDecoder("ecc-key").detect(
            attacked, result.record, scheme.shape)
        assert code.decode_message(outcome.recovered_bits) == message


# ---------------------------------------------------------------------------
# Fingerprinting and collusion
# ---------------------------------------------------------------------------

class TestFingerprinting:
    @pytest.fixture(scope="class")
    def fingerprinter(self, doc):
        scheme = bibliography.default_scheme(2)
        fingerprinter = Fingerprinter(scheme, "master-key", alpha=1e-3)
        copies = {
            name: fingerprinter.issue(doc, name)
            for name in ("alice", "bob", "carol")
        }
        return fingerprinter, copies

    def test_copies_differ(self, fingerprinter):
        _, copies = fingerprinter
        from repro.xmlmodel import serialize
        texts = {serialize(copy.document) for copy in copies.values()}
        assert len(texts) == 3

    def test_leak_traced_to_the_right_recipient(self, fingerprinter):
        tracer, copies = fingerprinter
        trace = tracer.trace(copies["bob"].document)
        assert trace.prime_suspect == "bob"
        assert trace.accused == ["bob"]

    def test_trace_survives_attack_on_leak(self, fingerprinter):
        tracer, copies = fingerprinter
        leaked = ValueAlterationAttack(0.15, seed=4).apply(
            copies["carol"].document).document
        trace = tracer.trace(leaked)
        assert trace.prime_suspect == "carol"

    def test_trace_after_reorganization(self, fingerprinter, doc):
        tracer, copies = fingerprinter
        target = bibliography.publisher_shape()
        stolen = ReorganizationAttack(bibliography.book_shape(),
                                      target).apply(
            copies["alice"].document).document
        trace = tracer.trace(stolen, shape=target)
        assert trace.prime_suspect == "alice"

    def test_unrelated_document_accuses_nobody(self, fingerprinter):
        tracer, _ = fingerprinter
        other = bibliography.generate_document(
            bibliography.BibliographyConfig(books=60, editors=8, seed=99))
        trace = tracer.trace(other)
        assert trace.accused == []
        assert "no issued fingerprint" in str(trace)

    def test_collusion_of_two_traced(self, fingerprinter):
        tracer, copies = fingerprinter
        attack = CollusionAttack(
            [copies["alice"].document, copies["bob"].document],
            strategy="majority", seed=2)
        merged = attack.apply(copies["alice"].document).document
        trace = tracer.trace(merged)
        # Both colluders remain detectable; the non-colluder is not.
        assert set(trace.accused) <= {"alice", "bob"}
        assert trace.accused  # at least one colluder caught
        assert "carol" not in trace.accused

    def test_collusion_needs_two_copies(self, fingerprinter):
        _, copies = fingerprinter
        with pytest.raises(ValueError):
            CollusionAttack([copies["alice"].document])

    def test_empty_recipient_rejected(self, doc):
        fingerprinter = Fingerprinter(bibliography.default_scheme(2), "m")
        with pytest.raises(ValueError):
            fingerprinter.issue(doc, "")
