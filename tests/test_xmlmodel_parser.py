"""Unit tests for the from-scratch XML parser (repro.xmlmodel.parser)."""

import pickle

import pytest

from repro.xmlmodel import (
    Comment,
    Element,
    ProcessingInstruction,
    Text,
    XMLSyntaxError,
    parse,
    parse_file,
    parse_many,
    serialize,
)


class TestBasicParsing:
    def test_minimal_document(self):
        doc = parse("<db/>")
        assert doc.root.tag == "db"
        assert doc.root.children == []

    def test_nested_elements(self):
        doc = parse("<db><book><title>DB Design</title></book></db>")
        assert doc.root.find("book").find_text("title") == "DB Design"

    def test_attributes_double_quotes(self):
        doc = parse('<book publisher="mkp" year="1998"/>')
        assert doc.root.get_attribute("publisher") == "mkp"
        assert doc.root.get_attribute("year") == "1998"

    def test_attributes_single_quotes(self):
        doc = parse("<book publisher='mkp'/>")
        assert doc.root.get_attribute("publisher") == "mkp"

    def test_mixed_quotes_value_content(self):
        doc = parse("<a x='say \"hi\"'/>")
        assert doc.root.get_attribute("x") == 'say "hi"'

    def test_empty_attribute(self):
        doc = parse('<a x=""/>')
        assert doc.root.get_attribute("x") == ""

    def test_whitespace_around_equals(self):
        doc = parse('<a x = "1"/>')
        assert doc.root.get_attribute("x") == "1"

    def test_self_closing_with_space(self):
        doc = parse("<db ><book /></db >")
        assert doc.root.find("book") is not None

    def test_text_preserved_exactly(self):
        doc = parse("<a>  two  spaces  </a>")
        assert doc.root.text == "  two  spaces  "

    def test_strip_whitespace_mode(self):
        doc = parse("<db>\n  <x>1</x>\n</db>", strip_whitespace=True)
        assert all(not isinstance(c, Text) for c in doc.root.children)

    def test_strip_whitespace_keeps_real_text(self):
        doc = parse("<x>  real  </x>", strip_whitespace=True)
        assert doc.root.text == "  real  "


class TestReferences:
    def test_predefined_entities(self):
        doc = parse("<a>&amp;&lt;&gt;&quot;&apos;</a>")
        assert doc.root.text == "&<>\"'"

    def test_decimal_char_reference(self):
        assert parse("<a>&#65;</a>").root.text == "A"

    def test_hex_char_reference(self):
        assert parse("<a>&#x41;&#x20AC;</a>").root.text == "A€"

    def test_entities_in_attributes(self):
        doc = parse('<a x="a&amp;b&#x21;"/>')
        assert doc.root.get_attribute("x") == "a&b!"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&nbsp;</a>")

    def test_bare_ampersand_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>fish & chips</a>")

    def test_null_char_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&#0;</a>")

    def test_out_of_range_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&#1114112;</a>")

    def test_empty_char_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&#;</a>")


class TestStructuralNodes:
    def test_comment(self):
        doc = parse("<a><!-- note --></a>")
        assert isinstance(doc.root.children[0], Comment)
        assert doc.root.children[0].value == " note "

    def test_comment_with_double_dash_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><!-- bad -- comment --></a>")

    def test_processing_instruction(self):
        doc = parse("<a><?php echo 1; ?></a>")
        pi = doc.root.children[0]
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "php"
        assert pi.data == "echo 1; "

    def test_pi_xml_target_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><?xml bad?></a>")

    def test_cdata(self):
        doc = parse("<a><![CDATA[<not> & parsed]]></a>")
        assert doc.root.text == "<not> & parsed"

    def test_cdata_merges_with_text(self):
        doc = parse("<a>x<![CDATA[&]]>y</a>")
        assert doc.root.text == "x&y"
        assert len(doc.root.children) == 1

    def test_xml_declaration(self):
        doc = parse('<?xml version="1.0" encoding="UTF-8"?><db/>')
        assert doc.root.tag == "db"

    def test_doctype_skipped(self):
        doc = parse('<!DOCTYPE db SYSTEM "db.dtd"><db/>')
        assert doc.root.tag == "db"

    def test_doctype_internal_subset_skipped(self):
        text = '<!DOCTYPE db [ <!ELEMENT db (#PCDATA)> ]><db>x</db>'
        assert parse(text).root.text == "x"

    def test_prolog_comment_captured(self):
        doc = parse("<!-- header --><db/>")
        assert len(doc.prolog) == 1
        assert isinstance(doc.prolog[0], Comment)

    def test_epilog_comment_captured(self):
        doc = parse("<db/><!-- trailer -->")
        assert len(doc.epilog) == 1


class TestWellFormedness:
    def test_mismatched_tags(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b></a></b>")

    def test_unterminated_element(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b></b>")

    def test_duplicate_attribute(self):
        with pytest.raises(XMLSyntaxError):
            parse('<a x="1" x="2"/>')

    def test_unquoted_attribute(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a x=1/>")

    def test_lt_in_attribute(self):
        with pytest.raises(XMLSyntaxError):
            parse('<a x="a<b"/>')

    def test_content_after_root(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/><b/>")

    def test_text_outside_root(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/>stray")

    def test_missing_root(self):
        with pytest.raises(XMLSyntaxError):
            parse("   ")

    def test_cdata_terminator_in_text(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>bad ]]> text</a>")

    def test_missing_attr_space(self):
        with pytest.raises(XMLSyntaxError):
            parse('<a x="1"y="2"/>')

    def test_unterminated_comment(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><!-- never closed</a>")

    def test_unterminated_cdata(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><![CDATA[never closed</a>")

    def test_garbage_tag(self):
        with pytest.raises(XMLSyntaxError):
            parse("<1bad/>")

    def test_error_positions(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse("<a>\n<b>\n</c>\n</a>")
        assert excinfo.value.line >= 1
        assert excinfo.value.column >= 1
        assert "line" in str(excinfo.value)

    def test_non_string_input(self):
        with pytest.raises(TypeError):
            parse(b"<a/>")  # type: ignore[arg-type]


class TestRoundTrip:
    CASES = [
        "<db/>",
        "<db><book/><book/></db>",
        '<book publisher="mkp"><title>Readings in Database Systems</title></book>',
        "<a>text &amp; entities &lt;here&gt;</a>",
        "<a><!--c--><b>x</b><?pi data?></a>",
        "<a>mixed <b>bold</b> tail</a>",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_serialize_fixpoint(self, text):
        assert serialize(parse(text)) == text

    def test_paper_figure1_document(self):
        """The literal db1.xml fragment from Figure 1 of the paper parses."""
        text = (
            "<db>"
            '<book publisher="mkp">'
            "<title>Readings in Database Systems</title>"
            "<author>Stonebraker</author>"
            "<author>Hellerstein</author>"
            "<editor>Harrypotter</editor>"
            "<year>1998</year>"
            "</book>"
            '<book publisher="acm">'
            "<title>Database Design</title>"
            "<writer>Berstein</writer>"
            "<writer>Newcomer</writer>"
            "<editor>Gamer</editor>"
            "<year>1998</year>"
            "</book>"
            "</db>"
        )
        doc = parse(text)
        books = doc.root.child_elements("book")
        assert len(books) == 2
        assert books[0].find_text("year") == "1998"
        assert serialize(doc) == text


class TestParseFile:
    def test_parse_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<db><x>1</x></db>", encoding="utf-8")
        doc = parse_file(str(path))
        assert doc.root.find_text("x") == "1"


class TestEndOfLineNormalization:
    """XML 1.0 §2.11: \\r\\n and bare \\r become \\n before parsing."""

    def test_crlf_in_text(self):
        assert parse("<a>x\r\ny</a>").root.text == "x\ny"

    def test_bare_cr_in_text(self):
        assert parse("<a>x\ry</a>").root.text == "x\ny"

    def test_cr_in_cdata(self):
        assert parse("<a><![CDATA[x\r\ny\rz]]></a>").root.text == "x\ny\nz"

    def test_cr_in_attribute(self):
        assert parse('<a v="x\ry"/>').root.get_attribute("v") == "x\ny"

    def test_character_reference_cr_survives(self):
        assert parse("<a>&#13;&#xD;</a>").root.text == "\r\r"

    def test_cr_as_markup_whitespace(self):
        doc = parse('<a\r\nx="1"\r/>')
        assert doc.root.get_attribute("x") == "1"

    def test_error_lines_count_normalized_newlines(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse("<a>\r\n<b>\r\n</c>\r\n</a>")
        assert excinfo.value.line == 2


class TestScannerDepth:
    def test_deep_nesting_needs_no_recursion(self):
        depth = 3000
        text = "<d>" * depth + "x" + "</d>" * depth
        doc = parse(text)
        node, levels = doc.root, 1
        while node.children and isinstance(node.children[0], Element):
            node = node.children[0]
            levels += 1
        assert levels == depth
        assert node.text == "x"


class TestParseBuiltIndexes:
    """The scanner populates the tree's indexes during the parse."""

    TEXT = ('<db><book publisher="mkp"><title>A</title></book>'
            "<book><title>B</title></book><note/></db>")

    def test_child_index_matches_children(self):
        root = parse(self.TEXT).root
        books = root.children_by_tag("book")
        assert books == [c for c in root.children
                         if isinstance(c, Element) and c.tag == "book"]
        assert root.children_by_tag("missing") == []

    def test_descendant_index_matches_walk(self):
        root = parse(self.TEXT).root
        assert (root.descendants_by_tag("title")
                == list(root.iter_elements("title")))

    def test_order_index_matches_lazy_rebuild(self):
        eager = parse(self.TEXT).root
        lazy = parse(self.TEXT).root
        lazy._order_cache = None

        def ranks(root, order):
            out = []
            for node in root.iter():
                out.append(order[id(node)])
                if isinstance(node, Element):
                    out.extend(order[(id(node), name)]
                               for name in node.attributes)
            return out

        assert (ranks(eager, eager.order_index())
                == ranks(lazy, lazy.order_index()))

    def test_mutation_invalidates_parse_built_indexes(self):
        root = parse(self.TEXT).root
        first = root.children_by_tag("book")[0]
        first.detach()
        assert len(root.children_by_tag("book")) == 1
        assert id(first) not in root.order_index()
        assert first not in root.descendants_by_tag("book")

    def test_pickle_drops_order_cache_and_rebuilds(self):
        doc = parse(self.TEXT)
        clone = pickle.loads(pickle.dumps(doc))
        assert clone.root._order_cache is None
        assert serialize(clone) == self.TEXT
        assert clone.root.order_index()[id(clone.root)] == 0


class TestParseMany:
    TEXTS = ["<a><b>1</b></a>", "<c/>", '<d x="1">t</d>']

    def test_serial_preserves_order(self):
        docs = parse_many(self.TEXTS)
        assert [serialize(d) for d in docs] == self.TEXTS

    def test_empty_batch(self):
        assert parse_many([]) == []

    def test_strip_whitespace_mode(self):
        docs = parse_many(["<db>\n  <x>1</x>\n</db>"], strip_whitespace=True)
        assert all(not isinstance(c, Text) for c in docs[0].root.children)

    def test_process_pool_matches_serial(self):
        pooled = parse_many(self.TEXTS * 3, processes=2)
        assert [serialize(d) for d in pooled] == self.TEXTS * 3

    def test_process_pool_documents_fully_usable(self):
        doc = parse_many(self.TEXTS, processes=2)[0]
        assert doc.root.children_by_tag("b")[0].text == "1"
        assert doc.root.order_index()[id(doc.root)] == 0

    def test_syntax_error_propagates_from_pool(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse_many(["<a/>", "<a><b></a>"], processes=2)
        assert excinfo.value.line >= 1

    def test_pool_falls_back_to_serial_for_unpicklably_deep_trees(self):
        depth = 4000
        text = "<d>" * depth + "x" + "</d>" * depth
        docs = parse_many([text, "<a/>"], processes=2)
        assert serialize(docs[1]) == "<a/>"
        assert docs[0].root.tag == "d"
