"""Unit tests for the from-scratch XML parser (repro.xmlmodel.parser)."""

import pytest

from repro.xmlmodel import (
    Comment,
    ProcessingInstruction,
    Text,
    XMLSyntaxError,
    parse,
    parse_file,
    serialize,
)


class TestBasicParsing:
    def test_minimal_document(self):
        doc = parse("<db/>")
        assert doc.root.tag == "db"
        assert doc.root.children == []

    def test_nested_elements(self):
        doc = parse("<db><book><title>DB Design</title></book></db>")
        assert doc.root.find("book").find_text("title") == "DB Design"

    def test_attributes_double_quotes(self):
        doc = parse('<book publisher="mkp" year="1998"/>')
        assert doc.root.get_attribute("publisher") == "mkp"
        assert doc.root.get_attribute("year") == "1998"

    def test_attributes_single_quotes(self):
        doc = parse("<book publisher='mkp'/>")
        assert doc.root.get_attribute("publisher") == "mkp"

    def test_mixed_quotes_value_content(self):
        doc = parse("<a x='say \"hi\"'/>")
        assert doc.root.get_attribute("x") == 'say "hi"'

    def test_empty_attribute(self):
        doc = parse('<a x=""/>')
        assert doc.root.get_attribute("x") == ""

    def test_whitespace_around_equals(self):
        doc = parse('<a x = "1"/>')
        assert doc.root.get_attribute("x") == "1"

    def test_self_closing_with_space(self):
        doc = parse("<db ><book /></db >")
        assert doc.root.find("book") is not None

    def test_text_preserved_exactly(self):
        doc = parse("<a>  two  spaces  </a>")
        assert doc.root.text == "  two  spaces  "

    def test_strip_whitespace_mode(self):
        doc = parse("<db>\n  <x>1</x>\n</db>", strip_whitespace=True)
        assert all(not isinstance(c, Text) for c in doc.root.children)

    def test_strip_whitespace_keeps_real_text(self):
        doc = parse("<x>  real  </x>", strip_whitespace=True)
        assert doc.root.text == "  real  "


class TestReferences:
    def test_predefined_entities(self):
        doc = parse("<a>&amp;&lt;&gt;&quot;&apos;</a>")
        assert doc.root.text == "&<>\"'"

    def test_decimal_char_reference(self):
        assert parse("<a>&#65;</a>").root.text == "A"

    def test_hex_char_reference(self):
        assert parse("<a>&#x41;&#x20AC;</a>").root.text == "A€"

    def test_entities_in_attributes(self):
        doc = parse('<a x="a&amp;b&#x21;"/>')
        assert doc.root.get_attribute("x") == "a&b!"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&nbsp;</a>")

    def test_bare_ampersand_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>fish & chips</a>")

    def test_null_char_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&#0;</a>")

    def test_out_of_range_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&#1114112;</a>")

    def test_empty_char_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&#;</a>")


class TestStructuralNodes:
    def test_comment(self):
        doc = parse("<a><!-- note --></a>")
        assert isinstance(doc.root.children[0], Comment)
        assert doc.root.children[0].value == " note "

    def test_comment_with_double_dash_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><!-- bad -- comment --></a>")

    def test_processing_instruction(self):
        doc = parse("<a><?php echo 1; ?></a>")
        pi = doc.root.children[0]
        assert isinstance(pi, ProcessingInstruction)
        assert pi.target == "php"
        assert pi.data == "echo 1; "

    def test_pi_xml_target_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><?xml bad?></a>")

    def test_cdata(self):
        doc = parse("<a><![CDATA[<not> & parsed]]></a>")
        assert doc.root.text == "<not> & parsed"

    def test_cdata_merges_with_text(self):
        doc = parse("<a>x<![CDATA[&]]>y</a>")
        assert doc.root.text == "x&y"
        assert len(doc.root.children) == 1

    def test_xml_declaration(self):
        doc = parse('<?xml version="1.0" encoding="UTF-8"?><db/>')
        assert doc.root.tag == "db"

    def test_doctype_skipped(self):
        doc = parse('<!DOCTYPE db SYSTEM "db.dtd"><db/>')
        assert doc.root.tag == "db"

    def test_doctype_internal_subset_skipped(self):
        text = '<!DOCTYPE db [ <!ELEMENT db (#PCDATA)> ]><db>x</db>'
        assert parse(text).root.text == "x"

    def test_prolog_comment_captured(self):
        doc = parse("<!-- header --><db/>")
        assert len(doc.prolog) == 1
        assert isinstance(doc.prolog[0], Comment)

    def test_epilog_comment_captured(self):
        doc = parse("<db/><!-- trailer -->")
        assert len(doc.epilog) == 1


class TestWellFormedness:
    def test_mismatched_tags(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b></a></b>")

    def test_unterminated_element(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><b></b>")

    def test_duplicate_attribute(self):
        with pytest.raises(XMLSyntaxError):
            parse('<a x="1" x="2"/>')

    def test_unquoted_attribute(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a x=1/>")

    def test_lt_in_attribute(self):
        with pytest.raises(XMLSyntaxError):
            parse('<a x="a<b"/>')

    def test_content_after_root(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/><b/>")

    def test_text_outside_root(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a/>stray")

    def test_missing_root(self):
        with pytest.raises(XMLSyntaxError):
            parse("   ")

    def test_cdata_terminator_in_text(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>bad ]]> text</a>")

    def test_missing_attr_space(self):
        with pytest.raises(XMLSyntaxError):
            parse('<a x="1"y="2"/>')

    def test_unterminated_comment(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><!-- never closed</a>")

    def test_unterminated_cdata(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a><![CDATA[never closed</a>")

    def test_garbage_tag(self):
        with pytest.raises(XMLSyntaxError):
            parse("<1bad/>")

    def test_error_positions(self):
        with pytest.raises(XMLSyntaxError) as excinfo:
            parse("<a>\n<b>\n</c>\n</a>")
        assert excinfo.value.line >= 1
        assert excinfo.value.column >= 1
        assert "line" in str(excinfo.value)

    def test_non_string_input(self):
        with pytest.raises(TypeError):
            parse(b"<a/>")  # type: ignore[arg-type]


class TestRoundTrip:
    CASES = [
        "<db/>",
        "<db><book/><book/></db>",
        '<book publisher="mkp"><title>Readings in Database Systems</title></book>',
        "<a>text &amp; entities &lt;here&gt;</a>",
        "<a><!--c--><b>x</b><?pi data?></a>",
        "<a>mixed <b>bold</b> tail</a>",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_serialize_fixpoint(self, text):
        assert serialize(parse(text)) == text

    def test_paper_figure1_document(self):
        """The literal db1.xml fragment from Figure 1 of the paper parses."""
        text = (
            "<db>"
            '<book publisher="mkp">'
            "<title>Readings in Database Systems</title>"
            "<author>Stonebraker</author>"
            "<author>Hellerstein</author>"
            "<editor>Harrypotter</editor>"
            "<year>1998</year>"
            "</book>"
            '<book publisher="acm">'
            "<title>Database Design</title>"
            "<writer>Berstein</writer>"
            "<writer>Newcomer</writer>"
            "<editor>Gamer</editor>"
            "<year>1998</year>"
            "</book>"
            "</db>"
        )
        doc = parse(text)
        books = doc.root.child_elements("book")
        assert len(books) == 2
        assert books[0].find_text("year") == "1998"
        assert serialize(doc) == text


class TestParseFile:
    def test_parse_file(self, tmp_path):
        path = tmp_path / "doc.xml"
        path.write_text("<db><x>1</x></db>", encoding="utf-8")
        doc = parse_file(str(path))
        assert doc.root.find_text("x") == "1"
