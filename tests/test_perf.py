"""Tests for the perf subsystem: timers, profiler, reporter, bench."""

import json

import pytest

from repro.perf import (
    StageTimer,
    ThroughputReporter,
    active_timer,
    profiled,
    use_timer,
)
from repro.perf.bench import (
    REGRESSION_THRESHOLD,
    best_for_host,
    check_regression,
    load_history,
    run_e9_bench,
    save_run,
)


class TestStageTimer:
    def test_records_and_accumulates(self):
        timer = StageTimer()
        timer.record("shred", 0.010)
        timer.record("shred", 0.020)
        timer.record("embed", 0.005)
        assert timer.total_ms("shred") == pytest.approx(30.0)
        assert timer.stages["shred"].calls == 2
        assert timer.stages["shred"].mean_ms == pytest.approx(15.0)
        assert timer.total_ms("embed") == pytest.approx(5.0)

    def test_absent_stage_is_zero(self):
        assert StageTimer().total_ms("nope") == 0.0

    def test_stage_context_manager_uses_clock(self):
        ticks = iter([0.0, 1.5])
        timer = StageTimer(clock=lambda: next(ticks))
        with timer.stage("work"):
            pass
        assert timer.total_ms("work") == pytest.approx(1500.0)

    def test_measure_returns_result(self):
        timer = StageTimer()
        assert timer.measure("calc", lambda a, b: a + b, 2, 3) == 5
        assert timer.stages["calc"].calls == 1

    def test_records_even_when_block_raises(self):
        timer = StageTimer()
        with pytest.raises(ValueError):
            with timer.stage("boom"):
                raise ValueError("x")
        assert timer.stages["boom"].calls == 1

    def test_render_and_as_dict(self):
        timer = StageTimer()
        timer.record("alpha", 0.001)
        text = timer.render("title")
        assert "title" in text and "alpha" in text
        assert timer.as_dict() == {"alpha": pytest.approx(1.0)}


class TestProfiler:
    def test_no_active_timer_is_passthrough(self):
        @profiled("stage")
        def work():
            return 42

        assert active_timer() is None
        assert work() == 42

    def test_active_timer_records_calls(self):
        @profiled("inner")
        def work():
            return "ok"

        timer = StageTimer()
        with use_timer(timer) as active:
            assert active is timer
            assert active_timer() is timer
            work()
            work()
        assert active_timer() is None
        assert timer.stages["inner"].calls == 2

    def test_default_stage_name_is_qualname(self):
        @profiled()
        def named_function():
            return 1

        timer = StageTimer()
        with use_timer(timer):
            named_function()
        assert any("named_function" in name for name in timer.stages)

    def test_nested_timers_record_into_innermost(self):
        @profiled("x")
        def work():
            pass

        outer, inner = StageTimer(), StageTimer()
        with use_timer(outer):
            with use_timer(inner):
                work()
        assert "x" in inner.stages
        assert "x" not in outer.stages


class TestThroughputReporter:
    def test_rate(self):
        reporter = ThroughputReporter()
        line = reporter.add("embed", 500, 0.25, unit="elements")
        assert line.rate == pytest.approx(2000.0)
        assert "elements/s" in line.render()
        assert "embed" in reporter.render()

    def test_zero_seconds_rate_is_zero(self):
        assert ThroughputReporter().add("x", 10, 0.0).rate == 0.0

    def test_add_from_timer(self):
        timer = StageTimer()
        timer.record("detect", 0.5)
        reporter = ThroughputReporter()
        line = reporter.add_from_timer(timer, "detect", 100, unit="queries")
        assert line is not None and line.rate == pytest.approx(200.0)
        assert reporter.add_from_timer(timer, "absent", 100) is None


class TestRegressionGate:
    def test_regression_detected_beyond_threshold(self):
        best = {"embed_ms": 10.0}
        slow = {"embed_ms": 10.0 * REGRESSION_THRESHOLD * 1.1}
        failures = check_regression(slow, best)
        assert len(failures) == 1
        assert "embed_ms" in failures[0]

    def test_within_threshold_passes(self):
        best = {"embed_ms": 10.0, "detect_scan_ms": 50.0}
        current = {"embed_ms": 11.5, "detect_scan_ms": 40.0}
        assert check_regression(current, best) == []

    def test_unknown_stage_is_not_gated(self):
        assert check_regression({"new_stage_ms": 100.0}, {}) == []

    def test_history_roundtrip_and_best_only_decreases(self, tmp_path):
        path = str(tmp_path / "BENCH_e9.json")
        assert load_history(path)["runs"] == []
        save_run(path, {"books": 10, "stages": {"embed_ms": 20.0}})
        save_run(path, {"books": 10, "stages": {"embed_ms": 30.0}})
        save_run(path, {"books": 10, "stages": {"embed_ms": 15.0}})
        history = load_history(path)
        assert len(history["runs"]) == 3
        assert best_for_host(history)["embed_ms"] == pytest.approx(15.0)
        assert all("timestamp" in run for run in history["runs"])
        assert all("host" in run for run in history["runs"])

    def test_best_is_kept_per_host(self, tmp_path):
        path = str(tmp_path / "BENCH_e9.json")
        save_run(path, {"books": 10, "host": "machine-a",
                        "stages": {"embed_ms": 10.0}})
        save_run(path, {"books": 10, "host": "machine-b",
                        "stages": {"embed_ms": 40.0}})
        history = load_history(path)
        assert best_for_host(history, "machine-a")["embed_ms"] == 10.0
        assert best_for_host(history, "machine-b")["embed_ms"] == 40.0
        # A host with no recorded baseline gates against nothing.
        assert best_for_host(history, "machine-c") == {}

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError):
            load_history(str(path))


class TestBenchRun:
    def test_small_bench_produces_all_stages(self):
        run = run_e9_bench(books=10, repeats=1, processes=0)
        assert run["books"] == 10
        assert run["elements"] > 0 and run["queries"] > 0
        for stage in ("parse_ms", "serialize_ms", "shred_ms", "embed_ms",
                      "detect_scan_ms", "detect_indexed_ms",
                      "api_embed_many_ms", "api_detect_many_ms",
                      "api_embed_many_xml_ms", "api_detect_many_xml_ms",
                      "parse_many_ms"):
            assert run["stages"][stage] > 0
        # processes=0 skips the pooled stages entirely.
        assert not any(name.startswith("api_embed_many_p")
                       for name in run["stages"])

    def test_bench_records_api_batch_throughput(self):
        from repro.perf.bench import BATCH_DOCS

        run = run_e9_bench(books=10, repeats=1, processes=0)
        assert run["batch_docs"] == BATCH_DOCS
        docs_per_s = run["throughput"]["api_embed_many_docs_per_s"]
        assert docs_per_s == pytest.approx(
            BATCH_DOCS / (run["stages"]["api_embed_many_ms"] / 1000.0))
        detect_docs_per_s = run["throughput"]["api_detect_many_docs_per_s"]
        assert detect_docs_per_s == pytest.approx(
            BATCH_DOCS / (run["stages"]["api_detect_many_ms"] / 1000.0))
        parse_docs_per_s = run["throughput"]["parse_many_docs_per_s"]
        assert parse_docs_per_s == pytest.approx(
            BATCH_DOCS / (run["stages"]["parse_many_ms"] / 1000.0))

    def test_bench_parallel_stages_record_speedup(self):
        # The pooled stages are asserted bit-identical against the
        # serial batch inside run_e9_bench itself; here we check the
        # bookkeeping (stage names keyed by worker count + speedup
        # ratios derived from the recorded stages).
        run = run_e9_bench(books=10, repeats=1, processes=2)
        assert run["processes"] == 2
        assert run["stages"]["api_embed_many_p2_ms"] > 0
        assert run["stages"]["api_detect_many_p2_ms"] > 0
        throughput = run["throughput"]
        assert throughput["parallel_embed_speedup"] == pytest.approx(
            run["stages"]["api_embed_many_xml_ms"]
            / run["stages"]["api_embed_many_p2_ms"])
        assert throughput["parallel_detect_speedup"] == pytest.approx(
            run["stages"]["api_detect_many_xml_ms"]
            / run["stages"]["api_detect_many_p2_ms"])

    def test_smoke_mode_measures_without_archiving(self, tmp_path, capsys):
        from repro.perf import bench

        path = str(tmp_path / "BENCH_e9.json")
        assert bench.main(["--books", "10", "--smoke",
                           "--output", path, "--processes", "0"]) == 0
        out = capsys.readouterr().out
        assert "smoke mode: archive not written" in out
        assert "api.embed_many throughput" in out
        assert not (tmp_path / "BENCH_e9.json").exists()

    def test_run_and_check_cli_roundtrip(self, tmp_path, capsys):
        from repro.perf import bench

        path = str(tmp_path / "BENCH_e9.json")
        assert bench.main(["--books", "10", "--repeats", "1",
                           "--output", path, "--processes", "0"]) == 0
        out = capsys.readouterr().out
        assert "archived to" in out
        # Second run gates against the first; a same-machine rerun of a
        # tiny bench should stay within the 20% window nearly always,
        # but we only assert the workflow (exit code semantics) with
        # check disabled to keep the test timing-independent.
        assert bench.main(["--books", "10", "--repeats", "1",
                           "--output", path, "--no-check",
                           "--processes", "0"]) == 0
        history = load_history(path)
        assert len(history["runs"]) == 2
