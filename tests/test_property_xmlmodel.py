"""Property-based tests for the XML substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.xmlmodel import (
    Document,
    Element,
    Text,
    canonicalize,
    parse,
    pretty,
    semantically_equal,
    serialize,
)

# -- strategies ------------------------------------------------------------

tag_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_\-]{0,8}", fullmatch=True)
attr_names = tag_names
# XML 1.0 character data: printable unicode without control chars.
text_values = st.text(
    alphabet=st.characters(
        codec="utf-8",
        exclude_categories=("Cs", "Cc", "Co"),
    ),
    max_size=40,
)


@st.composite
def elements(draw, depth=2):
    tag = draw(tag_names)
    attrs = draw(st.dictionaries(attr_names, text_values, max_size=3))
    element = Element(tag, attributes=attrs)
    if depth > 0:
        children = draw(st.lists(
            st.one_of(
                text_values.map(Text),
                elements(depth=depth - 1),
            ),
            max_size=3,
        ))
        for child in children:
            element.append(child)
    else:
        value = draw(text_values)
        if value:
            element.append(Text(value))
    return element


documents = elements().map(Document)


# -- properties ------------------------------------------------------------


class TestSerialisationRoundTrip:
    @given(documents)
    @settings(max_examples=120, deadline=None)
    def test_parse_serialize_identity(self, document):
        """parse(serialize(d)) is structurally equal to d."""
        again = parse(serialize(document))
        assert again.equals(document)

    @given(documents)
    @settings(max_examples=60, deadline=None)
    def test_serialize_is_stable(self, document):
        """serialize is a fixpoint after one round trip."""
        once = serialize(parse(serialize(document)))
        twice = serialize(parse(once))
        assert once == twice

    @given(documents)
    @settings(max_examples=60, deadline=None)
    def test_pretty_preserves_structure(self, document):
        """pretty() output re-parses to a semantically equal document.

        (Whitespace-only text is formatting, so compare canonically.)
        """
        again = parse(pretty(document))
        assert canonicalize(again) == canonicalize(document)


class TestCopySemantics:
    @given(documents)
    @settings(max_examples=60, deadline=None)
    def test_copy_equals_original(self, document):
        assert document.copy().equals(document)

    @given(documents)
    @settings(max_examples=60, deadline=None)
    def test_copy_is_independent(self, document):
        clone = document.copy()
        clone.root.set_attribute("mutation", "x")
        assert "mutation" not in document.root.attributes


class TestCanonicalForm:
    @given(documents)
    @settings(max_examples=60, deadline=None)
    def test_canonical_attribute_order_invariance(self, document):
        """Reversing attribute insertion order never changes the form."""
        clone = document.copy()
        for element in clone.iter_elements():
            items = list(element.attributes.items())
            element.attributes.clear()
            for name, value in reversed(items):
                element.attributes[name] = value
        assert semantically_equal(clone, document)

    @given(documents)
    @settings(max_examples=60, deadline=None)
    def test_canonical_is_deterministic(self, document):
        assert canonicalize(document) == canonicalize(document.copy())


class TestTraversalInvariants:
    @given(documents)
    @settings(max_examples=60, deadline=None)
    def test_parent_links_consistent(self, document):
        for node in document.iter():
            if isinstance(node, Element):
                for child in node.children:
                    assert child.parent is node

    @given(documents)
    @settings(max_examples=60, deadline=None)
    def test_iter_count_matches_recursive_count(self, document):
        def count(element):
            return 1 + sum(
                count(c) for c in element.children
                if isinstance(c, Element))
        assert document.count_elements() == count(document.root)

    @given(documents)
    @settings(max_examples=60, deadline=None)
    def test_paths_unique_and_resolvable(self, document):
        from repro.xpath import select
        paths = [el.path() for el in document.iter_elements()]
        assert len(paths) == len(set(paths))
        for element in document.iter_elements():
            assert select(document, element.path()) == [element]
