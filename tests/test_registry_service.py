"""The registry over the wire: endpoints, client SDK, restart survival.

Three contracts:

* **Protocol** — ``GET /v1/records`` (filter + paginate),
  ``GET /v1/ledger/verify`` and ``POST /v1/trace`` speak the standard
  ``wmxml-response-v1`` envelope; a daemon started *without* a
  registry answers every registry endpoint with the
  ``registry-not-configured`` envelope (501).
* **Client SDK** — ``WmXMLClient.issue / records / trace /
  verify_ledger`` round-trip the envelopes back into artefacts.
* **Restart survival** (the PR's acceptance scenario) — issue copies
  through a live daemon over a SQLite file, *kill the daemon*, start a
  fresh one over the same file: a collusion-attacked copy still traces
  to a true colluder and the ledger verifies; tampering one persisted
  row makes ``/v1/ledger/verify`` answer 409 ``chain-broken``.
"""

import json
import sqlite3

import pytest

from repro.api import CollusionAttack, WmXMLSystem
from repro.datasets import bibliography
from repro.registry import WatermarkRegistry
from repro.service import (
    FINGERPRINT_HEADER,
    REQUEST_FORMAT,
    RemoteServiceError,
    WmXMLClient,
    WmXMLService,
    running_server,
)
from repro.xmlmodel import parse, serialize

KEY = "golden-key-bib"
MESSAGE = "(c) golden"


def _request_body(**fields) -> bytes:
    return json.dumps({"format": REQUEST_FORMAT, **fields}).encode()


def _fresh_system(registry=None):
    system = WmXMLSystem(KEY, registry=registry, issuer="svc-tests")
    system.register("books", bibliography.default_scheme(2))
    return system


@pytest.fixture(scope="module")
def golden_text():
    return serialize(bibliography.generate_document(
        bibliography.BibliographyConfig(books=60, editors=6, seed=1234)))


@pytest.fixture(scope="module")
def service(golden_text):
    """One registry-enabled daemon with a seeded corpus.

    Three issued copies (alice, bob, carol) of the golden document plus
    one plain embed — populated through ``dispatch`` itself, so the
    corpus every test queries was written by the wire path under test.
    """
    system = _fresh_system(registry=WatermarkRegistry())
    service = WmXMLService(system)
    for name in ("alice", "bob", "carol"):
        status, _, _ = service.dispatch(
            "POST", "/v1/embed",
            _request_body(scheme="books", document=golden_text,
                          recipient=name))
        assert status == 200
    status, _, _ = service.dispatch(
        "POST", "/v1/embed",
        _request_body(scheme="books", document=golden_text,
                      message=MESSAGE))
    assert status == 200
    return service


@pytest.fixture(scope="module")
def issued(service, golden_text):
    """The issued copies, re-derived locally (same keys, same bytes)."""
    system = _fresh_system()
    return {name: system.issue("books", parse(golden_text), name).document
            for name in ("alice", "bob", "carol")}


class TestRecordsEndpoint:
    def test_all_records(self, service):
        status, payload, _ = service.dispatch("GET", "/v1/records")
        assert status == 200
        assert payload["ok"] is True
        assert payload["total"] == 4
        assert [r["sequence"] for r in payload["records"]] == [0, 1, 2, 3]
        assert all(r["format"] == "wmxml-registry-record-v1"
                   for r in payload["records"])
        assert payload["records"][0]["recipient"] == "alice"
        assert payload["records"][3]["recipient"] == MESSAGE
        assert payload["records"][3]["keying"] == "system"

    def test_filter_by_recipient(self, service):
        status, payload, _ = service.dispatch(
            "GET", "/v1/records?recipient=bob")
        assert status == 200
        assert payload["total"] == 1
        [record] = payload["records"]
        assert record["recipient"] == "bob"
        assert record["keying"] == "recipient"
        assert record["issuer"] == "svc-tests"

    def test_filter_by_scheme_name_or_fingerprint(self, service):
        fingerprint = service.system.scheme_fingerprint("books")
        for value in ("books", fingerprint):
            status, payload, _ = service.dispatch(
                "GET", f"/v1/records?scheme={value}")
            assert status == 200
            assert payload["total"] == 4, value
        status, payload, _ = service.dispatch(
            "GET", "/v1/records?scheme=no-such-fingerprint")
        assert status == 200
        assert payload["total"] == 0

    def test_pagination(self, service):
        status, payload, _ = service.dispatch(
            "GET", "/v1/records?offset=1&limit=2")
        assert status == 200
        assert payload["total"] == 4
        assert payload["offset"] == 1 and payload["limit"] == 2
        assert [r["sequence"] for r in payload["records"]] == [1, 2]

    def test_bad_query_params(self, service):
        for query in ("offset=-1", "limit=banana",
                      "recipient=a&recipient=b"):
            status, payload, _ = service.dispatch(
                "GET", f"/v1/records?{query}")
            assert status == 400, query
            assert payload["error"]["code"] == "malformed-request"

    def test_wrong_method(self, service):
        status, payload, _ = service.dispatch("POST", "/v1/records")
        assert status == 405
        assert payload["error"]["code"] == "method-not-allowed"


class TestLedgerEndpoint:
    def test_verify_intact(self, service):
        status, payload, _ = service.dispatch("GET", "/v1/ledger/verify")
        assert status == 200
        ledger = payload["ledger"]
        assert ledger["intact"] is True
        assert ledger["sealed"] is True
        assert ledger["blocks"] == ledger["records"] == 4


class TestTraceEndpoint:
    def test_trace_accuses_the_recipient(self, service, issued):
        status, payload, headers = service.dispatch(
            "POST", "/v1/trace",
            _request_body(scheme="books",
                          document=serialize(issued["bob"])))
        assert status == 200
        trace = payload["trace"]
        assert trace["format"] == "wmxml-trace-v1"
        assert trace["prime_suspect"] == "bob"
        assert "alice" not in trace["accused"]
        assert headers[FINGERPRINT_HEADER] \
            == service.system.scheme_fingerprint("books")

    def test_trace_with_recipient_subset(self, service, issued):
        status, payload, _ = service.dispatch(
            "POST", "/v1/trace",
            _request_body(scheme="books",
                          document=serialize(issued["bob"]),
                          recipients=["alice", "bob"]))
        assert status == 200
        assert set(payload["trace"]["verdicts"]) == {"alice", "bob"}

    def test_trace_unknown_recipient(self, service, issued):
        status, payload, _ = service.dispatch(
            "POST", "/v1/trace",
            _request_body(scheme="books",
                          document=serialize(issued["bob"]),
                          recipients=["mallory"]))
        assert status == 404
        assert payload["error"]["code"] == "unknown-recipient"

    def test_trace_validates_request(self, service, golden_text):
        cases = [
            _request_body(scheme="books"),
            _request_body(scheme="books", document=golden_text,
                          recipients="bob"),
            _request_body(scheme="books", document=golden_text,
                          strategy="psychic"),
        ]
        for body in cases:
            status, payload, _ = service.dispatch(
                "POST", "/v1/trace", body)
            assert status == 400
            assert payload["error"]["code"] == "malformed-request"


class TestRegistryNotConfigured:
    """A daemon without --registry refuses every registry endpoint."""

    @pytest.fixture(scope="class")
    def bare(self):
        return WmXMLService(_fresh_system())

    @pytest.mark.parametrize("method,path,body", [
        ("GET", "/v1/records", b""),
        ("GET", "/v1/ledger/verify", b""),
        ("POST", "/v1/trace", _request_body()),
    ])
    def test_refused_with_the_slug(self, bare, method, path, body):
        status, payload, _ = bare.dispatch(method, path, body)
        assert status == 501
        assert payload["error"]["code"] == "registry-not-configured"
        assert "--registry" in payload["error"]["message"]

    def test_healthz_reports_no_registry(self, bare):
        status, payload, _ = bare.dispatch("GET", "/v1/healthz")
        assert status == 200
        assert payload["registry"] is None

    def test_embed_still_works(self, bare, golden_text):
        status, payload, _ = bare.dispatch(
            "POST", "/v1/embed",
            _request_body(scheme="books", document=golden_text,
                          message=MESSAGE))
        assert status == 200
        assert payload["ok"] is True


class TestClientSDK:
    """The client methods over a live loopback daemon."""

    @pytest.fixture(scope="class")
    def live(self):
        system = _fresh_system(registry=WatermarkRegistry())
        with running_server(WmXMLService(system)) as server:
            url = f"http://127.0.0.1:{server.server_address[1]}"
            yield WmXMLClient(url, scheme="books"), system

    def test_issue_records_and_traces(self, live, golden_text):
        client, system = live
        copy = client.issue(golden_text, "dana")
        local = _fresh_system().issue("books", parse(golden_text), "dana")
        assert copy.xml == serialize(local.document)

        page = client.records(recipient="dana")
        assert page["total"] == 1
        assert page["records"][0]["recipient"] == "dana"

        trace = client.trace(copy.xml)
        assert trace.prime_suspect == "dana"

        report = client.verify_ledger()
        assert report["intact"] is True

    def test_issue_many(self, live, golden_text):
        client, system = live
        copies = client.issue_many([golden_text, golden_text], "erin")
        assert len(copies) == 2
        assert copies[0].xml == copies[1].xml
        assert client.records(recipient="erin")["total"] == 2

    def test_healthz_registry_counters(self, live):
        client, system = live
        health = client.healthz()
        assert health["registry"]["records"] == system.registry.count()
        assert health["registry"]["blocks"] \
            == system.registry.backend.block_count()

    def test_remote_unknown_recipient(self, live, golden_text):
        client, _ = live
        with pytest.raises(RemoteServiceError) as excinfo:
            client.trace(golden_text, recipients=["mallory"])
        assert excinfo.value.code == "unknown-recipient"
        assert excinfo.value.http_status == 404


class TestRestartSurvival:
    """The acceptance scenario: SQLite registry outlives the daemon."""

    RECIPIENTS = ("alice", "bob", "carol", "dave")
    COLLUDERS = ("alice", "carol", "dave")

    def _serve(self, path):
        system = _fresh_system(
            registry=WatermarkRegistry.open(path))
        return WmXMLService(system)

    def test_trace_and_verify_after_restart(self, tmp_path):
        db = str(tmp_path / "survive.db")
        # A corpus large enough that three-way majority collusion
        # still leaves each colluder's fingerprint detectable.
        corpus = serialize(bibliography.generate_document(
            bibliography.BibliographyConfig(books=200, editors=8,
                                            seed=1234)))

        # First daemon lifetime: issue one copy per recipient.
        first = self._serve(db)
        copies = {}
        with running_server(first) as server:
            client = WmXMLClient(
                f"http://127.0.0.1:{server.server_address[1]}",
                scheme="books")
            for name in self.RECIPIENTS:
                copies[name] = client.issue(corpus, name).xml
        first.system.registry.close()
        # The daemon is dead; only the SQLite file remains.

        # Three colluders majority-vote their copies together.
        attacked = CollusionAttack(
            [parse(copies[name]) for name in self.COLLUDERS],
            strategy="majority", seed=11,
        ).apply(parse(copies[self.COLLUDERS[0]]))

        # Second daemon lifetime over the same file.
        second = self._serve(db)
        with running_server(second) as server:
            client = WmXMLClient(
                f"http://127.0.0.1:{server.server_address[1]}",
                scheme="books")
            assert client.records()["total"] == len(self.RECIPIENTS)
            trace = client.trace(serialize(attacked.document))
            assert trace.prime_suspect in self.COLLUDERS
            assert client.verify_ledger()["intact"] is True
        second.system.registry.close()

    def test_tampered_row_answers_chain_broken(self, tmp_path,
                                               golden_text):
        db = str(tmp_path / "tamper.db")
        first = self._serve(db)
        with running_server(first) as server:
            client = WmXMLClient(
                f"http://127.0.0.1:{server.server_address[1]}",
                scheme="books")
            client.issue(golden_text, "alice")
            client.issue(golden_text, "bob")
            assert client.verify_ledger()["intact"] is True
        first.system.registry.close()

        # Retroactively reassign alice's copy to mallory, straight in
        # the database, without touching the ledger.
        conn = sqlite3.connect(db)
        payload = json.loads(conn.execute(
            "SELECT payload FROM records WHERE sequence = 0"
        ).fetchone()[0])
        payload["recipient"] = "mallory"
        conn.execute(
            "UPDATE records SET payload = ?, recipient = ? "
            "WHERE sequence = 0",
            (json.dumps(payload), "mallory"))
        conn.commit()
        conn.close()

        second = self._serve(db)
        status, body, _ = second.dispatch("GET", "/v1/ledger/verify")
        assert status == 409
        assert body["error"]["code"] == "chain-broken"
        second.system.registry.close()
