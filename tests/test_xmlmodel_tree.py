"""Unit tests for the XML tree model (repro.xmlmodel.tree)."""

import pytest

from repro.xmlmodel import (
    Comment,
    Document,
    Element,
    ProcessingInstruction,
    Text,
    XMLNameError,
    XMLTreeError,
    document_order_key,
    validate_name,
)


def build_sample() -> Document:
    """<db><book publisher="mkp"><title>T1</title><year>1998</year></book>
    <book publisher="acm"><title>T2</title></book></db>"""
    db = Element("db")
    book1 = db.add_child("book", attributes={"publisher": "mkp"})
    book1.add_child("title", text="T1")
    book1.add_child("year", text="1998")
    book2 = db.add_child("book", attributes={"publisher": "acm"})
    book2.add_child("title", text="T2")
    return Document(db)


class TestValidateName:
    def test_accepts_simple_names(self):
        for name in ("db", "book", "a1", "_x", "ns:tag", "with-dash", "dot.ted"):
            assert validate_name(name) == name

    def test_rejects_empty(self):
        with pytest.raises(XMLNameError):
            validate_name("")

    def test_rejects_leading_digit(self):
        with pytest.raises(XMLNameError):
            validate_name("1abc")

    def test_rejects_spaces(self):
        with pytest.raises(XMLNameError):
            validate_name("a b")

    def test_rejects_bare_xml(self):
        with pytest.raises(XMLNameError):
            validate_name("xml")

    def test_allows_xml_prefixed(self):
        assert validate_name("xml:lang") == "xml:lang"

    def test_rejects_non_string(self):
        with pytest.raises(XMLNameError):
            validate_name(42)  # type: ignore[arg-type]


class TestElementConstruction:
    def test_tag_validated(self):
        with pytest.raises(XMLNameError):
            Element("not a name")

    def test_text_shortcut(self):
        el = Element("title", text="DB Design")
        assert el.text == "DB Design"

    def test_attributes_stringified(self):
        el = Element("year", attributes={"value": 1998})  # type: ignore[dict-item]
        assert el.get_attribute("value") == "1998"

    def test_children_iterable(self):
        el = Element("book", children=[Element("title"), Text("x")])
        assert len(el.children) == 2

    def test_attribute_name_validated(self):
        el = Element("a")
        with pytest.raises(XMLNameError):
            el.set_attribute("bad name", "v")


class TestChildManipulation:
    def test_append_sets_parent(self):
        parent = Element("db")
        child = Element("book")
        parent.append(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_rejects_attached_node(self):
        parent = Element("db")
        child = parent.add_child("book")
        other = Element("db2")
        with pytest.raises(XMLTreeError):
            other.append(child)

    def test_append_rejects_non_node(self):
        with pytest.raises(TypeError):
            Element("db").append("raw string")  # type: ignore[arg-type]

    def test_insert_at_position(self):
        parent = Element("db")
        first = parent.add_child("a")
        parent.insert(0, Element("b"))
        assert parent.children[1] is first
        assert parent.children[0].tag == "b"  # type: ignore[union-attr]

    def test_remove_detaches(self):
        parent = Element("db")
        child = parent.add_child("book")
        parent.remove(child)
        assert child.parent is None
        assert parent.children == []

    def test_remove_foreign_child_raises(self):
        with pytest.raises(XMLTreeError):
            Element("db").remove(Element("book"))

    def test_replace_preserves_position(self):
        parent = Element("db")
        parent.add_child("a")
        old = parent.add_child("b")
        parent.add_child("c")
        new = Element("B")
        parent.replace(old, new)
        assert [c.tag for c in parent.child_elements()] == ["a", "B", "c"]
        assert old.parent is None

    def test_clear_children(self):
        parent = Element("db")
        kids = [parent.add_child("x") for _ in range(3)]
        parent.clear_children()
        assert parent.children == []
        assert all(k.parent is None for k in kids)

    def test_detach_is_idempotent(self):
        node = Element("x")
        assert node.detach() is node


class TestNavigation:
    def test_ancestors(self):
        doc = build_sample()
        title = doc.root.child_elements("book")[0].find("title")
        tags = [a.tag for a in title.ancestors()]
        assert tags == ["book", "db"]

    def test_root(self):
        doc = build_sample()
        title = doc.root.child_elements("book")[0].find("title")
        assert title.root() is doc.root

    def test_index_in_parent(self):
        doc = build_sample()
        books = doc.root.child_elements("book")
        assert books[0].index_in_parent() == 0
        assert books[1].index_in_parent() == 1

    def test_index_in_parent_detached_raises(self):
        with pytest.raises(XMLTreeError):
            Element("x").index_in_parent()


class TestTextHandling:
    def test_direct_text_only(self):
        el = Element("a", text="hello")
        el.add_child("b", text="world")
        assert el.text == "hello"
        assert el.string_value() == "helloworld"

    def test_set_text_replaces(self):
        el = Element("year", text="1998")
        el.set_text("1999")
        assert el.text == "1999"
        assert sum(isinstance(c, Text) for c in el.children) == 1

    def test_set_text_preserves_element_children(self):
        el = Element("mixed", text="note: ")
        child = el.add_child("b", text="bold")
        el.set_text("replaced")
        assert child.parent is el
        assert el.text == "replaced"

    def test_text_type_checked(self):
        with pytest.raises(TypeError):
            Text(123)  # type: ignore[arg-type]


class TestTraversal:
    def test_iter_preorder(self):
        doc = build_sample()
        tags = [n.tag for n in doc.iter_elements()]
        assert tags == ["db", "book", "title", "year", "book", "title"]

    def test_iter_elements_by_tag(self):
        doc = build_sample()
        assert len(list(doc.iter_elements("book"))) == 2
        assert len(list(doc.iter_elements("title"))) == 2
        assert list(doc.iter_elements("missing")) == []

    def test_child_elements_filter(self):
        doc = build_sample()
        assert len(doc.root.child_elements("book")) == 2
        assert doc.root.child_elements("title") == []

    def test_find_and_find_text(self):
        doc = build_sample()
        book = doc.root.find("book")
        assert book is not None
        assert book.find_text("title") == "T1"
        assert book.find_text("missing", "dflt") == "dflt"

    def test_is_leaf(self):
        doc = build_sample()
        book = doc.root.find("book")
        assert not book.is_leaf()
        assert book.find("title").is_leaf()


class TestPath:
    def test_positional_paths(self):
        doc = build_sample()
        books = doc.root.child_elements("book")
        assert books[0].path() == "/db/book[1]"
        assert books[1].path() == "/db/book[2]"
        assert books[0].find("year").path() == "/db/book[1]/year[1]"

    def test_root_path(self):
        assert Element("db").path() == "/db"


class TestEquality:
    def test_structural_equality(self):
        assert build_sample().equals(build_sample())

    def test_attribute_difference(self):
        a, b = build_sample(), build_sample()
        b.root.find("book").set_attribute("publisher", "other")
        assert not a.equals(b)

    def test_text_difference(self):
        a, b = build_sample(), build_sample()
        b.root.find("book").find("title").set_text("changed")
        assert not a.equals(b)

    def test_whitespace_insensitive(self):
        a = Element("db")
        a.add_child("x", text="1")
        b = Element("db")
        b.append(Text("\n  "))
        b.add_child("x", text="1")
        b.append(Text("\n"))
        assert a.equals(b)

    def test_child_order_matters(self):
        a = Element("db", children=[Element("x"), Element("y")])
        b = Element("db", children=[Element("y"), Element("x")])
        assert not a.equals(b)

    def test_cross_type(self):
        assert not Text("a").equals(Comment("a"))
        assert not Element("a").equals(Text("a"))


class TestCopy:
    def test_deep_copy_is_detached_and_equal(self):
        doc = build_sample()
        clone = doc.copy()
        assert clone.equals(doc)
        assert clone.root is not doc.root

    def test_copy_independent(self):
        doc = build_sample()
        clone = doc.copy()
        clone.root.find("book").find("title").set_text("mutated")
        assert doc.root.find("book").find_text("title") == "T1"

    def test_element_copy_clears_parent(self):
        doc = build_sample()
        book = doc.root.find("book")
        clone = book.copy()
        assert clone.parent is None


class TestOtherNodes:
    def test_comment_rejects_double_dash(self):
        with pytest.raises(XMLTreeError):
            Comment("a--b")

    def test_pi_target_validated(self):
        with pytest.raises(XMLNameError):
            ProcessingInstruction("bad target")

    def test_pi_equality(self):
        assert ProcessingInstruction("t", "d").equals(ProcessingInstruction("t", "d"))
        assert not ProcessingInstruction("t", "d").equals(
            ProcessingInstruction("t", "e"))

    def test_document_requires_element_root(self):
        with pytest.raises(TypeError):
            Document(Text("x"))  # type: ignore[arg-type]


class TestDocumentOrder:
    def test_document_order_key(self):
        doc = build_sample()
        key = document_order_key(doc)
        nodes = list(doc.iter_elements())
        ranks = [key(n) for n in nodes]
        assert ranks == sorted(ranks)

    def test_foreign_node_sorts_last(self):
        doc = build_sample()
        key = document_order_key(doc)
        foreign = Element("zzz")
        assert key(foreign) > key(doc.root)

    def test_count_elements(self):
        assert build_sample().count_elements() == 6

    def test_repr_smoke(self):
        doc = build_sample()
        assert "db" in repr(doc)
        assert "Text" in repr(Text("hello"))
        assert "Comment" in repr(Comment("c"))
        assert "book" in repr(doc.root.find("book"))
