"""Registry wired through :class:`WmXMLSystem`: the equivalence rails.

The registry is a pure *observer* of the embedding path — the golden
vectors pin that down:

* an embed through a registry-enabled system is **bit-identical** to
  the same embed through a registry-less one (and to the frozen golden
  corpus hashes);
* a pooled ``embed_many`` appends exactly the records a serial run
  appends;
* issuance, recorded detection, and collusion tracing work end to end
  over the persisted corpus;
* :class:`TraceResult` accusation order is deterministic under p-value
  ties (the PR's bugfix).
"""

import hashlib
import json

import pytest

from repro.api import CollusionAttack, Watermark, WmXMLSystem
from repro.core.decoder import DetectionResult
from repro.core.fingerprint import TraceResult
from repro.datasets import bibliography
from repro.datasets.bibliography import BibliographyConfig
from repro.registry import (
    MemoryBackend,
    RegistryNotConfiguredError,
    UnknownRecipientError,
    WatermarkRegistry,
)
from repro.xmlmodel import parse, serialize

KEY = "golden-key-bib"
MESSAGE = "(c) golden"

# Frozen corpus hashes shared with tests/test_service.py: the marked
# document and record produced by embedding MESSAGE under KEY into the
# books=60/editors=6/seed=1234 bibliography with the gamma=2 default
# scheme.  The registry must never perturb them.
GOLDEN_MARKED_SHA = \
    "e4be42bf4221ef09cf9fcfd618cb373c773758bea13c6b4206fce51d229e3833"
GOLDEN_RECORD_SHA = \
    "f560a2be927e49a15d9bf452b13fe5e3f5031a72147a446c4d96c48bf0ce303d"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def golden_text():
    document = bibliography.generate_document(
        BibliographyConfig(books=60, editors=6, seed=1234))
    return serialize(document)


@pytest.fixture(scope="module")
def scheme():
    return bibliography.default_scheme(2)


def _system(scheme, registry=True):
    system = WmXMLSystem(
        KEY, registry=WatermarkRegistry() if registry else None,
        issuer="golden-issuer")
    system.register("books", scheme)
    return system


class TestRecordingIsPure:
    def test_recorded_embed_bit_identical_to_unrecorded(self, golden_text,
                                                        scheme):
        recorded = _system(scheme).embed(
            "books", parse(golden_text), MESSAGE)
        plain = _system(scheme, registry=False).embed(
            "books", parse(golden_text), MESSAGE)
        assert serialize(recorded.document) == serialize(plain.document)
        assert recorded.record.to_dict() == plain.record.to_dict()

    def test_recorded_embed_matches_golden_vectors(self, golden_text,
                                                   scheme):
        system = _system(scheme)
        result = system.embed("books", parse(golden_text), MESSAGE)
        assert _sha256(serialize(result.document)) == GOLDEN_MARKED_SHA
        record_json = json.dumps(result.record.to_dict(), sort_keys=True)
        assert _sha256(record_json) == GOLDEN_RECORD_SHA

    def test_issued_copy_bit_identical_to_unrecorded_issue(self,
                                                           golden_text,
                                                           scheme):
        recorded = _system(scheme).issue(
            "books", parse(golden_text), "alice")
        plain = _system(scheme, registry=False).issue(
            "books", parse(golden_text), "alice")
        assert serialize(recorded.document) == serialize(plain.document)


class TestRecordContents:
    def test_system_embed_recorded(self, golden_text, scheme):
        system = _system(scheme)
        result = system.embed("books", parse(golden_text), MESSAGE)
        [entry] = system.registry.records()
        assert entry.recipient == MESSAGE
        assert entry.keying == "system"
        assert entry.issuer == "golden-issuer"
        assert entry.sequence == 0
        assert entry.scheme_fingerprint == system.scheme_fingerprint("books")
        assert entry.key_fingerprint == system.pipeline("books").key_fingerprint
        assert entry.document_hash == _sha256(result.to_xml())
        assert entry.record.to_dict() == result.record.to_dict()
        assert system.registry.verify_chain().intact

    def test_issue_recorded_under_derived_key(self, golden_text, scheme):
        system = _system(scheme)
        system.issue("books", parse(golden_text), "alice")
        [entry] = system.registry.records()
        assert entry.keying == "recipient"
        assert entry.key_fingerprint \
            == system.recipient_pipeline("books", "alice").key_fingerprint
        assert entry.key_fingerprint \
            != system.pipeline("books").key_fingerprint

    def test_watermark_message_identity(self, golden_text, scheme):
        system = _system(scheme)
        system.embed("books", parse(golden_text),
                     Watermark.from_message(MESSAGE))
        [entry] = system.registry.records()
        assert entry.recipient == MESSAGE


class TestPooledAppendEquivalence:
    def test_pooled_embed_many_appends_same_records_as_serial(
            self, scheme):
        documents = [
            serialize(bibliography.generate_document(
                BibliographyConfig(books=24, editors=4, seed=seed)))
            for seed in range(6)
        ]
        serial = _system(scheme)
        serial.embed_many("books", documents, MESSAGE, processes=1)
        pooled = _system(scheme)
        pooled.embed_many("books", documents, MESSAGE, processes=2)

        strip = lambda entry: {k: v for k, v in entry.to_dict().items()
                               if k != "created_at"}
        assert ([strip(e) for e in serial.registry.records()]
                == [strip(e) for e in pooled.registry.records()])
        assert pooled.registry.verify_chain().intact

    def test_issue_many_records_every_copy(self, scheme):
        documents = [
            serialize(bibliography.generate_document(
                BibliographyConfig(books=24, editors=4, seed=seed)))
            for seed in range(3)
        ]
        system = _system(scheme)
        system.issue_many("books", documents, "bob", processes=1)
        entries = system.registry.records_for("bob")
        assert len(entries) == 3
        assert [e.sequence for e in entries] == [0, 1, 2]
        assert len({e.document_hash for e in entries}) == 3


class TestTraceOverCorpus:
    RECIPIENTS = ("alice", "bob", "carol")

    @pytest.fixture(scope="class")
    def traced(self, scheme):
        """Issue one copy per recipient, leak bob's, trace it."""
        system = _system(scheme)
        text = serialize(bibliography.generate_document(
            BibliographyConfig(books=80, editors=8, seed=99)))
        copies = {name: system.issue("books", parse(text), name)
                  for name in self.RECIPIENTS}
        return system, copies

    def test_leak_traces_to_the_recipient(self, traced):
        system, copies = traced
        trace = system.trace("books", copies["bob"].document)
        assert trace.prime_suspect == "bob"
        assert "alice" not in trace.accused
        assert "carol" not in trace.accused
        assert set(trace.verdicts) == set(self.RECIPIENTS)

    def test_collusion_still_accuses_a_colluder(self, traced, scheme):
        system, copies = traced
        colluders = ("alice", "carol")
        attacked = CollusionAttack(
            [copies[name].document for name in colluders],
            strategy="majority", seed=7,
        ).apply(copies["alice"].document)
        trace = system.trace("books", attacked.document)
        assert trace.prime_suspect in colluders
        assert "bob" not in trace.accused

    def test_trace_restricted_to_subset(self, traced):
        system, copies = traced
        trace = system.trace("books", copies["bob"].document,
                             recipients=["alice", "bob"])
        assert set(trace.verdicts) == {"alice", "bob"}
        assert trace.prime_suspect == "bob"

    def test_trace_unknown_recipient_refused(self, traced):
        system, copies = traced
        with pytest.raises(UnknownRecipientError) as excinfo:
            system.trace("books", copies["bob"].document,
                         recipients=["mallory"])
        assert excinfo.value.code == "unknown-recipient"

    def test_detect_recorded(self, traced):
        system, copies = traced
        verdict = system.detect_recorded("books", copies["carol"].document,
                                         "carol")
        assert verdict.detected
        miss = system.detect_recorded("books", copies["carol"].document,
                                      "bob")
        assert not miss.detected

    def test_detect_recorded_unknown_recipient(self, traced):
        system, _ = traced
        text = serialize(bibliography.generate_document(
            BibliographyConfig(books=10, editors=2, seed=1)))
        with pytest.raises(UnknownRecipientError):
            system.detect_recorded("books", parse(text), "mallory")


class TestRegistryRequired:
    def test_trace_without_registry(self, golden_text, scheme):
        system = _system(scheme, registry=False)
        with pytest.raises(RegistryNotConfiguredError) as excinfo:
            system.trace("books", parse(golden_text))
        assert excinfo.value.code == "registry-not-configured"

    def test_detect_recorded_without_registry(self, golden_text, scheme):
        system = _system(scheme, registry=False)
        with pytest.raises(RegistryNotConfiguredError):
            system.detect_recorded("books", parse(golden_text), "alice")

    def test_empty_recipient_refused(self, scheme):
        with pytest.raises(ValueError):
            _system(scheme).recipient_key("")


def _verdict(p_value, detected=True):
    return DetectionResult(
        votes_total=10, votes_matching=10, queries_total=10,
        queries_answered=10, p_value=p_value, detected=detected,
        alpha=1e-3)


class TestTraceResultDeterminism:
    """Regression: accusation order under p-value ties (the bugfix)."""

    def test_ties_break_on_recipient_name(self):
        tied = _verdict(1e-9)
        forward = TraceResult(verdicts={"zed": tied, "amy": _verdict(1e-9),
                                        "mid": _verdict(1e-4)})
        backward = TraceResult(verdicts={"mid": _verdict(1e-4),
                                         "amy": _verdict(1e-9), "zed": tied})
        assert forward.accused == backward.accused \
            == ["amy", "zed", "mid"]
        assert forward.prime_suspect == "amy"

    def test_insertion_order_never_decides(self):
        names = ["carol", "alice", "bob"]
        one = TraceResult(verdicts={n: _verdict(0.5e-6) for n in names})
        other = TraceResult(
            verdicts={n: _verdict(0.5e-6) for n in reversed(names)})
        assert one.accused == other.accused == sorted(names)

    def test_not_detected_never_accused(self):
        trace = TraceResult(verdicts={"amy": _verdict(1e-9),
                                      "zed": _verdict(0.9, detected=False)})
        assert trace.accused == ["amy"]

    def test_serialised_trace_is_byte_stable(self):
        verdicts = {"zed": _verdict(1e-9), "amy": _verdict(1e-9)}
        one = TraceResult(verdicts=dict(verdicts))
        other = TraceResult(
            verdicts=dict(reversed(list(verdicts.items()))))
        assert one.to_json() == other.to_json()

    def test_round_trip(self):
        trace = TraceResult(verdicts={"amy": _verdict(1e-9),
                                      "zed": _verdict(1e-4)})
        again = TraceResult.from_dict(trace.to_dict())
        assert again.to_dict() == trace.to_dict()
        assert again.accused == trace.accused

    def test_empty_trace(self):
        trace = TraceResult()
        assert trace.accused == []
        assert trace.prime_suspect is None
        assert TraceResult.from_dict(trace.to_dict()).to_dict() \
            == trace.to_dict()


class TestBackendChoiceInvisible:
    def test_memory_default(self, scheme):
        system = WmXMLSystem(KEY, registry=WatermarkRegistry())
        assert isinstance(system.registry.backend, MemoryBackend)

    def test_sqlite_backed_system_traces(self, tmp_path, scheme):
        registry = WatermarkRegistry.open(str(tmp_path / "sys.db"))
        system = WmXMLSystem(KEY, registry=registry, issuer="golden-issuer")
        system.register("books", scheme)
        text = serialize(bibliography.generate_document(
            BibliographyConfig(books=40, editors=4, seed=5)))
        copy = system.issue("books", parse(text), "dana")
        trace = system.trace("books", copy.document)
        assert trace.prime_suspect == "dana"
        assert system.registry.verify_chain().intact
        registry.close()
