"""Unit tests for shredding, re-nesting, shapes and discovery."""

import pytest

from repro.semantics import (
    DocumentShape,
    FieldSpec,
    RecordError,
    RecordSpec,
    discover_fds,
    discover_keys,
    distinct_values,
    level,
    project,
    shape,
)
from repro.xmlmodel import parse, serialize


class TestRecordSpecBasics:
    def test_entity_must_be_absolute(self):
        with pytest.raises(RecordError):
            RecordSpec("db/book", (FieldSpec("title", "title"),))

    def test_field_path_must_be_relative(self):
        with pytest.raises(RecordError):
            FieldSpec("title", "/db/book/title")

    def test_duplicate_field_names(self):
        with pytest.raises(RecordError):
            RecordSpec("/db/book", (
                FieldSpec("t", "title"), FieldSpec("t", "year")))

    def test_empty_field_name(self):
        with pytest.raises(RecordError):
            FieldSpec("", "title")

    def test_unknown_field_lookup(self):
        spec = RecordSpec("/db/book", (FieldSpec("title", "title"),))
        with pytest.raises(RecordError):
            spec.field("nope")


class TestShredding:
    def test_shred_rows(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        # book1 has 2 authors, book2 has 2, book3 has 1 -> 5 rows.
        assert len(rows) == 5
        first = rows[0]
        assert first["title"] == "Readings in Database Systems"
        assert first["author"] == "Stonebraker"
        assert first["publisher"] == "mkp"
        assert first["year"] == "1998"

    def test_nodes_accompany_values(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        node = rows[0].nodes["title"]
        assert node.string_value() == "Readings in Database Systems"

    def test_rows_share_entity(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        assert rows[0].entity is rows[1].entity  # two authors, one book

    def test_multi_violation_detected(self, db1_doc):
        spec = RecordSpec("/db/book", (FieldSpec("author", "author"),))
        with pytest.raises(RecordError):
            spec.shred(db1_doc)

    def test_missing_single_field_skipped(self):
        doc = parse("<db><book><title>T</title></book></db>")
        spec = RecordSpec("/db/book", (
            FieldSpec("title", "title"), FieldSpec("year", "year")))
        rows = spec.shred(doc)
        assert rows[0].get("year") is None
        assert rows[0]["title"] == "T"

    def test_row_helpers(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        row = rows[0]
        assert row.key(("publisher", "year")) == ("mkp", "1998")
        assert row.get("missing", "x") == "x"

    def test_distinct_and_project(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        assert distinct_values(rows, "publisher") == ["mkp", "acm"]
        pairs = project(rows, ("editor", "publisher"))
        assert ("Harrypotter", "mkp") in pairs
        assert ("Gamer", "acm") in pairs
        assert len(pairs) == 2


class TestNesting:
    def test_roundtrip_same_shape(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        rebuilt = book_shape.build(rows)
        assert rebuilt.equals(db1_doc)

    def test_reorganize_to_publisher_shape(self, db1_doc, book_shape,
                                           publisher_shape):
        rows = book_shape.shred(db1_doc)
        db2 = publisher_shape.build(rows)
        publishers = db2.root.child_elements("publisher")
        assert [p.get_attribute("name") for p in publishers] == ["mkp", "acm"]
        stonebraker = publishers[0].child_elements("author")[0]
        assert stonebraker.get_attribute("name") == "Stonebraker"
        books = stonebraker.child_elements("book")
        assert [b.text for b in books] == [
            "Readings in Database Systems", "XML Query Processing"]

    def test_full_roundtrip_through_other_shape(self, db1_doc, book_shape,
                                                publisher_shape):
        rows = book_shape.shred(db1_doc)
        db2 = publisher_shape.build(rows)
        rows_back = publisher_shape.shred(db2)
        rebuilt = book_shape.build(rows_back)
        # Information-preserving reorganisation: same logical relation.
        original = {(r["title"], r["author"], r["publisher"],
                     r.get("editor"), r["year"])
                    for r in book_shape.shred(rebuilt)}
        expected = {(r["title"], r["author"], r["publisher"],
                     r.get("editor"), r["year"]) for r in rows}
        assert original == expected

    def test_lossy_shape_reported(self, book_shape, publisher_shape):
        dropped = book_shape.dropped_fields(
            shape("tiny", "db", [level("book", group_by=["title"],
                                       text_field="title")]))
        assert "author" in dropped
        assert "publisher" in dropped

    def test_check_covers(self, publisher_shape):
        missing = publisher_shape.nesting.check_covers(
            ["title", "salary"])
        assert missing == ["salary"]


class TestShapePlacements:
    def test_placements(self, publisher_shape):
        placement = publisher_shape.placement("publisher")
        assert placement.kind == "attribute"
        assert placement.level_index == 0
        title = publisher_shape.placement("title")
        assert title.kind == "text"
        assert title.level_index == 2

    def test_unknown_placement(self, publisher_shape):
        with pytest.raises(RecordError):
            publisher_shape.placement("salary")

    def test_derived_record_spec(self, publisher_shape):
        spec = publisher_shape.record_spec
        assert spec.entity == "/db/publisher/author/book"
        by_name = {f.name: f for f in spec.fields}
        assert by_name["publisher"].path == "../../@name"
        assert by_name["author"].path == "../@name"
        assert by_name["title"].path == "text()"
        assert by_name["editor"].path == "editor"
        assert by_name["editor"].multi

    def test_repr(self, publisher_shape):
        assert "publisher-centric" in repr(publisher_shape)
        assert "db/publisher/author/book" in repr(publisher_shape)


class TestDiscovery:
    def test_discover_keys(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        keys = discover_keys(rows, ["title", "publisher", "editor", "year"])
        key_fields = [k.fields for k in keys]
        assert ("title",) in key_fields
        assert ("publisher",) not in key_fields  # mkp appears twice

    def test_minimal_keys_only(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        keys = discover_keys(rows, ["title", "year"], max_width=2)
        key_fields = [k.fields for k in keys]
        assert ("title",) in key_fields
        # (title, year) is a superset of the minimal key -> excluded.
        assert ("title", "year") not in key_fields

    def test_composite_key(self):
        doc = parse("<db><r><a>1</a><b>x</b></r><r><a>1</a><b>y</b></r>"
                    "<r><a>2</a><b>x</b></r></db>")
        spec = RecordSpec("/db/r", (FieldSpec("a", "a"), FieldSpec("b", "b")))
        rows = spec.shred(doc)
        keys = discover_keys(rows, ["a", "b"])
        assert [k.fields for k in keys] == [("a", "b")]

    def test_discover_fds(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        fds = discover_fds(rows, ["title", "publisher", "editor", "year"])
        found = {(fd.lhs, fd.rhs) for fd in fds}
        assert (("editor",), "publisher") in found

    def test_fd_violated_not_reported(self):
        doc = parse('<db><r><e>E</e><p>a</p></r><r><e>E</e><p>b</p></r></db>')
        spec = RecordSpec("/db/r", (FieldSpec("e", "e"), FieldSpec("p", "p")))
        rows = spec.shred(doc)
        fds = discover_fds(rows, ["e", "p"])
        assert not any(fd.lhs == ("e",) and fd.rhs == "p" for fd in fds)

    def test_trivial_fds_excluded_by_default(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        fds = discover_fds(rows, ["title", "year"])
        # title -> year holds but every title is unique -> trivial.
        assert not any(fd.lhs == ("title",) for fd in fds)
        fds_all = discover_fds(rows, ["title", "year"], include_trivial=True)
        assert any(fd.lhs == ("title",) for fd in fds_all)

    def test_candidate_strs(self, db1_doc, book_shape):
        rows = book_shape.shred(db1_doc)
        keys = discover_keys(rows, ["title"])
        fds = discover_fds(rows, ["editor", "publisher"])
        assert "key(title)" in str(keys[0])
        assert "fd(editor -> publisher)" in str(fds[0])
