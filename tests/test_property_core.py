"""Property-based tests for the watermarking core (hypothesis)."""

import base64

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core import KeyedPRF, Watermark, create_algorithm, identity_string
from repro.core.watermark import VoteTally, binomial_pvalue

PRF = KeyedPRF("property-test-key")
OTHER_PRF = KeyedPRF("a-different-key")

identities = st.text(min_size=1, max_size=60)
bits = st.integers(min_value=0, max_value=1)


class TestWatermarkProperties:
    @given(st.text(min_size=1, max_size=40))
    @settings(max_examples=100, deadline=None)
    def test_message_roundtrip(self, message):
        assert Watermark.from_message(message).to_message() == message

    @given(st.lists(bits, min_size=1, max_size=128))
    @settings(max_examples=100, deadline=None)
    def test_bits_preserved(self, bit_list):
        assert list(Watermark(bit_list).bits) == bit_list

    @given(st.lists(st.tuples(bits, bits), min_size=1, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_hamming_symmetry_and_identity(self, pairs):
        a = [pair[0] for pair in pairs]
        b = [pair[1] for pair in pairs]
        wa, wb = Watermark(a), Watermark(b)
        assert wa.hamming_distance(wb) == wb.hamming_distance(wa)
        assert wa.hamming_distance(wa) == 0


class TestSelectionProperties:
    @given(identities, st.integers(min_value=1, max_value=64))
    @settings(max_examples=200, deadline=None)
    def test_selection_deterministic(self, identity, gamma):
        assert PRF.selects(identity, gamma) == PRF.selects(identity, gamma)

    @given(identities, st.integers(min_value=1, max_value=256))
    @settings(max_examples=200, deadline=None)
    def test_bit_index_in_range(self, identity, nbits):
        index = PRF.bit_index(identity, nbits)
        assert 0 <= index < nbits

    @given(identities)
    @settings(max_examples=100, deadline=None)
    def test_gamma_one_always_selects(self, identity):
        assert PRF.selects(identity, 1)

    @given(st.lists(st.tuples(st.text(max_size=10), st.text(max_size=10)),
                    max_size=4),
           st.text(min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_identity_string_order_invariant(self, bindings, field):
        forward = identity_string(field, bindings)
        backward = identity_string(field, list(reversed(bindings)))
        assert forward == backward


class TestNumericAlgorithmProperties:
    ALGO0 = create_algorithm("numeric")
    ALGO2 = create_algorithm("numeric", {"fraction_digits": 2})

    @given(st.integers(min_value=-10**9, max_value=10**9), bits, identities)
    @settings(max_examples=200, deadline=None)
    def test_integer_roundtrip(self, value, bit, identity):
        marked = self.ALGO0.embed(str(value), bit, PRF, identity)
        assert self.ALGO0.extract(marked, PRF, identity) == bit

    @given(st.integers(min_value=-10**9, max_value=10**9), bits, identities)
    @settings(max_examples=200, deadline=None)
    def test_integer_perturbation_bounded(self, value, bit, identity):
        marked = self.ALGO0.embed(str(value), bit, PRF, identity)
        assert abs(int(marked) - value) <= 1

    @given(st.integers(min_value=-10**6, max_value=10**6), bits, identities)
    @settings(max_examples=200, deadline=None)
    def test_embedding_idempotent(self, value, bit, identity):
        once = self.ALGO0.embed(str(value), bit, PRF, identity)
        assert self.ALGO0.embed(once, bit, PRF, identity) == once

    @given(st.decimals(min_value=-99999, max_value=99999, places=2),
           bits, identities)
    @settings(max_examples=200, deadline=None)
    def test_decimal_roundtrip(self, value, bit, identity):
        marked = self.ALGO2.embed(str(value), bit, PRF, identity)
        assert self.ALGO2.extract(marked, PRF, identity) == bit
        assert abs(float(marked) - float(value)) <= 0.01 + 1e-9


class TestTextAlgorithmProperties:
    ALGO = create_algorithm("text-case")

    @given(st.text(alphabet=st.characters(codec="ascii",
                                          categories=("Lu", "Ll", "Zs")),
                   min_size=2, max_size=40),
           bits, identities)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_when_applicable(self, value, bit, identity):
        assume(self.ALGO.applicable(value))
        marked = self.ALGO.embed(value, bit, PRF, identity)
        assert self.ALGO.extract(marked, PRF, identity) == bit
        # Perturbation only ever toggles case.
        assert marked.lower() == value.lower()
        assert sum(a != b for a, b in zip(marked, value)) <= 1


class TestBinaryAlgorithmProperties:
    ALGO = create_algorithm("binary-lsb", {"spread": 5})

    @given(st.binary(min_size=1, max_size=200), bits, identities)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip(self, payload, bit, identity):
        value = base64.b64encode(payload).decode("ascii")
        marked = self.ALGO.embed(value, bit, PRF, identity)
        assert self.ALGO.extract(marked, PRF, identity) == bit

    @given(st.binary(min_size=1, max_size=200), bits, identities)
    @settings(max_examples=150, deadline=None)
    def test_payload_length_preserved_lsb_only(self, payload, bit, identity):
        value = base64.b64encode(payload).decode("ascii")
        marked = base64.b64decode(self.ALGO.embed(value, bit, PRF, identity))
        assert len(marked) == len(payload)
        for before, after in zip(payload, marked):
            assert before | 1 == after | 1  # only the LSB may differ


class TestDateAlgorithmProperties:
    ALGO = create_algorithm("date")

    @given(st.integers(min_value=1, max_value=9999),
           st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=31),
           bits, identities)
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_and_validity(self, year, month, day, bit, identity):
        value = f"{year:04d}-{month:02d}-{day:02d}"
        marked = self.ALGO.embed(value, bit, PRF, identity)
        assert self.ALGO.extract(marked, PRF, identity) == bit
        marked_day = int(marked[-2:])
        assert 1 <= marked_day <= 31
        assert abs(marked_day - day) <= 3
        assert marked[:8] == value[:8]  # year/month untouched


class TestCategoricalProperties:
    @given(st.lists(st.text(min_size=1, max_size=8), min_size=2,
                    max_size=12, unique=True),
           bits, identities)
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_within_domain(self, domain, bit, identity):
        algo = create_algorithm("categorical", {"domain": domain})
        ordered = PRF.keyed_order("categorical-order", domain)
        for value in domain:
            if len(domain) % 2 == 1 and value == ordered[-1]:
                continue  # the unpaired element cannot carry a bit
            marked = algo.embed(value, bit, PRF, identity)
            assert marked in domain
            assert algo.extract(marked, PRF, identity) == bit


class TestVoteTallyProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=15), bits),
                    max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_total_votes_conserved(self, votes):
        tally = VoteTally()
        for index, bit in votes:
            tally.add(index, bit)
        assert tally.total_votes == len(votes)

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=15), bits),
                    max_size=200),
           st.lists(bits, min_size=16, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_matching_plus_mismatching_is_total(self, votes, expected_bits):
        tally = VoteTally()
        for index, bit in votes:
            tally.add(index, bit)
        expected = Watermark(expected_bits)
        matching, total = tally.matching_votes(expected)
        assert 0 <= matching <= total == len(votes)

    @given(st.integers(min_value=0, max_value=500),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=200, deadline=None)
    def test_pvalue_bounds(self, matches, extra):
        total = matches + extra
        p = binomial_pvalue(matches, total)
        assert 0.0 <= p <= 1.0
        if total > 0 and matches == total:
            assert p == 2.0 ** -total or p < 1e-9 or total < 60
