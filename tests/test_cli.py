"""End-to-end tests for the ``wmxml`` command-line tool."""

import json

import pytest

from repro.cli import main


@pytest.fixture()
def workspace(tmp_path):
    return tmp_path


def run(*argv) -> int:
    return main(list(argv))


class TestGenerate:
    def test_generates_each_profile(self, workspace, capsys):
        for profile in ("bibliography", "jobs", "library"):
            out = workspace / f"{profile}.xml"
            code = run("generate", "--profile", profile, "--size", "20",
                       "-o", str(out))
            assert code == 0
            assert out.exists()
            assert "wrote" in capsys.readouterr().out

    def test_unknown_profile_rejected(self, workspace):
        with pytest.raises(SystemExit):
            run("generate", "--profile", "nope",
                "-o", str(workspace / "x.xml"))


class TestEmbedDetectFlow:
    def _generate(self, workspace):
        data = workspace / "data.xml"
        run("generate", "--profile", "bibliography", "--size", "40",
            "-o", str(data))
        return data

    def test_full_flow(self, workspace, capsys):
        data = self._generate(workspace)
        marked = workspace / "marked.xml"
        record = workspace / "record.json"
        code = run("embed", "--profile", "bibliography", "-i", str(data),
                   "-o", str(marked), "-r", str(record),
                   "-k", "cli-secret", "-m", "(c) CLI", "--gamma", "2")
        assert code == 0
        assert marked.exists()
        payload = json.loads(record.read_text())
        assert payload["format"] == "wmxml-record-v1"

        code = run("detect", "--profile", "bibliography", "-i", str(marked),
                   "-r", str(record), "-k", "cli-secret", "-m", "(c) CLI")
        assert code == 0
        assert "DETECTED" in capsys.readouterr().out

    def test_wrong_key_exits_nonzero(self, workspace, capsys):
        data = self._generate(workspace)
        marked = workspace / "marked.xml"
        record = workspace / "record.json"
        run("embed", "--profile", "bibliography", "-i", str(data),
            "-o", str(marked), "-r", str(record),
            "-k", "cli-secret", "-m", "(c) CLI")
        code = run("detect", "--profile", "bibliography", "-i", str(marked),
                   "-r", str(record), "-k", "wrong", "-m", "(c) CLI")
        assert code == 1
        out = capsys.readouterr().out
        assert "not detected" in out
        assert "failed key authentication" in out

    def test_attack_then_detect_with_rewriting(self, workspace, capsys):
        data = self._generate(workspace)
        marked = workspace / "marked.xml"
        record = workspace / "record.json"
        stolen = workspace / "stolen.xml"
        run("embed", "--profile", "bibliography", "-i", str(data),
            "-o", str(marked), "-r", str(record),
            "-k", "cli-secret", "-m", "(c) CLI", "--gamma", "1")
        code = run("attack", "--profile", "bibliography", "-i", str(marked),
                   "-o", str(stolen), "--kind", "reorganize",
                   "--shape", "book-centric",
                   "--to-shape", "publisher-centric")
        assert code == 0
        # Without rewriting: nothing.
        code = run("detect", "--profile", "bibliography", "-i", str(stolen),
                   "-r", str(record), "-k", "cli-secret", "-m", "(c) CLI")
        assert code == 1
        # With rewriting: detected.
        code = run("detect", "--profile", "bibliography", "-i", str(stolen),
                   "-r", str(record), "-k", "cli-secret", "-m", "(c) CLI",
                   "--shape", "publisher-centric")
        assert code == 0


class TestSchemeArtefactFlow:
    """The acceptance path: scheme.json drives embed and detect."""

    def _setup(self, workspace):
        data = workspace / "data.xml"
        scheme = workspace / "scheme.json"
        run("generate", "--profile", "bibliography", "--size", "40",
            "-o", str(data))
        assert run("scheme", "--profile", "bibliography", "--gamma", "2",
                   "-o", str(scheme)) == 0
        return data, scheme

    def test_scheme_export_is_versioned(self, workspace, capsys):
        _, scheme = self._setup(workspace)
        payload = json.loads(scheme.read_text())
        assert payload["format"] == "wmxml-scheme-v1"
        assert payload["gamma"] == 2
        assert {c["field"] for c in payload["carriers"]} == \
            {"year", "price", "publisher"}

    def test_scheme_describe_without_output(self, workspace, capsys):
        run("scheme", "--profile", "bibliography")
        out = capsys.readouterr().out
        assert "carriers:" in out and "templates:" in out

    def test_embed_detect_round_trip_via_scheme_json(self, workspace,
                                                     capsys):
        data, scheme = self._setup(workspace)
        marked = workspace / "marked.xml"
        record = workspace / "r.json"
        result = workspace / "verdict.json"
        code = run("embed", "--scheme", str(scheme), "-i", str(data),
                   "-o", str(marked), "-r", str(record),
                   "-k", "artefact-secret", "-m", "(c) artefact")
        assert code == 0
        assert "gamma=2" in capsys.readouterr().out  # scheme.json wins
        code = run("detect", "--scheme", str(scheme), "--record",
                   str(record), "-i", str(marked), "-k", "artefact-secret",
                   "-m", "(c) artefact", "--result", str(result))
        assert code == 0
        out = capsys.readouterr().out
        assert "DETECTED" in out
        verdict = json.loads(result.read_text())
        assert verdict["format"] == "wmxml-detection-v1"
        assert verdict["detected"] is True

    def test_detect_strategies_agree(self, workspace, capsys):
        data, scheme = self._setup(workspace)
        marked = workspace / "marked.xml"
        record = workspace / "r.json"
        run("embed", "--scheme", str(scheme), "-i", str(data),
            "-o", str(marked), "-r", str(record), "-k", "s", "-m", "(c) x")
        capsys.readouterr()
        votes = {}
        for strategy in ("scan", "indexed", "auto"):
            assert run("detect", "--scheme", str(scheme), "--record",
                       str(record), "-i", str(marked), "-k", "s",
                       "-m", "(c) x", "--strategy", strategy) == 0
            votes[strategy] = capsys.readouterr().out.split("votes")[0]
        assert votes["scan"] == votes["indexed"] == votes["auto"]

    def test_detect_reports_why_no_message(self, workspace, capsys):
        data, scheme = self._setup(workspace)
        marked = workspace / "marked.xml"
        record = workspace / "r.json"
        run("embed", "--scheme", str(scheme), "-i", str(data),
            "-o", str(marked), "-r", str(record), "-k", "s",
            "-m", "(c) quite a long message for forty books")
        capsys.readouterr()
        run("detect", "--scheme", str(scheme), "--record", str(record),
            "-i", str(marked), "-k", "s")
        assert "no message decoded (incomplete)" in capsys.readouterr().out

    def test_bad_scheme_file_is_a_clean_exit(self, workspace):
        bad = workspace / "bad.json"
        bad.write_text("{\"format\": \"nope\"}")
        with pytest.raises(SystemExit):
            run("embed", "--scheme", str(bad), "-i", "x.xml", "-o", "y.xml",
                "-r", "r.json", "-k", "k", "-m", "m")


class TestOtherCommands:
    def test_attack_kinds(self, workspace):
        data = workspace / "data.xml"
        run("generate", "--profile", "jobs", "--size", "20", "-o", str(data))
        for kind in ("alter", "delete", "insert", "reduce", "shuffle",
                     "unify"):
            out = workspace / f"attacked-{kind}.xml"
            code = run("attack", "--profile", "jobs", "-i", str(data),
                       "-o", str(out), "--kind", kind, "--rate", "0.3")
            assert code == 0
            assert out.exists()

    def test_usability(self, workspace, capsys):
        data = workspace / "data.xml"
        attacked = workspace / "attacked.xml"
        run("generate", "--profile", "bibliography", "--size", "25",
            "-o", str(data))
        run("attack", "--profile", "bibliography", "-i", str(data),
            "-o", str(attacked), "--kind", "alter", "--rate", "0.5")
        code = run("usability", "--profile", "bibliography",
                   "--original", str(data), "-i", str(attacked))
        assert code == 0
        out = capsys.readouterr().out
        assert "usability" in out

    def test_discover(self, workspace, capsys):
        data = workspace / "data.xml"
        run("generate", "--profile", "bibliography", "--size", "30",
            "-o", str(data))
        code = run("discover", "--profile", "bibliography", "-i", str(data))
        assert code == 0
        out = capsys.readouterr().out
        assert "key(title)" in out
        assert "fd(editor -> publisher)" in out

    def test_experiment(self, workspace, capsys):
        csv = workspace / "e3.csv"
        code = run("experiment", "e3", "--size", "30", "--csv", str(csv))
        assert code == 0
        assert "capacity" in capsys.readouterr().out
        assert csv.exists()

    def test_schema_infer_and_validate(self, workspace, capsys):
        data = workspace / "data.xml"
        dtd = workspace / "data.dtd"
        run("generate", "--profile", "bibliography", "--size", "20",
            "-o", str(data))
        code = run("schema", "-i", str(data), "--dtd", str(dtd))
        assert code == 0
        assert "<!ELEMENT" in capsys.readouterr().out
        assert dtd.exists()
        code = run("schema", "-i", str(data), "--validate-dtd", str(dtd))
        assert code == 0
        assert "valid against" in capsys.readouterr().out

    def test_schema_validation_failure(self, workspace, capsys):
        data = workspace / "data.xml"
        data.write_text("<other><x>1</x></other>", encoding="utf-8")
        dtd = workspace / "schema.dtd"
        dtd.write_text("<!ELEMENT db (x*)>\n<!ELEMENT x (#PCDATA)>",
                       encoding="utf-8")
        code = run("schema", "-i", str(data), "--validate-dtd", str(dtd))
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_unknown_shape_rejected(self, workspace):
        data = workspace / "data.xml"
        run("generate", "--profile", "jobs", "--size", "10", "-o", str(data))
        with pytest.raises(SystemExit):
            run("attack", "--profile", "jobs", "-i", str(data),
                "-o", str(workspace / "x.xml"), "--kind", "reorganize",
                "--shape", "nope", "--to-shape", "jobs-by-company")


class TestBatchEmbedDetect:
    """Multi-input embed/detect: the CLI face of the parallel engine."""

    def _generate_fleet(self, workspace, count=3):
        paths = []
        for index in range(count):
            path = workspace / f"doc{index}.xml"
            run("generate", "--profile", "bibliography", "--size", "30",
                "--seed", str(index), "-o", str(path))
            paths.append(path)
        return paths

    def test_batch_embed_writes_per_input_artefacts(self, workspace,
                                                    capsys):
        fleet = self._generate_fleet(workspace)
        marked_dir = workspace / "marked"
        record_dir = workspace / "records"
        code = run("embed", "--profile", "bibliography",
                   "-i", *map(str, fleet),
                   "-o", str(marked_dir), "-r", str(record_dir),
                   "-k", "cli-secret", "-m", "(c) CLI", "--gamma", "2",
                   "--processes", "2")
        assert code == 0
        out = capsys.readouterr().out
        assert "3 documents" in out
        for path in fleet:
            assert (marked_dir / path.name).exists()
            payload = json.loads(
                (record_dir / f"{path.stem}.record.json").read_text())
            assert payload["format"] == "wmxml-record-v1"

    def test_batch_embed_matches_single_embeds(self, workspace, capsys):
        fleet = self._generate_fleet(workspace, count=2)
        marked_dir = workspace / "marked"
        record_dir = workspace / "records"
        run("embed", "--profile", "bibliography", "-i", *map(str, fleet),
            "-o", str(marked_dir), "-r", str(record_dir),
            "-k", "cli-secret", "-m", "(c) CLI", "--gamma", "2",
            "--processes", "2")
        # The pooled batch and a serial single-document embed must
        # produce the same query-set record for the same input.
        single_record = workspace / "single.json"
        run("embed", "--profile", "bibliography", "-i", str(fleet[0]),
            "-o", str(workspace / "single.xml"), "-r", str(single_record),
            "-k", "cli-secret", "-m", "(c) CLI", "--gamma", "2")
        capsys.readouterr()
        batch_payload = json.loads(
            (record_dir / f"{fleet[0].stem}.record.json").read_text())
        assert batch_payload == json.loads(single_record.read_text())

    def test_batch_embed_refuses_file_target(self, workspace):
        fleet = self._generate_fleet(workspace, count=2)
        existing = workspace / "not-a-dir.xml"
        existing.write_text("<x/>")
        with pytest.raises(SystemExit):
            run("embed", "--profile", "bibliography",
                "-i", *map(str, fleet), "-o", str(existing),
                "-r", str(workspace / "records"),
                "-k", "k", "-m", "m")

    def test_batch_detect_checks_every_copy_against_one_record(
            self, workspace, capsys):
        fleet = self._generate_fleet(workspace, count=2)
        marked = workspace / "marked.xml"
        record = workspace / "record.json"
        run("embed", "--profile", "bibliography", "-i", str(fleet[0]),
            "-o", str(marked), "-r", str(record),
            "-k", "cli-secret", "-m", "(c) CLI", "--gamma", "2")
        capsys.readouterr()
        # One marked copy, one unmarked document: the batch reports a
        # per-file verdict and exits non-zero because not all detected.
        code = run("detect", "--profile", "bibliography",
                   "-i", str(marked), str(fleet[1]),
                   "-r", str(record), "-k", "cli-secret",
                   "-m", "(c) CLI", "--processes", "2")
        out = capsys.readouterr().out
        assert code == 1
        assert "detected in 1/2 documents" in out
        # Two marked copies: all detected, exit zero.
        code = run("detect", "--profile", "bibliography",
                   "-i", str(marked), str(marked),
                   "-r", str(record), "-k", "cli-secret",
                   "-m", "(c) CLI", "--processes", "2")
        out = capsys.readouterr().out
        assert code == 0
        assert "detected in 2/2 documents" in out

    def test_batch_embed_rejects_duplicate_basenames(self, workspace):
        sub_a = workspace / "a"
        sub_b = workspace / "b"
        sub_a.mkdir()
        sub_b.mkdir()
        for sub in (sub_a, sub_b):
            run("generate", "--profile", "bibliography", "--size", "10",
                "-o", str(sub / "doc.xml"))
        with pytest.raises(SystemExit, match="duplicate input basenames"):
            run("embed", "--profile", "bibliography",
                "-i", str(sub_a / "doc.xml"), str(sub_b / "doc.xml"),
                "-o", str(workspace / "marked"),
                "-r", str(workspace / "records"),
                "-k", "k", "-m", "m")

    def test_batch_detect_saves_per_file_results(self, workspace, capsys):
        fleet = self._generate_fleet(workspace, count=2)
        marked = workspace / "marked.xml"
        record = workspace / "record.json"
        run("embed", "--profile", "bibliography", "-i", str(fleet[0]),
            "-o", str(marked), "-r", str(record),
            "-k", "cli-secret", "-m", "(c) CLI", "--gamma", "2")
        results_path = workspace / "verdicts.json"
        code = run("detect", "--profile", "bibliography",
                   "-i", str(marked), str(fleet[1]),
                   "-r", str(record), "-k", "cli-secret",
                   "-m", "(c) CLI", "--result", str(results_path))
        capsys.readouterr()
        assert code == 1
        verdicts = json.loads(results_path.read_text())
        assert set(verdicts) == {str(marked), str(fleet[1])}
        assert verdicts[str(marked)]["format"] == "wmxml-detection-v1"
        assert verdicts[str(marked)]["detected"] is True
        assert verdicts[str(fleet[1])]["detected"] is False
