"""The registry subsystem in isolation: artefacts, backends, ledger.

Four contracts:

* **Artefact** — ``wmxml-registry-record-v1`` round-trips through
  dict/JSON/file like every other versioned artefact, and rejects
  malformed/foreign documents with ``bad-registry-record``.
* **Backend equivalence** — the SQLite backend answers every query
  (filters, pagination, recipients, blocks) identically to the
  in-memory reference backend over the same appended corpus.
* **Tamper evidence** — flipping any persisted field of any ledger
  block, forging the final block, rewriting the chain without the key,
  editing a record without touching the ledger, or adding/removing
  rows: ``verify_chain()`` catches all of it.
* **Tooling** — the JSONL export/import round-trip restores a registry
  bit-for-bit (same chain, still sealed by the original key), and a
  database stamped with a *newer* schema version is refused.
"""

import dataclasses
import io
import json
import sqlite3

import pytest

from repro.core.crypto import KeyedPRF
from repro.core.record import WatermarkRecord
from repro.registry import (
    EXPORT_FORMAT,
    GENESIS_HASH,
    ChainBrokenError,
    LedgerBlock,
    MemoryBackend,
    RegistryError,
    RegistryFormatError,
    RegistryRecord,
    RegistrySchemaError,
    SCHEMA_VERSION,
    SQLiteBackend,
    UnknownRecipientError,
    WatermarkRegistry,
    hash_document,
    next_block,
    verify_chain,
)

SEALER = KeyedPRF("registry-test-key")


def _watermark_record(nbits: int = 8) -> WatermarkRecord:
    return WatermarkRecord(gamma=4, nbits=nbits, shape_name="book",
                           key_fingerprint="kf", queries=[])


def _registry_record(recipient: str = "alice", doc: str = "<a/>",
                     scheme_fp: str = "scheme-fp",
                     keying: str = "recipient") -> RegistryRecord:
    return RegistryRecord(
        recipient=recipient, record=_watermark_record(),
        document_hash=hash_document(doc), scheme_fingerprint=scheme_fp,
        key_fingerprint="key-fp", keying=keying, issuer="tester",
        created_at="2026-08-08T00:00:00+00:00")


def _populated(registry: WatermarkRegistry) -> WatermarkRegistry:
    """Three recipients, two schemes, one shared document."""
    registry.record_embed("alice", _watermark_record(), "<a/>",
                          "scheme-1", "kf-a", "recipient", "tester")
    registry.record_embed("bob", _watermark_record(), "<b/>",
                          "scheme-1", "kf-b", "recipient", "tester")
    registry.record_embed("carol", _watermark_record(), "<a/>",
                          "scheme-2", "kf-c", "system", "tester")
    registry.record_embed("alice", _watermark_record(16), "<c/>",
                          "scheme-2", "kf-a", "recipient", "tester")
    return registry


# ---------------------------------------------------------------------------
# The wmxml-registry-record-v1 artefact
# ---------------------------------------------------------------------------

class TestRegistryRecord:
    def test_round_trip_dict(self):
        entry = _registry_record()
        again = RegistryRecord.from_dict(entry.to_dict())
        assert again.to_dict() == entry.to_dict()

    def test_round_trip_file(self, tmp_path):
        entry = _registry_record()
        entry.sequence = 7
        path = str(tmp_path / "entry.json")
        entry.save(path)
        again = RegistryRecord.load(path)
        assert again.sequence == 7
        assert again.recipient == "alice"
        assert again.record.to_dict() == entry.record.to_dict()

    def test_format_tag_enforced(self):
        data = _registry_record().to_dict()
        data["format"] = "wmxml-registry-record-v2"
        with pytest.raises(RegistryFormatError):
            RegistryRecord.from_dict(data)

    def test_missing_field_rejected(self):
        data = _registry_record().to_dict()
        del data["recipient"]
        with pytest.raises(RegistryFormatError):
            RegistryRecord.from_dict(data)

    def test_unknown_keying_rejected(self):
        with pytest.raises(RegistryFormatError):
            _registry_record(keying="telepathy")

    def test_error_code_slug(self):
        try:
            _registry_record(keying="telepathy")
        except RegistryFormatError as error:
            assert error.code == "bad-registry-record"

    def test_content_hash_excludes_sequence(self):
        entry = _registry_record()
        unsequenced = entry.content_hash()
        entry.sequence = 42
        assert entry.content_hash() == unsequenced

    def test_content_hash_covers_every_field(self):
        base = _registry_record()
        for field, value in [("recipient", "mallory"),
                             ("document_hash", "0" * 64),
                             ("scheme_fingerprint", "other"),
                             ("key_fingerprint", "other"),
                             ("keying", "system"),
                             ("issuer", "other"),
                             ("created_at", "2001-01-01T00:00:00+00:00")]:
            changed = _registry_record()
            setattr(changed, field, value)
            assert changed.content_hash() != base.content_hash(), field


# ---------------------------------------------------------------------------
# Backend equivalence: SQLite == in-memory
# ---------------------------------------------------------------------------

@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        yield MemoryBackend()
    else:
        backend = SQLiteBackend(str(tmp_path / "reg.db"))
        yield backend
        backend.close()


class TestBackendEquivalence:
    QUERIES = [
        {},
        {"recipient": "alice"},
        {"recipient": "nobody"},
        {"scheme_fingerprint": "scheme-1"},
        {"document_hash": hash_document("<a/>")},
        {"recipient": "alice", "scheme_fingerprint": "scheme-2"},
        {"recipient": "alice", "scheme_fingerprint": "scheme-1",
         "document_hash": hash_document("<a/>")},
    ]

    def _pair(self, tmp_path):
        memory = WatermarkRegistry(MemoryBackend(), sealer=SEALER)
        sqlite_backend = SQLiteBackend(str(tmp_path / "eq.db"))
        durable = WatermarkRegistry(sqlite_backend, sealer=SEALER)
        return _populated(memory), _populated(durable)

    def test_every_query_identical(self, tmp_path):
        memory, durable = self._pair(tmp_path)
        for query in self.QUERIES:
            via_memory = [r.to_dict() for r in memory.records(**query)]
            via_sqlite = [r.to_dict() for r in durable.records(**query)]
            # created_at differs (wall clock); sequences and content
            # ordering must not.
            strip = lambda d: {k: v for k, v in d.items()
                               if k != "created_at"}
            assert ([strip(d) for d in via_memory]
                    == [strip(d) for d in via_sqlite]), query
            assert memory.count(**query) == durable.count(**query)

    def test_recipients_and_pagination(self, tmp_path):
        memory, durable = self._pair(tmp_path)
        assert memory.recipients() == durable.recipients() \
            == ["alice", "bob", "carol"]
        for registry in (memory, durable):
            page = registry.records(offset=1, limit=2)
            assert [r.sequence for r in page] == [1, 2]
            assert registry.records(offset=10) == []
            assert [r.sequence for r in registry.records(limit=0)] == []

    def test_ledger_identical_shape(self, tmp_path):
        memory, durable = self._pair(tmp_path)
        mem_blocks = memory.blocks()
        sql_blocks = durable.blocks()
        assert len(mem_blocks) == len(sql_blocks) == 4
        for registry in (memory, durable):
            assert registry.verify_chain().intact

    def test_get_record(self, backend):
        assert backend.get_record(0) is None
        sequence = backend.append_record(_registry_record())
        assert sequence == 0
        found = backend.get_record(0)
        assert found.recipient == "alice"
        assert found.sequence == 0
        assert backend.get_record(99) is None

    def test_out_of_order_block_refused(self, backend):
        entry = _registry_record()
        entry.sequence = 0
        block = next_block(None, entry, SEALER)
        wrong = dataclasses.replace(block, index=5)
        with pytest.raises(RegistryError):
            backend.append_block(wrong)

    def test_sqlite_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "durable.db")
        registry = WatermarkRegistry(SQLiteBackend(path), sealer=SEALER)
        _populated(registry)
        originals = [r.to_dict() for r in registry.records()]
        registry.close()
        reopened = WatermarkRegistry(SQLiteBackend(path), sealer=SEALER)
        assert [r.to_dict() for r in reopened.records()] == originals
        assert reopened.verify_chain().intact
        reopened.close()

    def test_unopenable_path_raises_registry_error(self, tmp_path):
        path = str(tmp_path / "no" / "such" / "dir" / "x.db")
        with pytest.raises(RegistryError, match="cannot open registry"):
            SQLiteBackend(path)

    def test_non_sqlite_file_raises_registry_error(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_bytes(b"this is not a sqlite database at all")
        with pytest.raises(RegistryError,
                           match="not a wmxml registry database"):
            SQLiteBackend(str(path))


# ---------------------------------------------------------------------------
# The provenance ledger
# ---------------------------------------------------------------------------

class TestLedger:
    def _chain(self, n=4):
        registry = _populated(WatermarkRegistry(sealer=SEALER))
        return registry.blocks(), registry.records(), registry

    def test_genesis_and_links(self):
        blocks, _, _ = self._chain()
        assert blocks[0].prev_hash == GENESIS_HASH
        for previous, block in zip(blocks, blocks[1:]):
            assert block.prev_hash == previous.block_hash()

    def test_timestamps_monotonic(self):
        blocks, _, _ = self._chain()
        for previous, block in zip(blocks, blocks[1:]):
            assert block.timestamp >= previous.timestamp

    def test_clock_stepping_backwards_is_clamped(self):
        entry = _registry_record()
        first = next_block(None, entry, SEALER, now=1000.0)
        second = next_block(first, entry, SEALER, now=900.0)
        assert second.timestamp == 1000.0

    def test_intact_chain_verifies(self):
        blocks, records, registry = self._chain()
        report = verify_chain(blocks, records=records, sealer=SEALER)
        assert report.intact and report.sealed
        assert report.blocks == report.records == 4
        assert registry.verify_chain().intact

    @pytest.mark.parametrize("position", [0, 1, 3])
    @pytest.mark.parametrize("field,value", [
        ("prev_hash", "f" * 64),
        ("record_hash", "f" * 64),
        ("document_hash", "f" * 64),
        ("issuer", "mallory"),
        ("scheme_fingerprint", "forged"),
        ("key_fingerprint", "forged"),
        ("timestamp", 1.0),
        ("seal", "00" * 32),
    ])
    def test_any_field_tamper_detected(self, position, field, value):
        blocks, records, _ = self._chain()
        blocks[position] = dataclasses.replace(
            blocks[position], **{field: value})
        report = verify_chain(blocks, records=records, sealer=SEALER)
        assert not report.intact, (position, field)
        assert report.broken_index is not None

    def test_final_block_forgery_needs_the_key(self):
        # Rewrite the last block entirely (valid links, self-consistent
        # content) but seal it with the wrong key: only the HMAC check
        # can catch this, and it does.
        blocks, records, _ = self._chain()
        entry = records[-1]
        forged = next_block(blocks[-2], entry, KeyedPRF("wrong-key"))
        blocks[-1] = forged
        unsealed = verify_chain(blocks, records=records)
        assert unsealed.intact  # hash links alone cannot see it
        sealed = verify_chain(blocks, records=records, sealer=SEALER)
        assert not sealed.intact
        assert "seal" in sealed.reason

    def test_record_only_tamper_detected(self):
        # Edit a persisted record without touching the ledger at all.
        blocks, records, _ = self._chain()
        records[1].recipient = "mallory"
        report = verify_chain(blocks, records=records, sealer=SEALER)
        assert not report.intact
        assert report.broken_index == 1

    def test_row_count_drift_detected(self):
        blocks, records, _ = self._chain()
        report = verify_chain(blocks, records=records[:-1], sealer=SEALER)
        assert not report.intact
        assert "added or removed" in report.reason

    def test_raise_if_broken(self):
        blocks, records, _ = self._chain()
        blocks[2] = dataclasses.replace(blocks[2], issuer="mallory")
        report = verify_chain(blocks, records=records, sealer=SEALER)
        with pytest.raises(ChainBrokenError) as excinfo:
            report.raise_if_broken()
        assert excinfo.value.code == "chain-broken"

    def test_block_round_trips(self):
        blocks, _, _ = self._chain()
        for block in blocks:
            again = LedgerBlock.from_dict(
                json.loads(json.dumps(block.to_dict())))
            assert again == block
            assert again.block_hash() == block.block_hash()

    def test_append_without_sealer_refused(self):
        registry = WatermarkRegistry()  # no sealer attached
        with pytest.raises(RegistryFormatError):
            registry.append(_registry_record())


# ---------------------------------------------------------------------------
# Queries, unknown recipients
# ---------------------------------------------------------------------------

class TestQueries:
    def test_records_for_unknown_recipient(self):
        registry = _populated(WatermarkRegistry(sealer=SEALER))
        with pytest.raises(UnknownRecipientError) as excinfo:
            registry.records_for("mallory")
        assert excinfo.value.code == "unknown-recipient"
        assert "alice" in str(excinfo.value)  # the hint names known ids

    def test_records_for_known_recipient(self):
        registry = _populated(WatermarkRegistry(sealer=SEALER))
        assert [r.sequence for r in registry.records_for("alice")] == [0, 3]


# ---------------------------------------------------------------------------
# Export / import and schema versioning
# ---------------------------------------------------------------------------

class TestExportImport:
    def test_round_trip_preserves_chain(self, tmp_path):
        source = _populated(WatermarkRegistry(sealer=SEALER))
        dump = io.StringIO()
        lines = source.export_jsonl(dump)
        assert lines == 1 + 4 + 4  # header + records + blocks
        header = json.loads(dump.getvalue().splitlines()[0])
        assert header["format"] == EXPORT_FORMAT
        assert header["schema_version"] == SCHEMA_VERSION

        restored = WatermarkRegistry(
            SQLiteBackend(str(tmp_path / "restored.db")), sealer=SEALER)
        dump.seek(0)
        assert restored.import_jsonl(dump) == 8
        assert ([r.to_dict() for r in restored.records()]
                == [r.to_dict() for r in source.records()])
        # The imported chain is the *original* chain: still sealed by
        # the original key, not re-sealed on import.
        assert restored.blocks() == source.blocks()
        assert restored.verify_chain().intact
        restored.close()

    def test_import_into_non_empty_refused(self):
        source = _populated(WatermarkRegistry(sealer=SEALER))
        dump = io.StringIO()
        source.export_jsonl(dump)
        dump.seek(0)
        with pytest.raises(RegistryFormatError):
            source.import_jsonl(dump)

    def test_import_rejects_foreign_stream(self):
        registry = WatermarkRegistry(sealer=SEALER)
        with pytest.raises(RegistryFormatError):
            registry.import_jsonl(io.StringIO('{"format": "csv"}\n'))
        with pytest.raises(RegistryFormatError):
            registry.import_jsonl(io.StringIO(""))

    def test_import_rejects_newer_schema(self):
        registry = WatermarkRegistry(sealer=SEALER)
        header = json.dumps({"format": EXPORT_FORMAT,
                             "schema_version": SCHEMA_VERSION + 1})
        with pytest.raises(RegistryFormatError):
            registry.import_jsonl(io.StringIO(header + "\n"))

    def test_newer_database_schema_refused(self, tmp_path):
        path = str(tmp_path / "future.db")
        SQLiteBackend(path).close()
        conn = sqlite3.connect(path)
        conn.execute("UPDATE registry_meta SET value = ? "
                     "WHERE key = 'schema_version'",
                     (str(SCHEMA_VERSION + 1),))
        conn.commit()
        conn.close()
        with pytest.raises(RegistrySchemaError) as excinfo:
            SQLiteBackend(path)
        assert excinfo.value.code == "registry-schema"
        assert "newer" in str(excinfo.value)

    def test_current_database_schema_reopens(self, tmp_path):
        path = str(tmp_path / "current.db")
        SQLiteBackend(path).close()
        SQLiteBackend(path).close()  # reopening the same version is fine
