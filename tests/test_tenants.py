"""The tenancy primitives: key hierarchy, tokens, quotas, config.

Four contracts below the service layer:

* **Key hierarchy** — ``KeyedPRF.derive`` is a deterministic,
  domain-separated expand step; :class:`MasterKeyMap` derives distinct
  subkeys per tenant / scheme / purpose / generation, rotation appends
  generations without invalidating old ones, and the ledger sealer is
  pinned to the oldest generation.
* **Tokens** — ``wmx1.<claims>.<sig>`` round-trips through
  mint/verify; every forgery, malformation, expiry, or unknown key id
  is the same :class:`UnauthorizedError`.
* **Quotas** — the token bucket refills continuously against an
  injected clock, never over burst, and a refused take spends nothing.
* **Config** — ``wmxml-tenants-v1`` validation refuses unknown
  fields/scopes with the stable ``bad-tenant-config`` slug, and the
  new tenancy slugs sit in the one error table.
"""

import json

import pytest

from repro.core.crypto import KeyedPRF
from repro.errors import HTTP_STATUS_BY_CODE, error_code
from repro.tenants import (
    KNOWN_SCOPES,
    MasterKeyMap,
    QuotaPolicy,
    TenantConfig,
    TenantConfigError,
    TenantDirectory,
    TenantQuota,
    TenantsConfig,
    TokenBucket,
    UnauthorizedError,
    mint_token,
    verify_token,
)
from repro.tenants.errors import (
    ForbiddenError,
    RateLimitedError,
    UnknownKeyError,
)


class TestDerive:
    """KeyedPRF.derive — the HKDF-style expand step everything keys off."""

    def test_deterministic(self):
        prf = KeyedPRF("master")
        assert prf.derive("tenant-key", "acme") == \
            KeyedPRF("master").derive("tenant-key", "acme")

    def test_purpose_and_parts_separate_domains(self):
        prf = KeyedPRF("master")
        keys = {
            prf.derive("tenant-key", "acme"),
            prf.derive("tenant-key", "globex"),
            prf.derive("token-sign"),
            prf.derive("ledger-seal"),
            # Purpose/part boundary confusion must not collide.
            prf.derive("tenant-key:acme"),
        }
        assert len(keys) == 5

    def test_distinct_from_plain_digest(self):
        prf = KeyedPRF("master")
        assert prf.derive("p", "x") != prf.digest("p", "x")

    def test_32_bytes(self):
        assert len(KeyedPRF("master").derive("p")) == 32


class TestMasterKeyMap:
    def test_validation(self):
        with pytest.raises(TenantConfigError):
            MasterKeyMap({})
        with pytest.raises(TenantConfigError):
            MasterKeyMap({0: "secret"})
        with pytest.raises(TenantConfigError):
            MasterKeyMap({True: "secret"})
        with pytest.raises(TenantConfigError):
            MasterKeyMap({1: ""})
        with pytest.raises(TenantConfigError):
            MasterKeyMap({1: "secret"}, active=2)

    def test_active_defaults_to_newest(self):
        keys = MasterKeyMap({1: "a", 3: "c", 2: "b"})
        assert keys.active_id == 3
        assert keys.key_ids() == [1, 2, 3]

    def test_tenants_get_distinct_keys(self):
        keys = MasterKeyMap({1: "master"})
        assert keys.tenant_key("acme") != keys.tenant_key("globex")
        assert keys.scheme_key("acme", "books") != \
            keys.scheme_key("acme", "jobs")
        assert keys.token_key() not in (keys.tenant_key("acme"),
                                        keys.tenant_key("globex"))

    def test_generations_get_distinct_keys(self):
        keys = MasterKeyMap({1: "one", 2: "two"})
        assert keys.tenant_key("acme", key_id=1) != \
            keys.tenant_key("acme", key_id=2)
        # Default = active generation.
        assert keys.tenant_key("acme") == keys.tenant_key("acme",
                                                          key_id=2)

    def test_unknown_key_id_refused(self):
        keys = MasterKeyMap({1: "one"})
        with pytest.raises(UnknownKeyError):
            keys.tenant_key("acme", key_id=9)
        assert 9 not in keys and 1 in keys

    def test_rotation_appends_and_activates(self):
        keys = MasterKeyMap({1: "one"})
        old = keys.tenant_key("acme")
        assert keys.rotate("two") == 2
        assert keys.active_id == 2
        # The old generation still derives the identical subkey.
        assert keys.tenant_key("acme", key_id=1) == old

    def test_sealer_is_rotation_stable(self):
        keys = MasterKeyMap({1: "one"})
        before = keys.sealer().fingerprint()
        keys.rotate("two")
        assert keys.sealer().fingerprint() == before


class TestTokens:
    def test_mint_verify_round_trip(self):
        keys = MasterKeyMap({1: "master"})
        token = mint_token(keys, "acme", {"embed", "detect"})
        assert token.startswith("wmx1.")
        claims = verify_token(keys, token)
        assert claims.tenant == "acme"
        assert claims.scopes == frozenset({"embed", "detect"})
        assert claims.key_id == 1
        assert claims.expires_at is None

    def test_unknown_scope_refused_at_mint(self):
        keys = MasterKeyMap({1: "master"})
        with pytest.raises(TenantConfigError):
            mint_token(keys, "acme", {"embed", "sudo"})

    def test_expiry(self):
        keys = MasterKeyMap({1: "master"})
        token = mint_token(keys, "acme", {"embed"}, ttl_s=60,
                           now=1000.0)
        assert verify_token(keys, token, now=1059.0).expires_at == 1060
        with pytest.raises(UnauthorizedError):
            verify_token(keys, token, now=1060.0)

    def test_survives_rotation_via_key_id(self):
        keys = MasterKeyMap({1: "master"})
        token = mint_token(keys, "acme", {"embed"})
        keys.rotate("second")
        # The token names generation 1; verification re-derives that
        # generation's signing key.
        assert verify_token(keys, token).key_id == 1

    def test_wrong_key_does_not_verify(self):
        token = mint_token(MasterKeyMap({1: "master"}), "acme",
                           {"embed"})
        with pytest.raises(UnauthorizedError):
            verify_token(MasterKeyMap({1: "other"}), token)

    def test_unknown_key_id_is_unauthorized(self):
        keys = MasterKeyMap({1: "one", 2: "two"})
        token = mint_token(keys, "acme", {"embed"}, key_id=2)
        with pytest.raises(UnauthorizedError):
            verify_token(MasterKeyMap({1: "one"}), token)

    def test_tampered_claims_do_not_verify(self):
        import base64

        keys = MasterKeyMap({1: "master"})
        token = mint_token(keys, "acme", {"embed"})
        prefix, body, signature = token.split(".")
        raw = json.loads(base64.urlsafe_b64decode(
            body + "=" * (-len(body) % 4)))
        raw["tenant"] = "globex"
        forged = base64.urlsafe_b64encode(
            json.dumps(raw, sort_keys=True,
                       separators=(",", ":")).encode()
        ).rstrip(b"=").decode()
        with pytest.raises(UnauthorizedError):
            verify_token(keys, f"{prefix}.{forged}.{signature}")

    @pytest.mark.parametrize("bogus", [
        "", "wmx1", "wmx1.a", "wmx1.a.b.c", "jwt.a.b",
        "wmx1.!!!.###", "wmx1..", "wmx1.e30.e30",
    ])
    def test_malformed_tokens_are_unauthorized(self, bogus):
        keys = MasterKeyMap({1: "master"})
        with pytest.raises(UnauthorizedError):
            verify_token(keys, bogus)

    def test_unknown_scopes_in_token_are_dropped(self):
        # A future daemon may mint scopes this one does not know;
        # verification keeps the intersection rather than refusing.
        keys = MasterKeyMap({1: "master"})
        token = mint_token(keys, "acme", {"embed"})
        claims = verify_token(keys, token)
        assert claims.scopes <= KNOWN_SCOPES


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(60, burst=2, clock=lambda: now[0])
        assert bucket.take() == 0.0
        assert bucket.take() == 0.0
        wait = bucket.take()
        assert wait == pytest.approx(1.0)  # 60/min = 1 token/s
        # A refused take spends nothing.
        assert bucket.remaining() == 0
        now[0] = 1.0
        assert bucket.take() == 0.0

    def test_never_refills_over_burst(self):
        now = [0.0]
        bucket = TokenBucket(600, burst=3, clock=lambda: now[0])
        now[0] = 3600.0
        assert bucket.remaining() == 3

    def test_multi_token_take(self):
        now = [0.0]
        bucket = TokenBucket(60, burst=10, clock=lambda: now[0])
        assert bucket.take(10) == 0.0
        assert bucket.take(5) == pytest.approx(5.0)
        now[0] = 5.0
        assert bucket.take(5) == 0.0

    def test_default_burst_is_one_minute_allowance(self):
        assert TokenBucket(90.5).burst == 91
        assert TokenBucket(0.5).burst == 1

    def test_validation(self):
        with pytest.raises(TenantConfigError):
            TokenBucket(0)
        with pytest.raises(TenantConfigError):
            TokenBucket(60, burst=0)


class TestTenantQuota:
    def test_unlimited_by_default(self):
        quota = TenantQuota(QuotaPolicy())
        for _ in range(1000):
            quota.charge_request()
        quota.charge_documents(10**6)

    def test_rate_limited_carries_retry_after(self):
        now = [0.0]
        quota = TenantQuota(
            QuotaPolicy(requests_per_minute=60, request_burst=1),
            clock=lambda: now[0])
        quota.charge_request()
        with pytest.raises(RateLimitedError) as excinfo:
            quota.charge_request()
        assert excinfo.value.retry_after == pytest.approx(1.0)
        assert error_code(excinfo.value) == "rate-limited"

    def test_document_bucket_charges_per_document(self):
        now = [0.0]
        quota = TenantQuota(
            QuotaPolicy(documents_per_minute=60, document_burst=10),
            clock=lambda: now[0])
        quota.charge_documents(10)
        with pytest.raises(RateLimitedError):
            quota.charge_documents(1)
        # Requests stay unlimited: only the document bucket is set.
        quota.charge_request()

    def test_snapshot(self):
        quota = TenantQuota(
            QuotaPolicy(requests_per_minute=60, request_burst=5))
        snap = quota.snapshot()
        assert snap["documents"] is None
        assert snap["requests"] == {"rate_per_minute": 60.0,
                                    "burst": 5, "remaining": 5}

    def test_quota_policy_validation(self):
        with pytest.raises(TenantConfigError):
            QuotaPolicy.from_dict({"requests_per_second": 1})
        with pytest.raises(TenantConfigError):
            QuotaPolicy.from_dict({"requests_per_minute": "fast"})
        with pytest.raises(TenantConfigError):
            QuotaPolicy.from_dict({"requests_per_minute": True})


VALID_CONFIG = {
    "format": "wmxml-tenants-v1",
    "keys": {"1": "secret-one", "2": "secret-two"},
    "active_key_id": 2,
    "tenants": {
        "acme": {},
        "globex": {"scopes": ["embed", "detect"],
                   "quota": {"requests_per_minute": 120}},
    },
}


class TestTenantsConfig:
    def test_round_trip(self):
        config = TenantsConfig.from_dict(VALID_CONFIG)
        assert config.keys.active_id == 2
        assert sorted(config.tenants) == ["acme", "globex"]
        assert config.tenant("acme").scopes == KNOWN_SCOPES
        assert config.tenant("globex").scopes == \
            frozenset({"embed", "detect"})
        assert config.tenant("globex").quota.requests_per_minute == 120
        # Per-tenant configs serialise (for introspection); the config
        # as a whole deliberately does not — the key map never hands
        # its master secrets back out.
        assert TenantConfig.from_dict(
            "globex", config.tenant("globex").to_dict()) == \
            config.tenant("globex")
        assert not hasattr(config, "to_dict")

    def test_load(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps(VALID_CONFIG))
        assert TenantsConfig.load(str(path)).keys.active_id == 2

    @pytest.mark.parametrize("mutate", [
        lambda raw: raw.pop("format"),
        lambda raw: raw.update(format="wmxml-tenants-v2"),
        lambda raw: raw.update(keys={}),
        lambda raw: raw.update(keys={"zero": "x"}),
        lambda raw: raw.update(tenants={}),
        lambda raw: raw.update(active_key_id=9),
        lambda raw: raw["tenants"].update(
            bad={"scopes": ["sudo"]}),
        lambda raw: raw["tenants"].update(
            bad={"surprise": True}),
        lambda raw: raw["tenants"].update(
            bad={"quota": {"surprise": 1}}),
    ])
    def test_invalid_configs_refused(self, mutate):
        raw = json.loads(json.dumps(VALID_CONFIG))
        mutate(raw)
        with pytest.raises(TenantConfigError) as excinfo:
            TenantsConfig.from_dict(raw)
        assert error_code(excinfo.value) == "bad-tenant-config"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(TenantConfigError):
            TenantsConfig.load(str(tmp_path / "absent.json"))

    def test_load_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TenantConfigError):
            TenantsConfig.load(str(path))


class TestDirectoryAuth:
    def test_mint_cannot_widen_a_grant(self):
        directory = TenantDirectory(TenantsConfig.from_dict(VALID_CONFIG))
        with pytest.raises(TenantConfigError):
            directory.mint_token("globex", scopes={"trace"})

    def test_config_revocation_disarms_outstanding_tokens(self):
        config = TenantsConfig.from_dict(VALID_CONFIG)
        token = TenantDirectory(config).mint_token("acme")
        narrowed = json.loads(json.dumps(VALID_CONFIG))
        narrowed["tenants"]["acme"] = {"scopes": ["detect"]}
        directory = TenantDirectory(TenantsConfig.from_dict(narrowed))
        claims = directory.authenticate(token)
        assert claims.scopes == frozenset({"detect"})

    def test_unknown_tenant_token_is_unauthorized(self):
        config = TenantsConfig.from_dict(VALID_CONFIG)
        token = mint_token(config.keys, "stranger", {"embed"})
        with pytest.raises(UnauthorizedError):
            TenantDirectory(config).authenticate(token)

    def test_tenant_systems_are_isolated_and_cached(self):
        directory = TenantDirectory(TenantsConfig.from_dict(VALID_CONFIG))
        acme = directory.system("acme")
        assert directory.system("acme") is acme
        assert acme.key_fingerprint != \
            directory.system("globex").key_fingerprint

    def test_record_from_other_tenant_is_forbidden(self):
        directory = TenantDirectory(TenantsConfig.from_dict(VALID_CONFIG))

        class Record:
            tenant = "globex"
            key_id = 2

        with pytest.raises(ForbiddenError):
            directory.system_for_record("acme", Record())


class TestErrorTable:
    """The new tenancy slugs live in the one error table."""

    @pytest.mark.parametrize("code,status", [
        ("unauthorized", 401),
        ("forbidden", 403),
        ("rate-limited", 429),
        ("bad-tenant-config", 400),
        ("unknown-key", 400),
        ("tenant-error", 500),
    ])
    def test_slug_and_status(self, code, status):
        assert HTTP_STATUS_BY_CODE[code] == status
