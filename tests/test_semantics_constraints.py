"""Unit tests for XML keys and functional dependencies."""

import pytest

from repro.semantics import ConstraintError, XMLFD, XMLKey
from repro.xmlmodel import parse


class TestXMLKeyDefinition:
    def test_requires_fields(self):
        with pytest.raises(ConstraintError):
            XMLKey("k", "/db", "book", ())

    def test_context_must_be_absolute(self):
        with pytest.raises(ConstraintError):
            XMLKey("k", "db", "book", ("title",))

    def test_target_must_be_relative(self):
        with pytest.raises(ConstraintError):
            XMLKey("k", "/db", "/book", ("title",))

    def test_render(self):
        key = XMLKey("book-key", "/db", "book", ("title",))
        assert "book-key" in key.render()


class TestXMLKeyChecking:
    KEY = XMLKey("book-key", "/db", "book", ("title",))

    def test_holds_on_unique_titles(self, db1_doc):
        assert self.KEY.holds(db1_doc)
        assert self.KEY.check(db1_doc) == []

    def test_duplicate_detected(self):
        doc = parse("<db><book><title>Same</title></book>"
                    "<book><title>Same</title></book></db>")
        violations = self.KEY.check(doc)
        assert len(violations) == 1
        assert "duplicate key" in violations[0].message

    def test_missing_field_detected(self):
        doc = parse("<db><book><title>A</title></book><book/></db>")
        violations = self.KEY.check(doc)
        assert any("missing" in v.message for v in violations)

    def test_multi_valued_field_detected(self):
        doc = parse("<db><book><title>A</title><title>B</title></book></db>")
        violations = self.KEY.check(doc)
        assert len(violations) == 1

    def test_index(self, db1_doc):
        index = self.KEY.index(db1_doc)
        assert ("Database Design",) in index
        assert index[("Database Design",)].find_text("editor") == "Gamer"

    def test_key_of(self, db1_doc):
        book = db1_doc.root.child_elements("book")[0]
        assert self.KEY.key_of(book) == ("Readings in Database Systems",)

    def test_attribute_field(self, db1_doc):
        key = XMLKey("pub-title", "/db", "book", ("@publisher", "title"))
        assert key.holds(db1_doc)
        book = db1_doc.root.child_elements("book")[0]
        assert key.key_of(book) == ("mkp", "Readings in Database Systems")

    def test_per_context_scoping(self):
        # Same title under different contexts is not a violation.
        doc = parse("<lib><shelf><b><t>X</t></b></shelf>"
                    "<shelf><b><t>X</t></b></shelf></lib>")
        key = XMLKey("k", "/lib/shelf", "b", ("t",))
        assert key.holds(doc)
        global_key = XMLKey("g", "/lib", "shelf/b", ("t",))
        assert not global_key.holds(doc)

    def test_violation_str(self):
        doc = parse("<db><book><title>S</title></book>"
                    "<book><title>S</title></book></db>")
        text = str(self.KEY.check(doc)[0])
        assert "book-key" in text


class TestXMLFDDefinition:
    def test_requires_lhs(self):
        with pytest.raises(ConstraintError):
            XMLFD("f", "/db/book", (), "@publisher")

    def test_scope_absolute(self):
        with pytest.raises(ConstraintError):
            XMLFD("f", "book", ("editor",), "@publisher")

    def test_rhs_not_in_lhs(self):
        with pytest.raises(ConstraintError):
            XMLFD("f", "/db/book", ("editor",), "editor")

    def test_render(self):
        fd = XMLFD("ed-pub", "/db/book", ("editor",), "@publisher")
        assert "ed-pub" in fd.render()


class TestXMLFDChecking:
    FD = XMLFD("editor-publisher", "/db/book", ("editor",), "@publisher")

    def test_holds_on_db1(self, db1_doc):
        # Harrypotter -> mkp (twice), Gamer -> acm: consistent.
        assert self.FD.holds(db1_doc)

    def test_violation_detected(self):
        doc = parse('<db><book publisher="mkp"><editor>E</editor></book>'
                    '<book publisher="acm"><editor>E</editor></book></db>')
        violations = self.FD.check(doc)
        assert len(violations) == 1
        assert violations[0].lhs == ("E",)
        assert "mkp" in str(violations[0])

    def test_incomplete_bindings_skipped(self):
        doc = parse('<db><book publisher="mkp"/>'
                    '<book><editor>E</editor></book></db>')
        assert self.FD.holds(doc)

    def test_bindings(self, db1_doc):
        bindings = self.FD.bindings(db1_doc)
        assert len(bindings) == 3
        lhs_values = [b[0] for b in bindings]
        assert ("Harrypotter",) in lhs_values
        assert ("Gamer",) in lhs_values


class TestRedundancyGroups:
    FD = XMLFD("editor-publisher", "/db/book", ("editor",), "@publisher")

    def test_groups(self, db1_doc):
        groups = self.FD.redundancy_groups(db1_doc)
        assert len(groups) == 2  # Harrypotter, Gamer
        by_lhs = {g.lhs: g for g in groups}
        assert len(by_lhs[("Harrypotter",)]) == 2
        assert len(by_lhs[("Gamer",)]) == 1

    def test_duplicated_groups_only(self, db1_doc):
        duplicated = self.FD.duplicated_groups(db1_doc)
        assert len(duplicated) == 1
        assert duplicated[0].lhs == ("Harrypotter",)

    def test_group_values_and_consistency(self, db1_doc):
        group = self.FD.duplicated_groups(db1_doc)[0]
        assert group.values == ("mkp", "mkp")
        assert group.is_consistent()

    def test_inconsistent_group(self):
        doc = parse('<db><book publisher="a"><editor>E</editor></book>'
                    '<book publisher="b"><editor>E</editor></book></db>')
        group = self.FD.duplicated_groups(doc)[0]
        assert not group.is_consistent()

    def test_element_rhs(self, db1_doc):
        # rhs may be an element too: title determines year here.
        fd = XMLFD("title-year", "/db/book", ("title",), "year")
        groups = fd.redundancy_groups(db1_doc)
        assert len(groups) == 3
        assert all(len(g) == 1 for g in groups)
