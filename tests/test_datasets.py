"""Unit tests for the synthetic dataset generators."""

import base64

import pytest

from repro.datasets import bibliography, jobs, library, paper
from repro.semantics import discover_fds, discover_keys, infer_schema, is_valid
from repro.xpath import select_strings


class TestBibliography:
    CONFIG = bibliography.BibliographyConfig(books=40, editors=6, seed=3)

    def test_deterministic(self):
        a = bibliography.generate_document(self.CONFIG)
        b = bibliography.generate_document(self.CONFIG)
        assert a.equals(b)

    def test_seed_changes_output(self):
        other = bibliography.BibliographyConfig(books=40, editors=6, seed=4)
        a = bibliography.generate_document(self.CONFIG)
        b = bibliography.generate_document(other)
        assert not a.equals(b)

    def test_row_count_scales(self):
        rows = bibliography.generate_rows(self.CONFIG)
        assert len(rows) >= 40  # one or more authors per book

    def test_key_holds(self):
        doc = bibliography.generate_document(self.CONFIG)
        assert bibliography.semantic_key().holds(doc)

    def test_fd_holds_with_redundancy(self):
        doc = bibliography.generate_document(self.CONFIG)
        fd = bibliography.semantic_fd()
        assert fd.holds(doc)
        assert fd.duplicated_groups(doc)  # redundancy actually exists

    def test_shapes_cover_fields(self):
        source = bibliography.book_shape()
        for other in (bibliography.publisher_shape(),
                      bibliography.editor_shape()):
            assert source.dropped_fields(other) == []

    def test_discovery_recovers_semantics(self):
        doc = bibliography.generate_document(self.CONFIG)
        rows = bibliography.book_shape().shred(doc)
        keys = discover_keys(rows, ["title", "publisher", "editor"])
        assert ("title",) in [k.fields for k in keys]
        fds = discover_fds(rows, ["editor", "publisher"])
        assert (("editor",), "publisher") in [(f.lhs, f.rhs) for f in fds]

    def test_inferred_schema_validates(self):
        doc = bibliography.generate_document(self.CONFIG)
        assert is_valid(infer_schema(doc), doc)

    def test_scheme_constructs(self):
        scheme = bibliography.default_scheme(gamma=8)
        assert scheme.gamma == 8
        assert {c.field for c in scheme.carriers} == {
            "year", "price", "publisher"}


class TestJobs:
    CONFIG = jobs.JobsConfig(jobs=50, companies=5, cities=4, seed=9)

    def test_deterministic(self):
        a = jobs.generate_document(self.CONFIG)
        b = jobs.generate_document(self.CONFIG)
        assert a.equals(b)

    def test_reference_key_unique(self):
        doc = jobs.generate_document(self.CONFIG)
        assert jobs.semantic_key().holds(doc)
        refs = select_strings(doc, "/jobs/job/@reference")
        assert len(refs) == 50

    def test_fds_hold(self):
        doc = jobs.generate_document(self.CONFIG)
        for fd in jobs.semantic_fds():
            assert fd.holds(doc), fd.name
            assert fd.duplicated_groups(doc), fd.name

    def test_salary_numeric(self):
        doc = jobs.generate_document(self.CONFIG)
        for salary in select_strings(doc, "/jobs/job/salary"):
            assert 40_000 <= int(salary) <= 200_000

    def test_posted_dates_valid(self):
        from repro.semantics import LeafType
        doc = jobs.generate_document(self.CONFIG)
        for posted in select_strings(doc, "/jobs/job/posted"):
            assert LeafType.DATE.accepts(posted)

    def test_alternate_shapes_lossless(self):
        source = jobs.listing_shape()
        for other in (jobs.by_company_shape(), jobs.by_city_shape()):
            assert source.dropped_fields(other) == []

    def test_scheme_constructs(self):
        scheme = jobs.default_scheme()
        assert {c.field for c in scheme.carriers} == {
            "salary", "posted", "position", "industry"}


class TestLibrary:
    CONFIG = library.LibraryConfig(items=30, categories=4, seed=2,
                                   image_bytes=64)

    def test_deterministic(self):
        a = library.generate_document(self.CONFIG)
        b = library.generate_document(self.CONFIG)
        assert a.equals(b)

    def test_images_are_base64(self):
        doc = library.generate_document(self.CONFIG)
        images = select_strings(doc, "/library/item/image")
        assert len(images) == 30
        for image in images:
            assert len(base64.b64decode(image)) == 64

    def test_key_and_fd(self):
        doc = library.generate_document(self.CONFIG)
        assert library.semantic_key().holds(doc)
        assert library.semantic_fd().holds(doc)

    def test_by_category_lossless(self):
        assert library.catalogue_shape().dropped_fields(
            library.by_category_shape()) == []

    def test_scheme_constructs(self):
        scheme = library.default_scheme()
        assert {c.field for c in scheme.carriers} == {
            "image", "pages", "shelf"}


class TestPaperDocuments:
    def test_db1_parses(self):
        doc = paper.figure1_db1()
        assert len(doc.root.child_elements("book")) == 2
        assert select_strings(doc, "/db/book/@publisher") == ["mkp", "acm"]

    def test_db2_parses(self):
        doc = paper.figure1_db2()
        assert select_strings(doc, "/db/publisher/@name") == ["mkp", "acm"]

    def test_paper_example_query_pair(self):
        """The §2.1 usability example: both organisations answer alike."""
        db1 = paper.figure1_db1()
        db2 = paper.figure1_db2()
        # On db1 the second book uses <writer>; the paper's query for
        # db1 therefore targets writer.
        a1 = select_strings(
            db1, "/db/book[title='Database Design']/writer")
        a2 = select_strings(
            db2,
            "/db/publisher/author[book='Database Design']/@name")
        assert set(a2) <= set(a1)
        assert a2 == ["Berstein"]
