"""Property-based tests for the record/shape layer and the pipeline.

The central invariants behind WmXML's reorganisation resistance:

* build-then-shred recovers exactly the logical relation,
* reorganisation between shapes preserves the relation,
* embed-then-detect is the identity on watermark bits for any relation
  and any key.
"""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.core import (
    CarrierSpec,
    KeyIdentifier,
    Watermark,
    WatermarkingScheme,
    WmXMLDecoder,
    WmXMLEncoder,
)
from repro.rewriting import LogicalQuery, compile_logical, reorganize
from repro.semantics import Row, level, shape
from repro.xpath import select_strings

# -- relation strategy ------------------------------------------------------------

# Values must survive XML round-trips and field-value comparisons; keep
# to printable, strip-stable strings.
values = st.text(
    alphabet=st.characters(codec="ascii", categories=("Lu", "Ll", "Nd")),
    min_size=1, max_size=8)
years = st.integers(min_value=1900, max_value=2099).map(str)


@st.composite
def relations(draw):
    """A small publications-like relation with a unique key field."""
    size = draw(st.integers(min_value=1, max_value=12))
    keys = draw(st.lists(values, min_size=size, max_size=size, unique=True))
    rows = []
    for key in keys:
        rows.append(Row.from_values({
            "title": f"T{key}",
            "publisher": draw(values),
            "year": draw(years),
        }))
    return rows


FLAT = shape("flat", "db", [
    level("book", group_by=["title"],
          attributes={"publisher": "publisher"},
          leaves={"title": "title", "year": "year"}),
])

NESTED = shape("nested", "db", [
    level("publisher", group_by=["publisher"],
          attributes={"name": "publisher"}),
    level("book", group_by=["title"], text_field="title",
          leaves={"year": "year"}),
])

FIELDS = ("title", "publisher", "year")


def relation_of(document, document_shape):
    return {row.key(FIELDS) for row in document_shape.shred(document)}


class TestShapeRoundTrip:
    @given(relations())
    @settings(max_examples=80, deadline=None)
    def test_build_shred_identity(self, rows):
        document = FLAT.build(rows)
        assert relation_of(document, FLAT) == {r.key(FIELDS) for r in rows}

    @given(relations())
    @settings(max_examples=80, deadline=None)
    def test_reorganization_preserves_relation(self, rows):
        document = FLAT.build(rows)
        reorganised = reorganize(document, FLAT, NESTED).document
        assert relation_of(reorganised, NESTED) == \
            relation_of(document, FLAT)

    @given(relations())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_through_nested(self, rows):
        document = FLAT.build(rows)
        there = reorganize(document, FLAT, NESTED).document
        back = reorganize(there, NESTED, FLAT).document
        assert relation_of(back, FLAT) == relation_of(document, FLAT)


class TestQueryRewritingProperty:
    @given(relations())
    @settings(max_examples=60, deadline=None)
    def test_rewritten_answers_agree(self, rows):
        document = FLAT.build(rows)
        reorganised = reorganize(document, FLAT, NESTED).document
        for row in rows:
            query = LogicalQuery.create("year", {"title": row["title"]})
            flat_answer = set(select_strings(
                document, compile_logical(query, FLAT)))
            nested_answer = set(select_strings(
                reorganised, compile_logical(query, NESTED)))
            assert flat_answer == nested_answer


class TestEmbedDetectProperty:
    @given(relations(),
           st.text(min_size=1, max_size=6,
                   alphabet=st.characters(codec="ascii",
                                          categories=("Lu", "Ll", "Nd"))),
           st.text(min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_detection_identity(self, rows, secret_key, message):
        scheme = WatermarkingScheme(
            shape=FLAT,
            carriers=[CarrierSpec.create("year", "numeric",
                                         KeyIdentifier(("title",)))],
            gamma=1)
        document = FLAT.build(rows)
        watermark = Watermark.from_message(message)
        result = WmXMLEncoder(scheme, secret_key).embed(document, watermark)
        outcome = WmXMLDecoder(secret_key).detect(
            result.document, result.record, FLAT, expected=watermark)
        # Every vote must agree with the embedded watermark.
        assert outcome.votes_matching == outcome.votes_total
        assert outcome.votes_total >= len(rows)

    @given(relations(), st.text(min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_detection_after_reorganization(self, rows, message):
        scheme = WatermarkingScheme(
            shape=FLAT,
            carriers=[CarrierSpec.create("year", "numeric",
                                         KeyIdentifier(("title",)))],
            gamma=1)
        document = FLAT.build(rows)
        watermark = Watermark.from_message(message)
        result = WmXMLEncoder(scheme, "prop-key").embed(document, watermark)
        reorganised = reorganize(result.document, FLAT, NESTED).document
        outcome = WmXMLDecoder("prop-key").detect(
            reorganised, result.record, NESTED, expected=watermark)
        assert outcome.votes_matching == outcome.votes_total
        assert outcome.votes_total >= len(rows)
