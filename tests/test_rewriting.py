"""Unit tests for logical queries, rewriting, and reorganisation."""

import pytest

from repro.rewriting import (
    LogicalQuery,
    compile_logical,
    reorganize,
    rewrite,
    roundtrip,
    xpath_literal,
)
from repro.semantics import RecordError, level, shape
from repro.xmlmodel import parse
from repro.xpath import select_strings


class TestXPathLiteral:
    def test_plain(self):
        assert xpath_literal("abc") == "'abc'"

    def test_single_quote(self):
        assert xpath_literal("O'Brien") == '"O\'Brien"'

    def test_double_quote(self):
        assert xpath_literal('say "hi"') == "'say \"hi\"'"

    def test_both_quotes_concat(self):
        literal = xpath_literal("a'b\"c")
        assert literal.startswith("concat(")
        # The produced literal must evaluate back to the original value.
        from repro.xpath import evaluate_xpath
        doc = parse("<x/>")
        assert evaluate_xpath(doc, literal) == "a'b\"c"


class TestLogicalQuery:
    def test_create_normalises_order(self):
        a = LogicalQuery.create("year", {"title": "T", "author": "A"})
        b = LogicalQuery.create("year", {"author": "A", "title": "T"})
        assert a == b

    def test_fields_used(self):
        q = LogicalQuery.create("year", {"title": "T"})
        assert q.fields_used() == {"year", "title"}

    def test_serialisation_roundtrip(self):
        q = LogicalQuery.create("year", {"title": "T"})
        assert LogicalQuery.from_dict(q.to_dict()) == q

    def test_str(self):
        q = LogicalQuery.create("year", {"title": "T"})
        assert "select year" in str(q)


class TestCompilation:
    def test_book_shape_compilation(self, book_shape):
        q = LogicalQuery.create("year", {"title": "Database Design"})
        xpath = compile_logical(q, book_shape)
        assert xpath == "/db/book[title='Database Design']/year"

    def test_attribute_target(self, book_shape):
        q = LogicalQuery.create("publisher", {"title": "Database Design"})
        xpath = compile_logical(q, book_shape)
        assert xpath == "/db/book[title='Database Design']/@publisher"

    def test_publisher_shape_compilation(self, publisher_shape):
        # The paper's own rewriting example: title condition sits *below*
        # the author level in db2.
        q = LogicalQuery.create(
            "author", {"title": "Readings in Database Systems"})
        xpath = compile_logical(q, publisher_shape)
        assert xpath == (
            "/db/publisher/author"
            "[book/text()='Readings in Database Systems']/@name")

    def test_multi_condition(self, publisher_shape):
        q = LogicalQuery.create(
            "year", {"publisher": "mkp", "title": "XML Query Processing"})
        xpath = compile_logical(q, publisher_shape)
        assert xpath == (
            "/db/publisher[@name='mkp']/author/book"
            "[text()='XML Query Processing']/year")

    def test_text_target(self, publisher_shape):
        q = LogicalQuery.create("title", {"author": "Hellerstein"})
        xpath = compile_logical(q, publisher_shape)
        assert xpath == (
            "/db/publisher/author[@name='Hellerstein']/book/text()")

    def test_unknown_field_raises(self, book_shape):
        q = LogicalQuery.create("salary", {"title": "T"})
        with pytest.raises(RecordError):
            compile_logical(q, book_shape)


class TestSemanticEquivalence:
    """The same logical query returns the same answers on both shapes."""

    QUERIES = [
        LogicalQuery.create("author",
                            {"title": "Readings in Database Systems"}),
        LogicalQuery.create("year", {"title": "Database Design"}),
        LogicalQuery.create("editor", {"title": "XML Query Processing"}),
        LogicalQuery.create("publisher", {"editor": "Gamer"}),
        LogicalQuery.create("title", {"author": "Stonebraker"}),
    ]

    @pytest.mark.parametrize("query", QUERIES, ids=str)
    def test_equivalence(self, query, db1_doc, book_shape, publisher_shape):
        db2 = reorganize(db1_doc, book_shape, publisher_shape).document
        source_xpath, target_xpath = rewrite(query, book_shape,
                                             publisher_shape)
        # Value *sets* must agree: an answer may appear with different
        # multiplicity after re-nesting (e.g. one <year> per author copy
        # of the same book), which is immaterial to query correctness.
        original = set(select_strings(db1_doc, source_xpath))
        rewritten = set(select_strings(db2, target_xpath))
        assert original == rewritten
        assert original  # queries must actually return data

    def test_rewrite_lossy_target_raises(self, book_shape):
        tiny = shape("tiny", "db",
                     [level("book", group_by=["title"], text_field="title")])
        q = LogicalQuery.create("year", {"title": "T"})
        with pytest.raises(RecordError):
            rewrite(q, book_shape, tiny)


class TestReorganize:
    def test_result_metadata(self, db1_doc, book_shape, publisher_shape):
        result = reorganize(db1_doc, book_shape, publisher_shape)
        assert result.lossless
        assert result.row_count == 5
        assert result.document.root.tag == "db"

    def test_lossy_requires_flag(self, db1_doc, book_shape):
        tiny = shape("tiny", "db",
                     [level("book", group_by=["title"], text_field="title")])
        with pytest.raises(RecordError):
            reorganize(db1_doc, book_shape, tiny)
        result = reorganize(db1_doc, book_shape, tiny, allow_lossy=True)
        assert not result.lossless
        assert "author" in result.dropped_fields

    def test_roundtrip_preserves_relation(self, db1_doc, book_shape,
                                          publisher_shape):
        # Entity order may change (grouping through the foreign shape
        # re-sorts), but the logical relation must survive exactly.
        back = roundtrip(db1_doc, publisher_shape, book_shape)
        fields = ("title", "author", "publisher", "editor", "year")
        original = {row.key(fields) for row in book_shape.shred(db1_doc)}
        returned = {row.key(fields) for row in book_shape.shred(back)}
        assert original == returned

    def test_roundtrip_identity_when_order_stable(self, book_shape,
                                                  publisher_shape):
        # With one author per book and books pre-grouped by publisher,
        # the round trip is the exact identity.
        doc = parse(
            "<db>"
            '<book publisher="mkp"><title>A</title><author>X</author>'
            "<editor>E1</editor><year>1998</year></book>"
            '<book publisher="mkp"><title>B</title><author>X</author>'
            "<editor>E1</editor><year>1999</year></book>"
            '<book publisher="acm"><title>C</title><author>Y</author>'
            "<editor>E2</editor><year>2000</year></book>"
            "</db>")
        back = roundtrip(doc, publisher_shape, book_shape)
        assert back.equals(doc)

    def test_figure1_structure(self, db1_doc, book_shape, publisher_shape):
        """The reorganised document has the db2.xml structure of Figure 1."""
        db2 = reorganize(db1_doc, book_shape, publisher_shape).document
        assert select_strings(db2, "/db/publisher/@name") == ["mkp", "acm"]
        assert select_strings(
            db2, "/db/publisher[@name='mkp']/author/@name") == [
                "Stonebraker", "Hellerstein"]
