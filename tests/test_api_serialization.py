"""Versioned JSON round-trips for schemes, records, and results.

The service requirement: a deployment (scheme), its query set Q
(record), and a detection verdict must all survive process boundaries.
Property-style lock: build -> dump -> load -> re-embed must reproduce
the marked document bit-for-bit for every dataset profile.
"""

import json

import pytest

from repro import api
from repro.core.record import RECORD_FORMAT
from repro.core.scheme import SCHEME_FORMAT
from repro.datasets import bibliography, jobs, library
from repro.xmlmodel import serialize

PROFILES = {
    "bibliography": (
        lambda: bibliography.generate_document(
            bibliography.BibliographyConfig(books=40, editors=6, seed=11)),
        lambda: bibliography.default_scheme(2)),
    "jobs": (
        lambda: jobs.generate_document(
            jobs.JobsConfig(jobs=40, seed=11)),
        lambda: jobs.default_scheme(2)),
    "library": (
        lambda: library.generate_document(
            library.LibraryConfig(items=40, seed=11)),
        lambda: library.default_scheme(2)),
}


class TestSchemeRoundTrip:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_dict_round_trip_is_exact(self, profile):
        _, make_scheme = PROFILES[profile]
        scheme = make_scheme()
        reloaded = api.WatermarkingScheme.from_dict(
            json.loads(json.dumps(scheme.to_dict())))
        assert reloaded.to_dict() == scheme.to_dict()

    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_reloaded_scheme_re_embeds_bit_identically(self, profile):
        """The property the declarative format exists for."""
        make_doc, make_scheme = PROFILES[profile]
        scheme = make_scheme()
        reloaded = api.WatermarkingScheme.from_json(scheme.to_json())

        original = api.Pipeline(scheme, "rt-key").embed(
            make_doc(), "(c) round-trip")
        again = api.Pipeline(reloaded, "rt-key").embed(
            make_doc(), "(c) round-trip")
        assert serialize(again.document) == serialize(original.document)
        assert again.record.to_dict() == original.record.to_dict()

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "scheme.json"
        scheme = bibliography.default_scheme(3)
        scheme.save(str(path))
        reloaded = api.WatermarkingScheme.load(str(path))
        assert reloaded.to_dict() == scheme.to_dict()
        assert json.loads(path.read_text())["format"] == SCHEME_FORMAT

    def test_wrong_format_tag_rejected(self):
        data = bibliography.default_scheme(2).to_dict()
        data["format"] = "wmxml-scheme-v999"
        with pytest.raises(api.SchemeFormatError):
            api.WatermarkingScheme.from_dict(data)

    def test_malformed_document_rejected(self):
        data = bibliography.default_scheme(2).to_dict()
        del data["shape"]
        with pytest.raises(api.SchemeFormatError):
            api.WatermarkingScheme.from_dict(data)

    def test_garbage_json_rejected(self):
        with pytest.raises(api.SchemeFormatError):
            api.WatermarkingScheme.from_json("{not json")

    def test_bad_identifier_kind_rejected(self):
        data = bibliography.default_scheme(2).to_dict()
        data["carriers"][0]["identifier"]["kind"] = "vibes"
        # The documented loading contract: malformed documents surface
        # as SchemeFormatError, whichever layer caught the problem.
        with pytest.raises(api.SchemeFormatError):
            api.WatermarkingScheme.from_dict(data)

    def test_semantically_invalid_document_is_a_format_error(self):
        data = bibliography.default_scheme(2).to_dict()
        data["carriers"][0]["field"] = "no-such-field"
        with pytest.raises(api.SchemeFormatError):
            api.WatermarkingScheme.from_dict(data)


class TestRecordRoundTrip:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    def test_record_json_round_trip_preserves_detection(self, profile):
        make_doc, make_scheme = PROFILES[profile]
        pipeline = api.Pipeline(make_scheme(), "rt-key")
        result = pipeline.embed(make_doc(), "(c) record")
        reloaded = api.WatermarkRecord.from_json(result.record.to_json())
        assert reloaded.to_dict() == result.record.to_dict()

        direct = pipeline.detect(result.document, result.record,
                                 expected="(c) record")
        via_json = pipeline.detect(result.document, reloaded,
                                   expected="(c) record")
        assert via_json.to_dict() == direct.to_dict()
        assert via_json.detected

    def test_wrong_format_tag_rejected(self):
        with pytest.raises(api.RecordFormatError):
            api.WatermarkRecord.from_dict({"format": "something-else"})
        with pytest.raises(ValueError):  # legacy catch style still works
            api.WatermarkRecord.from_dict({"format": "something-else"})

    def test_garbage_json_rejected(self):
        with pytest.raises(api.RecordFormatError):
            api.WatermarkRecord.from_json("][")

    def test_format_tag_value(self):
        pipeline = api.Pipeline(bibliography.default_scheme(2), "k")
        doc = PROFILES["bibliography"][0]()
        record = pipeline.embed(doc, "x").record
        assert record.to_dict()["format"] == RECORD_FORMAT


class TestDetectionResultRoundTrip:
    def _outcome(self, expected="(c) result"):
        make_doc, make_scheme = PROFILES["bibliography"]
        pipeline = api.Pipeline(make_scheme(), "rt-key")
        result = pipeline.embed(make_doc(), "(c) result")
        return pipeline.detect(result.document, result.record,
                               expected=expected)

    def test_round_trip_is_exact(self):
        outcome = self._outcome()
        reloaded = api.DetectionResult.from_json(outcome.to_json())
        assert reloaded.to_dict() == outcome.to_dict()
        assert reloaded.detected == outcome.detected
        assert reloaded.match_ratio == outcome.match_ratio

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "result.json"
        outcome = self._outcome()
        outcome.save(str(path))
        assert api.DetectionResult.load(str(path)).to_dict() \
            == outcome.to_dict()

    def test_blind_outcome_round_trips_none_bits(self):
        make_doc, make_scheme = PROFILES["bibliography"]
        pipeline = api.Pipeline(make_scheme(), "rt-key")
        result = pipeline.embed(make_doc(), "(c) result")
        blind = pipeline.detect(result.document, result.record)
        reloaded = api.DetectionResult.from_json(blind.to_json())
        assert reloaded.recovered_bits == blind.recovered_bits
        assert reloaded.message_status == blind.message_status

    def test_wrong_format_tag_rejected(self):
        outcome = self._outcome()
        data = outcome.to_dict()
        data["format"] = "nope"
        with pytest.raises(api.RecordFormatError):
            api.DetectionResult.from_dict(data)

    def test_unknown_field_rejected(self):
        outcome = self._outcome()
        data = outcome.to_dict()
        data["surprise"] = 1
        with pytest.raises(api.RecordFormatError):
            api.DetectionResult.from_dict(data)
