"""Smoke tests: every example script must run to completion.

Examples are the public face of the library; each one asserts its own
scenario internally, so a clean exit is a meaningful end-to-end check.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert "OK" in completed.stdout


def test_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "job_agent.py", "digital_library.py",
            "figure1_reorganization.py", "traitor_tracing.py",
            "watermarking_service.py",
            "multi_tenant_service.py"} <= names
