"""Crash safety: atomic appends, reopen-after-crash recovery, pool heal.

The failure model (driven by :mod:`repro.faults`):

* **Torn writes** — a fault (or a real ``kill -9``) inside the append
  path must never leave an orphan record or dangling ledger block: the
  record/block pair is one SQLite transaction, so either both rows
  land or neither does.
* **Reopen recovery** — a database torn by *pre-atomic* code (orphan
  trailing row, corrupted trailing seal) recovers on open: the torn
  tail is quarantined — preserved, never deleted — and the remaining
  chain verifies.  Interior damage is tampering, not a crash: recovery
  reports ``chain-broken`` and touches nothing.
* **Worker death** — a process-pool chunk that dies or raises is
  retried once on a fresh pool, then serially in the parent, and the
  batch output stays bit-identical to an all-serial run.
"""

import os
import sqlite3
import subprocess
import sys

import pytest

from repro import faults
from repro.api import Pipeline
from repro.core.crypto import KeyedPRF
from repro.core.record import WatermarkRecord
from repro.datasets import bibliography
from repro.faults import FaultInjectedError, injected
from repro.registry import (
    MemoryBackend,
    RegistryError,
    RegistryRecord,
    RegistryUnavailableError,
    SQLiteBackend,
    WatermarkRegistry,
    hash_document,
    next_block,
)
from repro.registry.sqlite import BUSY_TIMEOUT_MS
from repro.xmlmodel import serialize

KEY = "crash-recovery-key"
SEALER = KeyedPRF(KEY)


def _watermark_record() -> WatermarkRecord:
    return WatermarkRecord(gamma=4, nbits=8, shape_name="book",
                           key_fingerprint="kf", queries=[])


def _registry_record(recipient: str = "alice",
                     doc: str = "<a/>") -> RegistryRecord:
    return RegistryRecord(
        recipient=recipient, record=_watermark_record(),
        document_hash=hash_document(doc), scheme_fingerprint="scheme-fp",
        key_fingerprint="key-fp", keying="recipient", issuer="tester",
        created_at="2026-08-08T00:00:00+00:00")


def _registry(backend) -> WatermarkRegistry:
    return WatermarkRegistry(backend, sealer=SEALER)


@pytest.fixture(autouse=True)
def clean_slate():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        return MemoryBackend()
    return SQLiteBackend(str(tmp_path / "reg.db"))


# ---------------------------------------------------------------------------
# Atomic appends under injected faults
# ---------------------------------------------------------------------------

class TestAtomicAppend:
    def test_torn_append_leaves_no_orphan(self, backend):
        registry = _registry(backend)
        registry.append(_registry_record("alice"))
        # memory raises the raw OSError; sqlite's _guarded maps the
        # storage-layer failure to registry-unavailable
        with injected("registry.append.torn", error="os"):
            with pytest.raises((OSError, RegistryUnavailableError)):
                registry.append(_registry_record("bob", "<b/>"))
        assert backend.record_count() == 1
        assert backend.block_count() == 1
        assert registry.verify_chain().intact

    def test_commit_fault_rolls_back_the_pair(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "reg.db"))
        registry = _registry(backend)
        registry.append(_registry_record("alice"))
        with injected("registry.sqlite.commit", error="sqlite"):
            with pytest.raises(RegistryError):
                registry.append(_registry_record("bob", "<b/>"))
        assert backend.record_count() == 1
        assert backend.block_count() == 1
        assert registry.verify_chain().intact

    def test_retry_after_fault_appends_cleanly(self, backend):
        registry = _registry(backend)
        entry = _registry_record("bob", "<b/>")
        with injected("registry.append.torn", error="os"):
            with pytest.raises((OSError, RegistryUnavailableError)):
                registry.append(entry)
        registry.append(entry)
        assert backend.record_count() == 1
        assert registry.verify_chain().intact

    def test_batched_append_is_all_or_nothing(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "reg.db"))
        registry = _registry(backend)
        registry.append(_registry_record("alice"))
        batch = [_registry_record(f"r{i}", f"<d{i}/>") for i in range(4)]
        with injected("registry.sqlite.commit", error="sqlite"):
            with pytest.raises(RegistryError):
                registry.append_many(batch)
        # the failed batch persisted *nothing* — this is what makes a
        # client retry after a 503 append-safe
        assert backend.record_count() == 1
        assert backend.block_count() == 1
        registry.append_many(batch)
        assert backend.record_count() == 5
        assert registry.verify_chain().intact

    def test_torn_fault_inside_batch_rolls_back_everything(self, backend):
        registry = _registry(backend)
        batch = [_registry_record(f"r{i}", f"<d{i}/>") for i in range(3)]
        with injected("registry.append.torn", error="os", after=1):
            with pytest.raises((OSError, RegistryError)):
                registry.append_many(batch)
        assert backend.record_count() == 0
        assert backend.block_count() == 0


# ---------------------------------------------------------------------------
# SQLite durability configuration
# ---------------------------------------------------------------------------

class TestDurabilityPragmas:
    def test_wal_and_busy_timeout(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "reg.db"))
        conn = backend._conn
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert conn.execute(
            "PRAGMA busy_timeout").fetchone()[0] == BUSY_TIMEOUT_MS

    def test_busy_timeout_override(self, tmp_path):
        backend = SQLiteBackend(str(tmp_path / "reg.db"),
                                busy_timeout_ms=123)
        assert backend._conn.execute(
            "PRAGMA busy_timeout").fetchone()[0] == 123

    def test_concurrent_open_same_file(self, tmp_path):
        # WAL allows a reader while a writer holds the file open.
        path = str(tmp_path / "reg.db")
        writer = _registry(SQLiteBackend(path))
        writer.append(_registry_record("alice"))
        reader = WatermarkRegistry.open(path)
        assert reader.backend.record_count() == 1
        reader.close()
        writer.close()


# ---------------------------------------------------------------------------
# kill -9 mid-append, then reopen
# ---------------------------------------------------------------------------

CRASH_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.core.crypto import KeyedPRF
from repro.core.record import WatermarkRecord
from repro.registry import (RegistryRecord, SQLiteBackend,
                            WatermarkRegistry, hash_document)

registry = WatermarkRegistry(SQLiteBackend({path!r}),
                             sealer=KeyedPRF({key!r}))
registry.append(RegistryRecord(
    recipient="doomed",
    record=WatermarkRecord(gamma=4, nbits=8, shape_name="book",
                           key_fingerprint="kf", queries=[]),
    document_hash=hash_document("<doomed/>"),
    scheme_fingerprint="scheme-fp", key_fingerprint="key-fp",
    keying="recipient", issuer="tester",
    created_at="2026-08-08T00:00:00+00:00"))
"""


class TestKillNineRecovery:
    @pytest.mark.parametrize("seam", ["registry.sqlite.commit",
                                      "registry.append.torn"])
    def test_process_killed_mid_append_recovers_verified(self, tmp_path,
                                                         seam):
        """os._exit(1) inside the append transaction == kill -9.

        The uncommitted transaction dies with the process; reopening
        runs recovery and finds a verifiable chain with *no* orphan —
        atomicity, not repair, is what saved it.
        """
        path = str(tmp_path / "reg.db")
        registry = _registry(SQLiteBackend(path))
        registry.append(_registry_record("alice"))
        registry.close()

        env = dict(os.environ, WMXML_FAULTS=f"{seam}=exit")
        proc = subprocess.run(
            [sys.executable, "-c",
             CRASH_SCRIPT.format(src=_SRC, path=path, key=KEY)],
            env=env, capture_output=True, text=True, timeout=60)
        assert proc.returncode == 1, proc.stderr

        reopened = WatermarkRegistry.open(path, sealer=SEALER)
        report = reopened.last_recovery
        assert report is not None and report.ok
        assert report.actions == []
        assert reopened.backend.record_count() == 1
        assert reopened.verify_chain().intact
        # and the survivor accepts new appends on the same chain
        reopened.append(_registry_record("bob", "<b/>"))
        assert reopened.verify_chain().intact
        reopened.close()


_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
_SRC = os.path.join(_ROOT, "src")


# ---------------------------------------------------------------------------
# Reopen recovery of pre-atomic (torn) databases
# ---------------------------------------------------------------------------

def _forge_seal(path: str, index: int) -> None:
    """Tamper the persisted seal of one ledger block, outside the API."""
    import json
    conn = sqlite3.connect(path)
    with conn:
        [payload] = conn.execute(
            "SELECT payload FROM ledger WHERE idx = ?", (index,)
        ).fetchone()
        block = json.loads(payload)
        block["seal"] = "forged"
        conn.execute("UPDATE ledger SET payload = ? WHERE idx = ?",
                     (json.dumps(block), index))
    conn.close()


def _torn_with_orphan_record(path: str) -> None:
    """A database only pre-atomic code could produce: record, no block."""
    registry = _registry(SQLiteBackend(path))
    registry.append(_registry_record("alice"))
    registry.append(_registry_record("bob", "<b/>"))
    registry.backend.append_record(_registry_record("orphan", "<o/>"))
    registry.close()


class TestReopenRecovery:
    def test_orphan_trailing_record_is_quarantined(self, tmp_path):
        path = str(tmp_path / "reg.db")
        _torn_with_orphan_record(path)
        registry = WatermarkRegistry.open(path, sealer=SEALER)
        report = registry.last_recovery
        assert report.ok
        assert len(report.actions) == 1
        assert report.actions[0]["kind"] == "record"
        assert "orphan trailing record" in report.actions[0]["reason"]
        assert registry.backend.record_count() == 2
        assert registry.verify_chain().intact
        # quarantined, not deleted: the artefact is preserved
        [kept] = registry.quarantined()
        assert kept["kind"] == "record"
        assert kept["payload"]["recipient"] == "orphan"
        registry.close()

    def test_orphan_trailing_block_is_quarantined(self, tmp_path):
        path = str(tmp_path / "reg.db")
        registry = _registry(SQLiteBackend(path))
        registry.append(_registry_record("alice"))
        orphan = next_block(registry.backend.last_block(),
                            _registry_record("ghost", "<g/>"), SEALER)
        registry.backend.append_block(orphan)
        registry.close()

        reopened = WatermarkRegistry.open(path, sealer=SEALER)
        report = reopened.last_recovery
        assert report.ok
        assert [a["kind"] for a in report.actions] == ["block"]
        assert reopened.backend.block_count() == 1
        assert reopened.verify_chain().intact
        reopened.close()

    def test_corrupted_trailing_seal_quarantines_the_pair(self, tmp_path):
        path = str(tmp_path / "reg.db")
        registry = _registry(SQLiteBackend(path))
        registry.append(_registry_record("alice"))
        with injected("ledger.seal", "corrupt"):
            registry.append(_registry_record("bob", "<b/>"))
        assert not registry.verify_chain().intact
        registry.close()

        reopened = WatermarkRegistry.open(path, sealer=SEALER)
        report = reopened.last_recovery
        assert report.ok
        assert [a["kind"] for a in report.actions] == ["block", "record"]
        assert reopened.backend.record_count() == 1
        assert reopened.backend.block_count() == 1
        assert reopened.verify_chain().intact
        assert len(reopened.quarantined()) == 2
        reopened.close()

    def test_interior_damage_reports_and_touches_nothing(self, tmp_path):
        """Mid-chain damage is tampering — recovery must preserve it."""
        path = str(tmp_path / "reg.db")
        registry = _registry(SQLiteBackend(path))
        for name in ("alice", "bob", "carol"):
            registry.append(_registry_record(name, f"<{name}/>"))
        registry.close()
        _forge_seal(path, index=1)  # tamper an *interior* block

        reopened = WatermarkRegistry.open(path, sealer=SEALER)
        report = reopened.last_recovery
        assert not report.ok
        assert report.actions == []
        assert report.verification is not None
        assert not report.verification.intact
        assert reopened.backend.record_count() == 3
        assert reopened.backend.block_count() == 3
        assert reopened.quarantined() == []
        reopened.close()

    def test_orphan_over_broken_prefix_is_not_quarantined(self, tmp_path):
        """The guard: a tail is only torn if the chain *before* it holds."""
        path = str(tmp_path / "reg.db")
        _torn_with_orphan_record(path)
        _forge_seal(path, index=0)
        reopened = WatermarkRegistry.open(path, sealer=SEALER)
        report = reopened.last_recovery
        assert not report.ok
        assert report.actions == []
        assert reopened.backend.record_count() == 3
        reopened.close()

    def test_counts_apart_by_more_than_one_is_not_a_crash(self, tmp_path):
        path = str(tmp_path / "reg.db")
        registry = _registry(SQLiteBackend(path))
        registry.append(_registry_record("alice"))
        registry.backend.append_record(_registry_record("o1", "<o1/>"))
        registry.backend.append_record(_registry_record("o2", "<o2/>"))
        registry.close()
        reopened = WatermarkRegistry.open(path, sealer=SEALER)
        assert not reopened.last_recovery.ok
        assert reopened.last_recovery.actions == []
        reopened.close()

    def test_recover_is_idempotent(self, tmp_path):
        path = str(tmp_path / "reg.db")
        _torn_with_orphan_record(path)
        registry = WatermarkRegistry.open(path, sealer=SEALER)
        first = registry.last_recovery
        assert first.ok and len(first.actions) == 1
        second = registry.recover()
        assert second.ok and second.actions == []
        assert len(registry.quarantined()) == 1
        registry.close()

    def test_memory_backend_recovers_identically(self):
        registry = _registry(MemoryBackend())
        registry.append(_registry_record("alice"))
        registry.backend.append_record(_registry_record("orphan", "<o/>"))
        report = registry.recover()
        assert report.ok
        assert [a["kind"] for a in report.actions] == ["record"]
        assert registry.verify_chain().intact
        [kept] = registry.quarantined()
        assert kept["kind"] == "record"

    def test_report_serializes(self, tmp_path):
        path = str(tmp_path / "reg.db")
        _torn_with_orphan_record(path)
        registry = WatermarkRegistry.open(path, sealer=SEALER)
        payload = registry.last_recovery.to_dict()
        assert payload["ok"] is True
        assert payload["records"] == 2 and payload["blocks"] == 2
        assert payload["verification"]["intact"] is True
        registry.close()


# ---------------------------------------------------------------------------
# CLI: wmxml ledger recover
# ---------------------------------------------------------------------------

class TestLedgerRecoverCommand:
    def test_recover_command_repairs_and_reports(self, tmp_path, capsys):
        from repro.cli import main
        path = str(tmp_path / "reg.db")
        _torn_with_orphan_record(path)
        # verify must *report* the torn registry, not silently repair it
        assert main(["ledger", "verify", "--registry", path,
                     "--key", KEY]) == 1
        capsys.readouterr()
        assert main(["ledger", "recover", "--registry", path,
                     "--key", KEY]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert "ledger verifiable: yes" in out
        assert main(["ledger", "verify", "--registry", path,
                     "--key", KEY]) == 0

    def test_recover_command_reports_interior_damage(self, tmp_path,
                                                     capsys):
        from repro.cli import main
        path = str(tmp_path / "reg.db")
        registry = _registry(SQLiteBackend(path))
        for name in ("alice", "bob", "carol"):
            registry.append(_registry_record(name, f"<{name}/>"))
        registry.close()
        _forge_seal(path, index=1)
        assert main(["ledger", "recover", "--registry", path,
                     "--key", KEY]) == 1
        err = capsys.readouterr().err
        assert "chain-broken" in err


# ---------------------------------------------------------------------------
# Process-pool per-chunk recovery
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def pool_pipeline():
    return Pipeline(bibliography.default_scheme(2), KEY)


@pytest.fixture(scope="module")
def pool_texts():
    return [
        serialize(bibliography.generate_document(
            bibliography.BibliographyConfig(books=10, editors=3,
                                            seed=900 + index)))
        for index in range(6)
    ]


class TestPoolChunkRecovery:
    def test_raising_chunk_recovers_to_serial_output(self, pool_pipeline,
                                                     pool_texts):
        serial = pool_pipeline.embed_many(pool_texts, "(c) pool")
        with injected("pool.chunk", "raise", scope="worker", times=1):
            pooled = pool_pipeline.embed_many(pool_texts, "(c) pool",
                                              processes=2)
        assert [serialize(r.document) for r in pooled] == \
            [serialize(r.document) for r in serial]

    def test_dying_worker_recovers_to_serial_output(self, pool_pipeline,
                                                    pool_texts):
        """mode=exit is the kill -9 of a pool worker: the pool breaks,
        the engine retries on a fresh pool, and — because every fresh
        worker inherits the armed fault and dies too — finishes the
        affected chunks serially in the (fault-immune) parent."""
        serial = pool_pipeline.embed_many(pool_texts, "(c) pool")
        with injected("pool.chunk", "exit", scope="worker"):
            pooled = pool_pipeline.embed_many(pool_texts, "(c) pool",
                                              processes=2)
        assert [serialize(r.document) for r in pooled] == \
            [serialize(r.document) for r in serial]

    def test_detect_many_survives_dying_workers(self, pool_pipeline,
                                                pool_texts):
        marked = pool_pipeline.embed_many(pool_texts, "(c) pool")
        items = [(r.document, r.record) for r in marked]
        serial = pool_pipeline.detect_many(items, expected="(c) pool")
        with injected("pool.chunk", "exit", scope="worker"):
            pooled = pool_pipeline.detect_many(items, expected="(c) pool",
                                               processes=2)
        assert all(r.detected for r in pooled)
        assert [r.to_dict() for r in pooled] == \
            [r.to_dict() for r in serial]

    def test_parent_process_is_immune_to_worker_scope(self, pool_pipeline,
                                                      pool_texts):
        with injected("pool.chunk", "raise", scope="worker"):
            serial = pool_pipeline.embed_many(pool_texts[:2], "(c) pool")
        assert len(serial) == 2
