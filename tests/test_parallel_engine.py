"""The parallel batch engine: picklability + pooled/serial equivalence.

The worker-sharded ``embed_many``/``detect_many`` engine rests on two
contracts this module locks down:

* **Picklability** — a compiled :class:`~repro.api.Pipeline` (and the
  result objects it produces) survives ``pickle.dumps/loads`` with
  embed/detect outputs *bit-identical* to the original's, even though
  the hot-path state it carries (HMAC key schedule, digest memos,
  plug-in caches) cannot itself be pickled and is lazily rebuilt.
* **Pooled == serial** — sharding a batch over worker processes changes
  throughput, never output: marked documents, records, and every
  detection vote match the serial run exactly, for every strategy, and
  the golden vectors hold through a ``processes=2`` batch.
"""

import hashlib
import json
import pickle

import pytest

from repro.api import Pipeline, WmXMLSystem
from repro.core import Watermark
from repro.core.crypto import KeyedPRF
from repro.datasets import bibliography, library
from repro.errors import WmXMLError
from repro.xmlmodel import parse, serialize
from repro.xmlmodel.errors import XMLSyntaxError

KEY = "parallel-engine-key"
MESSAGE = "(c) pool"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def pipeline():
    return Pipeline(bibliography.default_scheme(2), KEY)


@pytest.fixture(scope="module")
def batch_texts():
    return [
        serialize(bibliography.generate_document(
            bibliography.BibliographyConfig(books=12, editors=3,
                                            seed=500 + index)))
        for index in range(8)
    ]


@pytest.fixture(scope="module")
def marked(pipeline, batch_texts):
    """Serial reference embedding of the fixture batch."""
    return pipeline.embed_many(batch_texts, MESSAGE)


class TestPicklability:
    def test_keyed_prf_round_trip(self):
        prf = KeyedPRF(KEY)
        prf.digest("warm", "a")  # populate the memo before pickling
        clone = pickle.loads(pickle.dumps(prf))
        assert clone.fingerprint() == prf.fingerprint()
        assert clone.digest("warm", "a") == prf.digest("warm", "a")
        assert clone.selects("id-1", 3) == prf.selects("id-1", 3)

    def test_prf_pickle_is_lean(self):
        prf = KeyedPRF(KEY)
        for index in range(500):
            prf.digest("fill", str(index))
        assert len(pickle.dumps(prf)) < 200  # memos must not travel

    def test_warm_pipeline_round_trip_is_bit_identical(
            self, pipeline, batch_texts, marked):
        # ``pipeline`` is warm: PRF memo + plug-in caches populated by
        # the ``marked`` fixture.  The clone must reproduce its output
        # exactly from rebuilt state.
        clone = pickle.loads(pickle.dumps(pipeline))
        cloned = clone.embed_many(batch_texts, MESSAGE)
        assert ([serialize(item.document) for item in cloned]
                == [serialize(item.document) for item in marked])
        assert ([item.record.to_dict() for item in cloned]
                == [item.record.to_dict() for item in marked])

    def test_detection_matches_after_pipeline_round_trip(
            self, pipeline, marked):
        clone = pickle.loads(pickle.dumps(pipeline))
        result = marked[0]
        original = pipeline.detect(result.document, result.record,
                                   expected=MESSAGE)
        cloned = clone.detect(result.document, result.record,
                              expected=MESSAGE)
        assert cloned.to_dict() == original.to_dict()

    def test_embedding_result_round_trip(self, marked):
        result = marked[0]
        clone = pickle.loads(pickle.dumps(result))
        assert serialize(clone.document) == serialize(result.document)
        assert clone.record.to_dict() == result.record.to_dict()
        assert clone.stats == result.stats

    def test_detection_result_round_trip(self, pipeline, marked):
        result = marked[0]
        outcome = pipeline.detect(result.document, result.record,
                                  expected=MESSAGE)
        clone = pickle.loads(pickle.dumps(outcome))
        assert clone.to_dict() == outcome.to_dict()

    def test_record_pickle_drops_memoised_cache_keys(self, marked):
        record = marked[0].record
        for query in record.queries:
            query.algorithm_cache_key  # warm the cached_property
        clone = pickle.loads(pickle.dumps(record))
        assert "algorithm_cache_key" not in clone.queries[0].__dict__
        assert clone.to_dict() == record.to_dict()

    def test_fingerprint_is_content_keyed(self, pipeline):
        twin = Pipeline(bibliography.default_scheme(2), KEY)
        other_key = Pipeline(bibliography.default_scheme(2), "other")
        other_gamma = Pipeline(bibliography.default_scheme(3), KEY)
        other_alpha = Pipeline(bibliography.default_scheme(2), KEY,
                               alpha=0.01)
        assert twin.fingerprint == pipeline.fingerprint
        assert other_key.fingerprint != pipeline.fingerprint
        assert other_gamma.fingerprint != pipeline.fingerprint
        assert other_alpha.fingerprint != pipeline.fingerprint


class TestPooledEmbed:
    def test_pooled_embed_matches_serial(self, pipeline, batch_texts,
                                         marked):
        pooled = pipeline.embed_many(batch_texts, MESSAGE, processes=2)
        assert ([serialize(item.document) for item in pooled]
                == [serialize(item.document) for item in marked])
        assert ([item.record.to_dict() for item in pooled]
                == [item.record.to_dict() for item in marked])

    def test_pooled_xml_output_matches_serial_serialisation(
            self, pipeline, batch_texts, marked):
        pooled = pipeline.embed_many(batch_texts, MESSAGE, processes=2,
                                     output="xml")
        assert all(item.document is None for item in pooled)
        assert ([item.xml for item in pooled]
                == [serialize(item.document) for item in marked])
        # to_document() reconstructs an equivalent tree on demand.
        assert (serialize(pooled[0].to_document())
                == serialize(marked[0].document))

    def test_serial_xml_output_matches_pooled(self, pipeline, batch_texts,
                                              marked):
        serial = pipeline.embed_many(batch_texts, MESSAGE, output="xml")
        assert ([item.xml for item in serial]
                == [serialize(item.document) for item in marked])

    def test_pooled_accepts_parsed_documents(self, pipeline, batch_texts,
                                             marked):
        documents = [parse(text, strip_whitespace=True)
                     for text in batch_texts]
        pooled = pipeline.embed_many(documents, MESSAGE, processes=2)
        assert ([serialize(item.document) for item in pooled]
                == [serialize(item.document) for item in marked])
        # Caller documents stay untouched (the workers embed into
        # their own pickled copies).
        assert [serialize(document) for document in documents] == batch_texts

    def test_in_place_documents_bypass_the_pool(self, pipeline,
                                                batch_texts):
        documents = [parse(text, strip_whitespace=True)
                     for text in batch_texts[:3]]
        pipeline.embed_many(documents, MESSAGE, in_place=True, processes=2)
        # in_place promises caller-visible mutation, which only the
        # serial path can honour — the documents must carry the mark.
        assert ([serialize(document) for document in documents]
                != batch_texts[:3])

    def test_syntax_error_propagates_from_workers(self, pipeline,
                                                  batch_texts):
        bad = batch_texts[:3] + ["<oops>"]
        with pytest.raises(XMLSyntaxError):
            pipeline.embed_many(bad, MESSAGE, processes=2)

    def test_unknown_output_rejected_before_dispatch(self, pipeline,
                                                     batch_texts):
        with pytest.raises(WmXMLError):
            pipeline.embed_many(batch_texts, MESSAGE, processes=2,
                                output="tree")

    def test_single_document_batch_stays_serial(self, pipeline,
                                                batch_texts, marked):
        results = pipeline.embed_many(batch_texts[:1], MESSAGE, processes=8)
        assert (serialize(results[0].document)
                == serialize(marked[0].document))


class TestPooledDetect:
    @pytest.fixture(scope="class")
    def items(self, marked):
        return [(serialize(result.document), result.record)
                for result in marked]

    @pytest.mark.parametrize("strategy", ["scan", "indexed", "auto"])
    def test_pooled_votes_match_serial_for_every_strategy(
            self, pipeline, items, strategy):
        serial = pipeline.detect_many(items, expected=MESSAGE,
                                      strategy=strategy)
        pooled = pipeline.detect_many(items, expected=MESSAGE,
                                      strategy=strategy, processes=2)
        assert ([outcome.to_dict() for outcome in pooled]
                == [outcome.to_dict() for outcome in serial])
        assert all(outcome.detected for outcome in pooled)

    def test_blind_detection_matches_serial(self, pipeline, items):
        serial = pipeline.detect_many(items)
        pooled = pipeline.detect_many(items, processes=2)
        assert ([outcome.to_dict() for outcome in pooled]
                == [outcome.to_dict() for outcome in serial])

    def test_pooled_accepts_parsed_documents(self, pipeline, marked):
        items = [(result.document, result.record) for result in marked]
        serial = pipeline.detect_many(items, expected=MESSAGE)
        pooled = pipeline.detect_many(items, expected=MESSAGE, processes=2)
        assert ([outcome.to_dict() for outcome in pooled]
                == [outcome.to_dict() for outcome in serial])

    def test_unknown_strategy_rejected_before_dispatch(self, pipeline,
                                                       items):
        with pytest.raises(WmXMLError):
            pipeline.detect_many(items, strategy="quantum", processes=2)

    def test_shared_record_batch_matches_serial(self, pipeline, marked):
        # The piracy-hunting shape: many suspected copies of ONE marked
        # document, judged by one record object.  Pooled votes must
        # match serial exactly even though the chunk tasks ship the
        # record once per chunk instead of once per item.
        reference = marked[0]
        copies = [(serialize(reference.document), reference.record)
                  for _ in range(6)]
        serial = pipeline.detect_many(copies, expected=MESSAGE)
        pooled = pipeline.detect_many(copies, expected=MESSAGE, processes=2)
        assert ([outcome.to_dict() for outcome in pooled]
                == [outcome.to_dict() for outcome in serial])
        assert all(outcome.detected for outcome in pooled)

    def test_shared_record_ships_once_per_chunk(self, pipeline, marked,
                                                monkeypatch):
        # Inspect the actual chunk tasks: one record object across the
        # batch must dispatch as ("shared", record), per-item records
        # as ("each", [...]) — run in-process so payloads are visible.
        from repro import parallel

        captured = []

        def capture_and_run(processes, func, tasks):
            tasks = list(tasks)
            captured.extend(tasks)
            return [func(task) for task in tasks]

        monkeypatch.setattr(parallel, "map_recovering", capture_and_run)

        reference = marked[0]
        copies = [(serialize(reference.document), reference.record)
                  for _ in range(6)]
        serial = pipeline.detect_many(copies, expected=MESSAGE)
        pooled = pipeline.detect_many(copies, expected=MESSAGE, processes=2)
        assert captured, "batch did not go through the pooled path"
        modes = {task[3][0] for task in captured}
        assert modes == {"shared"}
        assert all(task[3][1] is reference.record for task in captured)
        assert ([outcome.to_dict() for outcome in pooled]
                == [outcome.to_dict() for outcome in serial])

        captured.clear()
        # Equal-but-*distinct* records (the same record.json loaded per
        # suspected copy) must also collapse to shared: pickle's memo
        # already dedupes one identical object, so equality is where
        # the payload saving actually lives.
        from repro.core.record import WatermarkRecord

        reloaded = [(serialize(reference.document),
                     WatermarkRecord.from_dict(reference.record.to_dict()))
                    for _ in range(6)]
        pooled = pipeline.detect_many(reloaded, expected=MESSAGE,
                                      processes=2)
        serial = pipeline.detect_many(reloaded, expected=MESSAGE)
        assert {task[3][0] for task in captured} == {"shared"}
        assert ([outcome.to_dict() for outcome in pooled]
                == [outcome.to_dict() for outcome in serial])

        captured.clear()
        items = [(serialize(result.document), result.record)
                 for result in marked]
        pooled = pipeline.detect_many(items, expected=MESSAGE, processes=2)
        serial = pipeline.detect_many(items, expected=MESSAGE)
        assert {task[3][0] for task in captured} == {"each"}
        # Record chunks stay aligned with their document chunks.
        flattened = [record for task in captured for record in task[3][1]]
        assert flattened == [record for _, record in items]
        assert ([outcome.to_dict() for outcome in pooled]
                == [outcome.to_dict() for outcome in serial])

    def test_rewriting_shape_ships_to_workers(self, pipeline, marked):
        # Reorganise the marked documents into another shape; pooled
        # detection must rewrite the stored queries for it, exactly as
        # the serial engine does (Figure 2 of the paper).
        from repro.rewriting import reorganize

        target = bibliography.publisher_shape()
        items = [
            (serialize(reorganize(result.document, pipeline.shape,
                                  target).document), result.record)
            for result in marked[:4]
        ]
        serial = pipeline.detect_many(items, expected=MESSAGE, shape=target)
        pooled = pipeline.detect_many(items, expected=MESSAGE, shape=target,
                                      processes=2)
        assert ([outcome.to_dict() for outcome in pooled]
                == [outcome.to_dict() for outcome in serial])
        assert all(outcome.detected for outcome in pooled)


class TestGoldenVectorsThroughThePool:
    """The PR 1 golden shas must survive a ``processes=2`` batch."""

    GOLDEN_BIB_MARKED = (
        "e4be42bf4221ef09cf9fcfd618cb373c773758bea13c6b4206fce51d229e3833")
    GOLDEN_BIB_RECORD = (
        "f560a2be927e49a15d9bf452b13fe5e3f5031a72147a446c4d96c48bf0ce303d")

    def test_bibliography_golden_vectors(self):
        document = bibliography.generate_document(
            bibliography.BibliographyConfig(books=60, editors=6, seed=1234))
        text = serialize(document)
        pipeline = Pipeline(bibliography.default_scheme(2), "golden-key-bib")
        watermark = Watermark.from_message("(c) golden")
        pooled = pipeline.embed_many([text, text], watermark, processes=2)
        for result in pooled:
            assert (_sha256(serialize(result.document))
                    == self.GOLDEN_BIB_MARKED)
            record_json = json.dumps(result.record.to_dict(),
                                     sort_keys=True)
            assert _sha256(record_json) == self.GOLDEN_BIB_RECORD
        outcomes = pipeline.detect_many(
            [(serialize(result.document), result.record)
             for result in pooled],
            expected=watermark, processes=2)
        for outcome in outcomes:
            assert outcome.detected
            assert outcome.votes_total == 87
            assert outcome.votes_matching == 87
            assert outcome.queries_answered == 64

    def test_library_profile_through_the_pool(self):
        document = library.generate_document(
            library.LibraryConfig(items=60, seed=99))
        text = serialize(document)
        pipeline = Pipeline(library.default_scheme(3), "golden-key-lib")
        watermark = Watermark.from_message("GOLD")
        serial = pipeline.embed_many([text, text], watermark)
        pooled = pipeline.embed_many([text, text], watermark, processes=2)
        assert ([serialize(item.document) for item in pooled]
                == [serialize(item.document) for item in serial])


class TestSystemFacade:
    def test_system_batch_apis_forward_processes_and_output(self):
        system = WmXMLSystem(KEY)
        system.register("bib", bibliography.default_scheme(2))
        texts = [
            serialize(bibliography.generate_document(
                bibliography.BibliographyConfig(books=12, editors=3,
                                                seed=800 + index)))
            for index in range(4)
        ]
        serial = system.embed_many("bib", texts, MESSAGE, output="xml")
        pooled = system.embed_many("bib", texts, MESSAGE, processes=2,
                                   output="xml")
        assert [item.xml for item in pooled] == [item.xml for item in serial]
        items = [(item.xml, item.record) for item in serial]
        serial_outcomes = system.detect_many("bib", items, expected=MESSAGE,
                                             strategy="scan")
        pooled_outcomes = system.detect_many("bib", items, expected=MESSAGE,
                                             strategy="scan", processes=2)
        assert ([outcome.to_dict() for outcome in pooled_outcomes]
                == [outcome.to_dict() for outcome in serial_outcomes])
