"""Scan vs indexed detection: equal votes under every attack.

ROADMAP open item: the indexed executor may only become the preferred
path once its semantics are proven equal to per-query XPath scanning on
*attacked* documents.  This suite runs both strategies over every
attack class in :mod:`repro.attacks` on the E9 bibliography and asserts
vote-for-vote equality — the proof the pipeline's ``strategy="auto"``
promotion rests on.
"""

import pytest

import repro.attacks as attacks_module
from repro import api
from repro.attacks import Attack
from repro.datasets import bibliography

E9_CONFIG = bibliography.BibliographyConfig(books=200, editors=15, seed=42)
KEY = "strategy-equivalence-key"
MESSAGE = "(c) WmXML"


@pytest.fixture(scope="module")
def embedded():
    scheme = bibliography.default_scheme(2)
    pipeline = api.Pipeline(scheme, KEY)
    document = bibliography.generate_document(E9_CONFIG)
    result = pipeline.embed(document, MESSAGE)
    return pipeline, result


def _collusion_copies():
    """Two fingerprinted copies of the same document (aligned trees)."""
    document = bibliography.generate_document(E9_CONFIG)
    scheme = bibliography.default_scheme(2)
    return [
        api.Pipeline(scheme, f"colluder-{tag}").embed(document, MESSAGE)
        .document
        for tag in ("a", "b")
    ]


#: attack-name -> (build attack, shape the attacked document has).
#: Shapes: every structural attack here leaves the book-centric
#: organisation intact except "reorganize", which detection must answer
#: through the publisher-centric shape (query rewriting).
ATTACK_CASES = {
    "ValueAlterationAttack":
        (lambda: attacks_module.ValueAlterationAttack(0.2, seed=7), None),
    "NodeDeletionAttack":
        (lambda: attacks_module.NodeDeletionAttack(0.3, seed=7), None),
    "NodeInsertionAttack":
        (lambda: attacks_module.NodeInsertionAttack(0.3, seed=7), None),
    "ReductionAttack":
        (lambda: attacks_module.ReductionAttack(0.5, seed=7), None),
    "SiblingShuffleAttack":
        (lambda: attacks_module.SiblingShuffleAttack(seed=7), None),
    "ReorganizationAttack":
        (lambda: attacks_module.ReorganizationAttack(
            bibliography.book_shape(), bibliography.publisher_shape()),
         bibliography.publisher_shape),
    "RedundancyUnificationAttack":
        (lambda: attacks_module.RedundancyUnificationAttack(
            bibliography.semantic_fd(), strategy="majority", seed=7), None),
    "CollusionAttack":
        (lambda: attacks_module.CollusionAttack(
            _collusion_copies(), strategy="random", seed=7), None),
    "CompositeAttack":
        (lambda: attacks_module.CompositeAttack([
            attacks_module.ValueAlterationAttack(0.1, seed=7),
            attacks_module.SiblingShuffleAttack(seed=7),
            attacks_module.ReductionAttack(0.7, seed=7),
        ]), None),
}


def test_every_exported_attack_class_is_covered():
    """A new attack must be added to this equivalence matrix."""
    exported = {
        name for name in attacks_module.__all__
        if isinstance(getattr(attacks_module, name), type)
        and issubclass(getattr(attacks_module, name), Attack)
        and getattr(attacks_module, name) is not Attack
    }
    assert exported == set(ATTACK_CASES)


@pytest.mark.parametrize("attack_name", sorted(ATTACK_CASES))
def test_scan_and_indexed_agree_vote_for_vote(embedded, attack_name):
    pipeline, result = embedded
    build_attack, shape_factory = ATTACK_CASES[attack_name]
    attacked = build_attack().apply(result.document).document
    shape = shape_factory() if shape_factory else None

    scan = pipeline.detect(attacked, result.record, expected=MESSAGE,
                           shape=shape, strategy="scan")
    indexed = pipeline.detect(attacked, result.record, expected=MESSAGE,
                              shape=shape, strategy="indexed")

    assert indexed.votes_total == scan.votes_total
    assert indexed.votes_matching == scan.votes_matching
    assert indexed.queries_answered == scan.queries_answered
    assert indexed.queries_rejected == scan.queries_rejected
    assert indexed.p_value == scan.p_value
    assert indexed.detected == scan.detected
    assert indexed.recovered_bits == scan.recovered_bits


@pytest.mark.parametrize("attack_name", sorted(ATTACK_CASES))
def test_auto_strategy_matches_both(embedded, attack_name):
    pipeline, result = embedded
    build_attack, shape_factory = ATTACK_CASES[attack_name]
    attacked = build_attack().apply(result.document).document
    shape = shape_factory() if shape_factory else None

    auto = pipeline.detect(attacked, result.record, expected=MESSAGE,
                           shape=shape, strategy="auto")
    scan = pipeline.detect(attacked, result.record, expected=MESSAGE,
                           shape=shape, strategy="scan")
    assert auto.to_dict() == scan.to_dict()
