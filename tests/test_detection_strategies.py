"""Scan vs indexed detection: equal votes under every attack, every profile.

Closed ROADMAP item: ``strategy="auto"`` may only drop its query-count
heuristic and always run the indexed executor once indexed/scan
semantics are proven equal on *attacked* documents for every dataset
profile.  This suite runs both strategies over every attack class in
:mod:`repro.attacks` on the bibliography, jobs and library profiles and
asserts vote-for-vote equality — the proof ``auto``'s promotion to
always-indexed rests on.
"""

import pytest

import repro.attacks as attacks_module
from repro import api
from repro.attacks import Attack
from repro.datasets import bibliography, jobs, library

KEY = "strategy-equivalence-key"
MESSAGE = "(c) WmXML"


class ProfileCase:
    """One dataset profile: generator, scheme, shapes, and its FD."""

    def __init__(self, name, generate, default_scheme, source_shape,
                 reorganized_shape, fd):
        self.name = name
        self.generate = generate
        self.default_scheme = default_scheme
        self.source_shape = source_shape
        self.reorganized_shape = reorganized_shape
        self.fd = fd


PROFILE_CASES = {
    "bibliography": ProfileCase(
        "bibliography",
        lambda: bibliography.generate_document(
            bibliography.BibliographyConfig(books=200, editors=15, seed=42)),
        lambda: bibliography.default_scheme(2),
        bibliography.book_shape,
        bibliography.publisher_shape,
        bibliography.semantic_fd,
    ),
    "jobs": ProfileCase(
        "jobs",
        lambda: jobs.generate_document(jobs.JobsConfig(jobs=150, seed=42)),
        lambda: jobs.default_scheme(2),
        jobs.listing_shape,
        jobs.by_company_shape,
        lambda: jobs.semantic_fds()[0],
    ),
    "library": ProfileCase(
        "library",
        lambda: library.generate_document(
            library.LibraryConfig(items=120, seed=42)),
        lambda: library.default_scheme(2),
        library.catalogue_shape,
        library.by_category_shape,
        library.semantic_fd,
    ),
}


@pytest.fixture(scope="module", params=sorted(PROFILE_CASES))
def embedded(request):
    case = PROFILE_CASES[request.param]
    pipeline = api.Pipeline(case.default_scheme(), KEY)
    result = pipeline.embed(case.generate(), MESSAGE)
    return case, pipeline, result


def _collusion_copies(case):
    """Two fingerprinted copies of the same document (aligned trees)."""
    document = case.generate()
    scheme = case.default_scheme()
    return [
        api.Pipeline(scheme, f"colluder-{tag}").embed(document, MESSAGE)
        .document
        for tag in ("a", "b")
    ]


#: attack-name -> build(case) -> (attack, shape the attacked document
#: has).  Every structural attack leaves the source organisation intact
#: except "reorganize", which detection must answer through the
#: profile's alternative shape (query rewriting).
ATTACK_CASES = {
    "ValueAlterationAttack":
        lambda case: (attacks_module.ValueAlterationAttack(0.2, seed=7),
                      None),
    "NodeDeletionAttack":
        lambda case: (attacks_module.NodeDeletionAttack(0.3, seed=7), None),
    "NodeInsertionAttack":
        lambda case: (attacks_module.NodeInsertionAttack(0.3, seed=7), None),
    "ReductionAttack":
        lambda case: (attacks_module.ReductionAttack(0.5, seed=7), None),
    "SiblingShuffleAttack":
        lambda case: (attacks_module.SiblingShuffleAttack(seed=7), None),
    "ReorganizationAttack":
        lambda case: (attacks_module.ReorganizationAttack(
            case.source_shape(), case.reorganized_shape()),
            case.reorganized_shape),
    "RedundancyUnificationAttack":
        lambda case: (attacks_module.RedundancyUnificationAttack(
            case.fd(), strategy="majority", seed=7), None),
    "CollusionAttack":
        lambda case: (attacks_module.CollusionAttack(
            _collusion_copies(case), strategy="random", seed=7), None),
    "CompositeAttack":
        lambda case: (attacks_module.CompositeAttack([
            attacks_module.ValueAlterationAttack(0.1, seed=7),
            attacks_module.SiblingShuffleAttack(seed=7),
            attacks_module.ReductionAttack(0.7, seed=7),
        ]), None),
}


def test_every_exported_attack_class_is_covered():
    """A new attack must be added to this equivalence matrix."""
    exported = {
        name for name in attacks_module.__all__
        if isinstance(getattr(attacks_module, name), type)
        and issubclass(getattr(attacks_module, name), Attack)
        and getattr(attacks_module, name) is not Attack
    }
    assert exported == set(ATTACK_CASES)


def _attacked(embedded, attack_name):
    case, pipeline, result = embedded
    attack, shape_factory = ATTACK_CASES[attack_name](case)
    attacked = attack.apply(result.document).document
    shape = shape_factory() if shape_factory else None
    return pipeline, result, attacked, shape


@pytest.mark.parametrize("attack_name", sorted(ATTACK_CASES))
def test_scan_and_indexed_agree_vote_for_vote(embedded, attack_name):
    pipeline, result, attacked, shape = _attacked(embedded, attack_name)

    scan = pipeline.detect(attacked, result.record, expected=MESSAGE,
                           shape=shape, strategy="scan")
    indexed = pipeline.detect(attacked, result.record, expected=MESSAGE,
                              shape=shape, strategy="indexed")

    assert indexed.votes_total == scan.votes_total
    assert indexed.votes_matching == scan.votes_matching
    assert indexed.queries_answered == scan.queries_answered
    assert indexed.queries_rejected == scan.queries_rejected
    assert indexed.p_value == scan.p_value
    assert indexed.detected == scan.detected
    assert indexed.recovered_bits == scan.recovered_bits


@pytest.mark.parametrize("attack_name", sorted(ATTACK_CASES))
def test_auto_strategy_matches_both(embedded, attack_name):
    pipeline, result, attacked, shape = _attacked(embedded, attack_name)

    auto = pipeline.detect(attacked, result.record, expected=MESSAGE,
                           shape=shape, strategy="auto")
    scan = pipeline.detect(attacked, result.record, expected=MESSAGE,
                           shape=shape, strategy="scan")
    assert auto.to_dict() == scan.to_dict()


def test_auto_always_runs_indexed():
    """The query-count heuristic is gone: auto == indexed, always."""
    from repro.api.pipeline import _resolve_strategy

    assert _resolve_strategy("auto") is True
    assert _resolve_strategy("indexed") is True
    assert _resolve_strategy("scan") is False
    assert not hasattr(
        __import__("repro.api.pipeline", fromlist=["pipeline"]),
        "AUTO_INDEXED_MIN_QUERIES")
