"""Tests for the full-report generator (repro.harness.report)."""

from repro.harness import ExperimentConfig, render_report, run_all, write_report
from repro.harness.report import ORDER

TINY = ExperimentConfig(books=25, editors=5, seed=3)


class TestRunAll:
    def test_runs_every_experiment_in_order(self):
        progress: list[str] = []
        tables = run_all(TINY, progress=progress.append)
        assert len(tables) == len(ORDER)
        assert len(progress) == len(ORDER)
        assert progress[0].startswith("running e1")

    def test_tables_carry_config_note(self):
        tables = run_all(TINY)
        for table in tables:
            assert any("books=25" in note for note in table.notes)


class TestRendering:
    def test_report_contains_all_titles(self):
        tables = run_all(TINY)
        text = render_report(tables)
        assert "WmXML experiment report" in text
        assert "E1 (Figure 1)" in text
        assert "E10: false-positive" in text

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.txt"
        text = write_report(str(path), TINY)
        assert path.read_text(encoding="utf-8") == text
        assert "E5 (attack A)" in text
