"""repro.faults — the fault-injection machinery itself.

Before any seam is hardened, the injector has to be trustworthy:
deterministic (same spec, same firing pattern), self-disarming
(``times=N``), refusing typos (unregistered points), armable from the
environment exactly the way the chaos-smoke CI job arms a daemon
subprocess, and **zero-overhead disarmed** — the hot paths pay one
falsy dict check.
"""

import os
import sqlite3

import pytest

from repro import faults
from repro.faults import (
    FaultInjectedError,
    FaultSpec,
    arm,
    arm_from_env,
    armed,
    disarm,
    fault_point,
    injected,
)

POINT = "service.dispatch"


@pytest.fixture(autouse=True)
def clean_slate():
    disarm()
    yield
    disarm()


class TestDisarmedPath:
    def test_disarmed_is_identity(self):
        assert fault_point(POINT) is None
        assert fault_point(POINT, value="v") == "v"

    def test_unarmed_point_passes_through_while_another_is_armed(self):
        arm("pool.chunk")
        assert fault_point(POINT, value=7) == 7

    def test_registry_lists_every_seam(self):
        points = faults.fault_points()
        for name in ("service.dispatch", "service.response",
                     "pool.chunk", "registry.sqlite.commit",
                     "registry.sqlite.read", "registry.append.torn",
                     "ledger.seal"):
            assert name in points
            assert points[name]


class TestArming:
    def test_unregistered_point_is_refused(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            arm("no.such.seam")

    def test_unknown_mode_is_refused(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            arm(POINT, "explode")

    def test_raise_default_error(self):
        arm(POINT)
        with pytest.raises(FaultInjectedError) as excinfo:
            fault_point(POINT)
        assert excinfo.value.code == "fault-injected"
        assert POINT in str(excinfo.value)

    def test_raise_named_error_kinds(self):
        arm(POINT, error="sqlite")
        with pytest.raises(sqlite3.OperationalError):
            fault_point(POINT)
        arm(POINT, error="os")
        with pytest.raises(OSError):
            fault_point(POINT)

    def test_raise_exception_instance(self):
        boom = RuntimeError("custom")
        arm(POINT, error=boom)
        with pytest.raises(RuntimeError) as excinfo:
            fault_point(POINT)
        assert excinfo.value is boom

    def test_unknown_error_kind_is_refused(self):
        arm(POINT, error="nope")
        with pytest.raises(ValueError, match="unknown fault error kind"):
            fault_point(POINT)

    def test_injected_context_manager_disarms_on_exit(self):
        with injected(POINT):
            assert POINT in armed()
            with pytest.raises(FaultInjectedError):
                fault_point(POINT)
        assert POINT not in armed()
        assert fault_point(POINT) is None

    def test_disarm_single_point(self):
        arm(POINT)
        arm("pool.chunk")
        disarm(POINT)
        assert POINT not in armed()
        assert "pool.chunk" in armed()


class TestDeterminism:
    def test_times_caps_firings(self):
        arm(POINT, times=2)
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                fault_point(POINT)
        # third and later hits pass through — the spec disarmed itself
        assert fault_point(POINT, value=1) == 1
        assert fault_point(POINT, value=2) == 2

    def test_after_skips_leading_hits(self):
        arm(POINT, after=2, times=1)
        assert fault_point(POINT, value="a") == "a"
        assert fault_point(POINT, value="b") == "b"
        with pytest.raises(FaultInjectedError):
            fault_point(POINT)
        assert fault_point(POINT, value="c") == "c"

    def test_probabilistic_firing_replays_identically(self):
        def pattern():
            spec = FaultSpec(point=POINT, p=0.5, seed=99)
            return [spec.should_fire() for _ in range(50)]

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_corrupt_mode_flips_value_deterministically(self):
        arm(POINT, "corrupt")
        assert fault_point(POINT, value="abc0") == "abc1"
        arm(POINT, "corrupt")
        assert fault_point(POINT, value=b"\x00\x02") == b"\x00\x03"

    def test_corrupt_custom_corruptor(self):
        arm(POINT, "corrupt", corrupt=lambda v: v.upper())
        assert fault_point(POINT, value="seal") == "SEAL"

    def test_delay_mode_returns_value(self):
        arm(POINT, "delay", ms=1)
        assert fault_point(POINT, value="kept") == "kept"


class TestWorkerScope:
    def test_worker_scope_never_fires_in_owner_process(self):
        arm(POINT, scope="worker", times=1)
        for _ in range(3):
            assert fault_point(POINT, value="ok") == "ok"

    def test_worker_scope_fires_in_a_forked_child(self):
        spec = arm(POINT, scope="worker")
        # simulate the fork: the child sees a different pid than the
        # spec's owner
        spec._owner_pid = os.getpid() + 1
        with pytest.raises(FaultInjectedError):
            fault_point(POINT)

    def test_unknown_scope_is_refused(self):
        with pytest.raises(ValueError, match="unknown fault scope"):
            arm(POINT, scope="everywhere")


class TestEnvArming:
    def test_single_clause(self):
        [spec] = arm_from_env(f"{POINT}=raise:times=1:error=os")
        assert spec.point == POINT
        assert spec.times == 1 and spec.error == "os"
        with pytest.raises(OSError):
            fault_point(POINT)

    def test_multiple_clauses(self):
        specs = arm_from_env(
            "pool.chunk=exit:times=1:scope=worker,"
            "service.dispatch=delay:ms=5")
        assert {s.point for s in specs} == {"pool.chunk",
                                            "service.dispatch"}
        assert armed()["pool.chunk"].mode == "exit"
        assert armed()["pool.chunk"].scope == "worker"
        assert armed()["service.dispatch"].ms == 5.0

    def test_empty_and_missing_env(self, monkeypatch):
        monkeypatch.delenv(faults.FAULTS_ENV, raising=False)
        assert arm_from_env() == []
        assert arm_from_env("") == []
        assert arm_from_env(" , ") == []

    def test_reads_environment_variable(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV,
                           "ledger.seal=corrupt")
        [spec] = arm_from_env()
        assert spec.point == "ledger.seal" and spec.mode == "corrupt"

    def test_malformed_clause_is_refused(self):
        with pytest.raises(ValueError, match="malformed"):
            arm_from_env("pool.chunk")
        with pytest.raises(ValueError, match="malformed fault option"):
            arm_from_env("pool.chunk=raise:times")
        with pytest.raises(ValueError, match="unknown fault option"):
            arm_from_env("pool.chunk=raise:bogus=1")
