"""Direct unit coverage for the XPath value model and result dataclasses."""

import math

import pytest

from repro.core.decoder import DetectionResult
from repro.core.encoder import EmbeddingStats
from repro.xmlmodel import Element, parse
from repro.xpath import AttributeNode, XPathTypeError
from repro.xpath.values import (
    compare,
    format_number,
    node_string_value,
    to_boolean,
    to_number,
    to_string,
    unique_nodes,
)


class TestConversions:
    def test_to_string_variants(self):
        assert to_string(True) == "true"
        assert to_string(False) == "false"
        assert to_string(3.0) == "3"
        assert to_string(3.5) == "3.5"
        assert to_string("x") == "x"
        assert to_string([]) == ""

    def test_to_string_node_set_first(self):
        doc = parse("<a><b>one</b><b>two</b></a>")
        assert to_string(list(doc.root.child_elements())) == "one"

    def test_to_number_variants(self):
        assert to_number("  42 ") == 42.0
        assert math.isnan(to_number("x"))
        assert to_number(True) == 1.0
        assert to_number(False) == 0.0
        assert to_number([]) != to_number([])  # NaN

    def test_to_boolean_variants(self):
        assert to_boolean("a") is True
        assert to_boolean("") is False
        assert to_boolean(0.0) is False
        assert to_boolean(math.nan) is False
        assert to_boolean([Element("x")]) is True
        assert to_boolean([]) is False

    def test_bad_value_types(self):
        with pytest.raises(XPathTypeError):
            to_string({"not": "a value"})  # type: ignore[arg-type]
        with pytest.raises(XPathTypeError):
            to_number(object())  # type: ignore[arg-type]
        with pytest.raises(XPathTypeError):
            to_boolean(object())  # type: ignore[arg-type]

    def test_format_number(self):
        assert format_number(math.nan) == "NaN"
        assert format_number(math.inf) == "Infinity"
        assert format_number(-math.inf) == "-Infinity"
        assert format_number(-0.0) == "0"
        assert format_number(2.5) == "2.5"


class TestCompare:
    def test_unknown_operator(self):
        with pytest.raises(XPathTypeError):
            compare("~", 1.0, 2.0)

    def test_boolean_dominates_equality(self):
        assert compare("=", True, "non-empty") is True
        assert compare("=", False, "") is True
        assert compare("!=", True, "") is True

    def test_number_dominates_strings(self):
        assert compare("=", 5.0, "5") is True
        assert compare("=", "5", 5.0) is True

    def test_string_equality(self):
        assert compare("=", "a", "a") is True
        assert compare("!=", "a", "b") is True

    def test_nan_comparisons(self):
        assert compare("<", math.nan, 1.0) is False
        assert compare(">=", math.nan, math.nan) is False
        assert compare("=", math.nan, math.nan) is False

    def test_node_set_vs_boolean(self):
        doc = parse("<a><b>x</b></a>")
        assert compare("=", list(doc.root.child_elements()), True) is True
        assert compare("=", [], False) is True

    def test_relational_strings_numeric(self):
        # '<' between strings converts both to numbers per the spec.
        assert compare("<", "2", "10") is True
        assert compare("<", "abc", "10") is False


class TestAttributeNode:
    def test_missing_attribute_rejected(self):
        with pytest.raises(XPathTypeError):
            AttributeNode(Element("a"), "missing")

    def test_equality_and_hash(self):
        owner = Element("a", attributes={"x": "1"})
        first = AttributeNode(owner, "x")
        second = AttributeNode(owner, "x")
        assert first == second
        assert hash(first) == hash(second)
        assert first != "not a node"

    def test_path_and_repr(self):
        doc = parse('<db><item x="1"/></db>')
        node = AttributeNode(doc.root.find("item"), "x")
        assert node.path() == "/db/item[1]/@x"
        assert "@x" in repr(node)

    def test_unique_nodes_mixes_kinds(self):
        owner = Element("a", attributes={"x": "1"})
        attr1 = AttributeNode(owner, "x")
        attr2 = AttributeNode(owner, "x")
        assert unique_nodes([owner, attr1, owner, attr2]) == [owner, attr1]

    def test_node_string_value_type_check(self):
        with pytest.raises(XPathTypeError):
            node_string_value("raw string")  # type: ignore[arg-type]


class TestDetectionResultProperties:
    def make(self, **overrides):
        base = dict(
            votes_total=10, votes_matching=9, queries_total=5,
            queries_answered=4, p_value=0.001, detected=True, alpha=0.01)
        base.update(overrides)
        return DetectionResult(**base)

    def test_ratios(self):
        result = self.make()
        assert result.match_ratio == 0.9
        assert result.query_survival == 0.8

    def test_zero_division_guards(self):
        result = self.make(votes_total=0, votes_matching=0,
                           queries_total=0, queries_answered=0,
                           detected=False, p_value=1.0)
        assert result.match_ratio == 0.0
        assert result.query_survival == 0.0

    def test_str_variants(self):
        assert "DETECTED" in str(self.make())
        assert "not detected" in str(self.make(detected=False))


class TestEmbeddingStatsProperties:
    def test_utilisation_and_distortion(self):
        stats = EmbeddingStats(capacity_groups=10, selected_groups=5,
                               nodes_modified=3, nodes_unchanged=1,
                               total_distortion=0.4)
        assert stats.utilisation == 0.5
        assert stats.mean_distortion == pytest.approx(0.1)

    def test_empty_stats(self):
        stats = EmbeddingStats()
        assert stats.utilisation == 0.0
        assert stats.mean_distortion == 0.0
