"""Unit tests for the attack suite."""

import pytest

from repro.attacks import (
    CompositeAttack,
    NodeDeletionAttack,
    NodeInsertionAttack,
    RedundancyUnificationAttack,
    ReductionAttack,
    ReorganizationAttack,
    SiblingShuffleAttack,
    ValueAlterationAttack,
)
from repro.datasets import bibliography
from repro.semantics import XMLFD
from repro.xmlmodel import parse, serialize
from repro.xpath import select, select_strings

CONFIG = bibliography.BibliographyConfig(books=30, editors=5, seed=5)


@pytest.fixture()
def doc():
    return bibliography.generate_document(CONFIG)


class TestAttackFramework:
    def test_input_never_mutated(self, doc):
        before = serialize(doc)
        for attack in (
            ValueAlterationAttack(0.5, seed=1),
            NodeDeletionAttack(0.5, seed=1),
            NodeInsertionAttack(0.3, seed=1),
            ReductionAttack(0.4, seed=1),
            SiblingShuffleAttack(seed=1),
            RedundancyUnificationAttack(bibliography.semantic_fd()),
        ):
            attack.apply(doc)
            assert serialize(doc) == before, attack.name

    def test_reports_are_descriptive(self, doc):
        report = ValueAlterationAttack(0.3, seed=2).apply(doc)
        assert report.attack == "value-alteration"
        assert report.params["rate"] == 0.3
        assert "modifications" in str(report)

    def test_seeded_determinism(self, doc):
        a = ValueAlterationAttack(0.3, seed=9).apply(doc)
        b = ValueAlterationAttack(0.3, seed=9).apply(doc)
        assert serialize(a.document) == serialize(b.document)

    def test_different_seeds_differ(self, doc):
        a = ValueAlterationAttack(0.3, seed=1).apply(doc)
        b = ValueAlterationAttack(0.3, seed=2).apply(doc)
        assert serialize(a.document) != serialize(b.document)


class TestValueAlteration:
    def test_zero_rate_is_identity(self, doc):
        report = ValueAlterationAttack(0.0, seed=1).apply(doc)
        assert report.modifications == 0
        assert report.document.equals(doc)

    def test_full_rate_touches_everything(self, doc):
        report = ValueAlterationAttack(1.0, seed=1).apply(doc)
        # Every leaf and attribute slot altered.
        assert report.modifications > 100

    def test_numeric_values_stay_numeric(self, doc):
        report = ValueAlterationAttack(1.0, seed=1).apply(doc)
        for year in select_strings(report.document, "/db/book/year"):
            float(year)  # must not raise

    def test_rate_bounds(self):
        with pytest.raises(ValueError):
            ValueAlterationAttack(1.5)
        with pytest.raises(ValueError):
            ValueAlterationAttack(-0.1)


class TestNodeDeletion:
    def test_deletes_fraction(self, doc):
        before = doc.count_elements()
        report = NodeDeletionAttack(0.3, seed=1).apply(doc)
        assert report.document.count_elements() < before
        assert report.modifications > 0

    def test_tag_restriction(self, doc):
        report = NodeDeletionAttack(1.0, tag="editor", seed=1).apply(doc)
        assert list(report.document.iter_elements("editor")) == []
        assert list(report.document.iter_elements("title"))  # untouched

    def test_root_survives(self, doc):
        report = NodeDeletionAttack(1.0, seed=1).apply(doc)
        assert report.document.root.tag == "db"


class TestNodeInsertion:
    def test_inserts_clones(self, doc):
        before = doc.count_elements()
        report = NodeInsertionAttack(0.2, seed=1).apply(doc)
        assert report.document.count_elements() > before

    def test_zero_rate(self, doc):
        report = NodeInsertionAttack(0.0, seed=1).apply(doc)
        assert report.document.equals(doc)


class TestReduction:
    def test_keeps_fraction_of_entities(self, doc):
        report = ReductionAttack(0.5, seed=1).apply(doc)
        kept = len(report.document.root.child_elements("book"))
        assert kept == round(30 * 0.5)

    def test_keep_all(self, doc):
        report = ReductionAttack(1.0, seed=1).apply(doc)
        assert report.document.equals(doc)
        assert report.modifications == 0

    def test_keep_none(self, doc):
        report = ReductionAttack(0.0, seed=1).apply(doc)
        assert report.document.root.child_elements("book") == []

    def test_entity_tag(self, doc):
        report = ReductionAttack(0.5, entity_tag="author", seed=1).apply(doc)
        before = len(list(doc.iter_elements("author")))
        after = len(list(report.document.iter_elements("author")))
        assert after == round(before * 0.5)

    def test_kept_entities_intact(self, doc):
        report = ReductionAttack(0.5, seed=1).apply(doc)
        for book in report.document.root.child_elements("book"):
            assert book.find("title") is not None
            assert book.find("year") is not None


class TestReorganizationAttack:
    def test_restructures(self, doc):
        attack = ReorganizationAttack(bibliography.book_shape(),
                                      bibliography.publisher_shape())
        report = attack.apply(doc)
        assert report.document.root.child_elements("publisher")
        assert not report.document.root.child_elements("book")

    def test_information_preserved(self, doc):
        attack = ReorganizationAttack(bibliography.book_shape(),
                                      bibliography.publisher_shape())
        report = attack.apply(doc)
        fields = ("title", "author", "publisher", "editor", "year", "price")
        original = {r.key(fields)
                    for r in bibliography.book_shape().shred(doc)}
        attacked = {r.key(fields)
                    for r in bibliography.publisher_shape().shred(
                        report.document)}
        assert original == attacked


class TestSiblingShuffle:
    def test_same_content_different_order(self, doc):
        report = SiblingShuffleAttack(seed=3).apply(doc)
        assert not report.document.equals(doc)
        # Same multiset of books by title.
        assert sorted(select_strings(doc, "/db/book/title")) == \
            sorted(select_strings(report.document, "/db/book/title"))

    def test_physical_paths_shift(self, doc):
        report = SiblingShuffleAttack(seed=3).apply(doc)
        original_first = select_strings(doc, "/db/book[1]/title")
        shuffled_first = select_strings(report.document, "/db/book[1]/title")
        assert original_first != shuffled_first  # overwhelmingly likely


class TestRedundancyUnification:
    def test_fd_restored_after_attack(self):
        # Build a document violating the FD, then unify.
        doc = parse(
            '<db>'
            '<book publisher="mkp"><title>A</title><editor>E</editor>'
            '<year>1998</year></book>'
            '<book publisher="acm"><title>B</title><editor>E</editor>'
            '<year>1999</year></book>'
            '<book publisher="acm"><title>C</title><editor>E</editor>'
            '<year>2000</year></book>'
            '</db>')
        fd = XMLFD("ep", "/db/book", ("editor",), "@publisher")
        assert not fd.holds(doc)
        report = RedundancyUnificationAttack(fd, strategy="majority").apply(doc)
        assert fd.holds(report.document)
        values = select_strings(report.document, "/db/book/@publisher")
        assert values == ["acm", "acm", "acm"]  # majority wins
        assert report.modifications == 1

    def test_first_strategy(self):
        doc = parse(
            '<db>'
            '<book publisher="mkp"><editor>E</editor></book>'
            '<book publisher="acm"><editor>E</editor></book>'
            '</db>')
        fd = XMLFD("ep", "/db/book", ("editor",), "@publisher")
        report = RedundancyUnificationAttack(fd, strategy="first").apply(doc)
        assert select_strings(report.document, "/db/book/@publisher") == \
            ["mkp", "mkp"]

    def test_noop_on_consistent_data(self, doc):
        report = RedundancyUnificationAttack(
            bibliography.semantic_fd()).apply(doc)
        assert report.modifications == 0
        assert report.params["groups"] > 0  # groups existed, all agreed

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            RedundancyUnificationAttack(bibliography.semantic_fd(),
                                        strategy="nope")


class TestComposite:
    def test_chains_attacks(self, doc):
        attack = CompositeAttack([
            SiblingShuffleAttack(seed=1),
            ReductionAttack(0.8, seed=1),
            ValueAlterationAttack(0.1, seed=1),
        ])
        report = attack.apply(doc)
        assert report.attack == "composite"
        assert len(report.params["sequence"]) == 3
        assert len(report.document.root.child_elements("book")) == 24

    def test_needs_attacks(self):
        with pytest.raises(ValueError):
            CompositeAttack([])
