"""Unit tests for the plug-in watermark algorithms."""

import base64

import pytest

from repro.core import KeyedPRF, create_algorithm, algorithm_names
from repro.core.algorithms import AlgorithmError
from repro.core.algorithms.base import WatermarkAlgorithm, register_algorithm

PRF = KeyedPRF("unit-test-key")
IDENTITY = "field\x1ftitle\x1eSome Book"


def roundtrip(algorithm, value, bit, identity=IDENTITY):
    marked = algorithm.embed(value, bit, PRF, identity)
    extracted = algorithm.extract(marked, PRF, identity)
    return marked, extracted


class TestRegistry:
    def test_builtins_registered(self):
        names = algorithm_names()
        for expected in ("numeric", "categorical", "text-case",
                         "binary-lsb", "date"):
            assert expected in names

    def test_unknown_name(self):
        with pytest.raises(AlgorithmError):
            create_algorithm("no-such-algo")

    def test_bad_params(self):
        with pytest.raises(AlgorithmError):
            create_algorithm("numeric", {"bogus": 1})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AlgorithmError):
            @register_algorithm
            class Duplicate(WatermarkAlgorithm):  # noqa: unused
                name = "numeric"

                def embed(self, value, bit, prf, identity):
                    return value

                def extract(self, value, prf, identity):
                    return None

                def applicable(self, value):
                    return False

    def test_unnamed_registration_rejected(self):
        with pytest.raises(AlgorithmError):
            @register_algorithm
            class NoName(WatermarkAlgorithm):  # noqa: unused
                def embed(self, value, bit, prf, identity):
                    return value

                def extract(self, value, prf, identity):
                    return None

                def applicable(self, value):
                    return False


class TestNumeric:
    def test_integer_roundtrip(self):
        algo = create_algorithm("numeric")
        for value in ("1998", "0", "7", "-42", "1000000"):
            for bit in (0, 1):
                marked, extracted = roundtrip(algo, value, bit)
                assert extracted == bit, (value, bit, marked)

    def test_decimal_roundtrip(self):
        algo = create_algorithm("numeric", {"fraction_digits": 2})
        for value in ("10.50", "99.99", "-3.25", "0.01"):
            for bit in (0, 1):
                marked, extracted = roundtrip(algo, value, bit)
                assert extracted == bit, (value, bit, marked)

    def test_perturbation_is_one_unit(self):
        algo = create_algorithm("numeric", {"fraction_digits": 2})
        marked = algo.embed("10.50", 1, PRF, IDENTITY)
        assert abs(float(marked) - 10.50) <= 0.0100001

    def test_idempotent(self):
        algo = create_algorithm("numeric")
        once = algo.embed("1998", 1, PRF, IDENTITY)
        twice = algo.embed(once, 1, PRF, IDENTITY)
        assert once == twice

    def test_matching_parity_unchanged(self):
        algo = create_algorithm("numeric")
        assert algo.embed("1998", 0, PRF, IDENTITY) == "1998"

    def test_applicable(self):
        algo = create_algorithm("numeric")
        assert algo.applicable("123")
        assert algo.applicable(" 4.5 ")
        assert not algo.applicable("abc")
        assert not algo.applicable("")

    def test_extract_non_numeric_none(self):
        algo = create_algorithm("numeric")
        assert algo.extract("junk", PRF, IDENTITY) is None

    def test_sign_never_flips(self):
        algo = create_algorithm("numeric")
        for identity in (f"id-{i}" for i in range(20)):
            marked = algo.embed("1", 0, PRF, identity)
            assert float(marked) >= 0

    def test_distortion_relative(self):
        algo = create_algorithm("numeric")
        assert algo.distortion("1998", "1999") == pytest.approx(1 / 1998)
        assert algo.distortion("1998", "1998") == 0.0

    def test_formatting_preserved(self):
        algo = create_algorithm("numeric", {"fraction_digits": 2})
        marked = algo.embed("10.00", 1, PRF, IDENTITY)
        whole, fraction = marked.split(".")
        assert len(fraction) == 2

    def test_invalid_params(self):
        with pytest.raises(AlgorithmError):
            create_algorithm("numeric", {"fraction_digits": -1})


class TestCategorical:
    DOMAIN = ["mkp", "acm", "springer", "ieee", "elsevier", "usenix"]

    def test_roundtrip(self):
        algo = create_algorithm("categorical", {"domain": self.DOMAIN})
        for value in self.DOMAIN:
            for bit in (0, 1):
                marked, extracted = roundtrip(algo, value, bit)
                assert extracted == bit
                assert marked in self.DOMAIN

    def test_swap_is_involution(self):
        algo = create_algorithm("categorical", {"domain": self.DOMAIN})
        value = "mkp"
        flipped = algo.embed(value, 1 - algo.extract(value, PRF, IDENTITY),
                             PRF, IDENTITY)
        back = algo.embed(flipped, algo.extract(value, PRF, IDENTITY),
                          PRF, IDENTITY)
        # Swapping to the other parity and back returns the original.
        assert back == value

    def test_odd_domain_last_element_unusable(self):
        domain = ["a", "b", "c"]
        algo = create_algorithm("categorical", {"domain": domain})
        last = KeyedPRF("unit-test-key").keyed_order(
            "categorical-order", domain)[-1]
        assert algo.extract(last, PRF, IDENTITY) is None
        assert algo.embed(last, 0, PRF, IDENTITY) == last

    def test_out_of_domain(self):
        algo = create_algorithm("categorical", {"domain": self.DOMAIN})
        assert not algo.applicable("unknown")
        assert algo.extract("unknown", PRF, IDENTITY) is None
        assert algo.embed("unknown", 1, PRF, IDENTITY) == "unknown"

    def test_domain_validation(self):
        with pytest.raises(AlgorithmError):
            create_algorithm("categorical", {"domain": ["solo"]})
        with pytest.raises(AlgorithmError):
            create_algorithm("categorical", {"domain": ["a", "a"]})

    def test_distortion(self):
        algo = create_algorithm("categorical", {"domain": self.DOMAIN})
        assert algo.distortion("mkp", "mkp") == 0.0
        assert algo.distortion("mkp", "acm") == 1.0


class TestTextCase:
    def test_roundtrip(self):
        algo = create_algorithm("text-case")
        for value in ("Senior Software Engineer", "data curator",
                      "XML Query Processing"):
            for bit in (0, 1):
                marked, extracted = roundtrip(algo, value, bit)
                assert extracted == bit

    def test_changes_at_most_one_char(self):
        algo = create_algorithm("text-case")
        value = "Readings in Database Systems"
        marked = algo.embed(value, 1, PRF, IDENTITY)
        differences = sum(a != b for a, b in zip(value, marked))
        assert differences <= 1
        assert marked.lower() == value.lower()

    def test_first_char_never_touched(self):
        algo = create_algorithm("text-case")
        for bit in (0, 1):
            marked = algo.embed("Engineer", bit, PRF, IDENTITY)
            assert marked[0] == "E"

    def test_not_applicable_without_letters(self):
        algo = create_algorithm("text-case")
        assert not algo.applicable("12345")
        assert not algo.applicable("X")  # only the protected first char
        assert algo.extract("12345", PRF, IDENTITY) is None

    def test_idempotent(self):
        algo = create_algorithm("text-case")
        once = algo.embed("hello world", 1, PRF, IDENTITY)
        assert algo.embed(once, 1, PRF, IDENTITY) == once


class TestBinaryLSB:
    PAYLOAD = base64.b64encode(bytes(range(64))).decode("ascii")

    def test_roundtrip(self):
        algo = create_algorithm("binary-lsb")
        for bit in (0, 1):
            marked, extracted = roundtrip(algo, self.PAYLOAD, bit)
            assert extracted == bit

    def test_output_is_valid_base64_same_length(self):
        algo = create_algorithm("binary-lsb")
        marked = algo.embed(self.PAYLOAD, 1, PRF, IDENTITY)
        decoded = base64.b64decode(marked)
        assert len(decoded) == 64

    def test_touches_at_most_spread_bytes(self):
        algo = create_algorithm("binary-lsb", {"spread": 4})
        marked = algo.embed(self.PAYLOAD, 1, PRF, IDENTITY)
        before = base64.b64decode(self.PAYLOAD)
        after = base64.b64decode(marked)
        changed = sum(1 for a, b in zip(before, after) if a != b)
        assert changed <= 4

    def test_survives_partial_corruption(self):
        # Majority voting over spread offsets tolerates one flipped byte.
        algo = create_algorithm("binary-lsb", {"spread": 7})
        marked = algo.embed(self.PAYLOAD, 1, PRF, IDENTITY)
        payload = bytearray(base64.b64decode(marked))
        offsets = PRF.offsets(IDENTITY, 7, len(payload))
        payload[offsets[0]] ^= 1  # destroy one carrier byte
        corrupted = base64.b64encode(bytes(payload)).decode("ascii")
        assert algo.extract(corrupted, PRF, IDENTITY) == 1

    def test_not_applicable(self):
        algo = create_algorithm("binary-lsb")
        assert not algo.applicable("not base64 at all!!!")
        assert not algo.applicable("")
        assert algo.extract("####", PRF, IDENTITY) is None

    def test_invalid_spread(self):
        with pytest.raises(AlgorithmError):
            create_algorithm("binary-lsb", {"spread": 0})

    def test_distortion(self):
        algo = create_algorithm("binary-lsb", {"spread": 4})
        marked = algo.embed(self.PAYLOAD, 1, PRF, IDENTITY)
        assert 0.0 <= algo.distortion(self.PAYLOAD, marked) <= 4 / 64


class TestDate:
    def test_roundtrip(self):
        algo = create_algorithm("date")
        for value in ("2005-08-30", "1999-01-01", "2020-02-28"):
            for bit in (0, 1):
                marked, extracted = roundtrip(algo, value, bit)
                assert extracted == bit

    def test_result_always_valid(self):
        algo = create_algorithm("date")
        for day in range(1, 32):
            value = f"2005-01-{day:02d}"
            for bit in (0, 1):
                marked = algo.embed(value, bit, PRF, IDENTITY)
                year, month, marked_day = marked.split("-")
                assert 1 <= int(marked_day) <= 31
                assert (year, month) == ("2005", "01")

    def test_moves_at_most_three_days(self):
        # Worst case is 31 -> 28 (clamping back into the always-valid
        # day range while preserving the embedded parity).
        algo = create_algorithm("date")
        for day in range(1, 32):
            value = f"2005-03-{day:02d}"
            marked = algo.embed(value, 0, PRF, IDENTITY)
            assert abs(int(marked[-2:]) - day) <= 3

    def test_not_applicable(self):
        algo = create_algorithm("date")
        assert not algo.applicable("30/08/2005")
        assert not algo.applicable("2005-13-01")
        assert algo.extract("nope", PRF, IDENTITY) is None

    def test_unchanged_when_parity_matches(self):
        algo = create_algorithm("date")
        assert algo.embed("2005-08-30", 0, PRF, IDENTITY) == "2005-08-30"


class TestCrossAlgorithm:
    def test_wrong_key_extracts_garbage_for_categorical(self):
        # The keyed ordering differs, so parity flips for some values.
        domain = [f"v{i}" for i in range(16)]
        algo = create_algorithm("categorical", {"domain": domain})
        other = KeyedPRF("different-key")
        flips = sum(
            algo.extract(v, PRF, IDENTITY) != algo.extract(v, other, IDENTITY)
            for v in domain)
        assert flips > 0

    def test_identity_binding_for_binary(self):
        algo = create_algorithm("binary-lsb", {"spread": 3})
        marked = algo.embed(self_payload(), 1, PRF, "identity-A")
        # Different identity reads different offsets: not guaranteed 1.
        values = {algo.extract(marked, PRF, f"identity-{i}")
                  for i in range(8)}
        assert None in values or 0 in values or 1 in values  # smoke
        assert algo.extract(marked, PRF, "identity-A") == 1


def self_payload() -> str:
    return base64.b64encode(bytes(range(48))).decode("ascii")
