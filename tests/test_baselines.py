"""Tests for the baseline watermarkers and the comparative claims.

These tests encode the paper's qualitative table: which scheme survives
which attack.  They are the heart of experiments E1/E7/E8.
"""

import pytest

from repro.attacks import (
    RedundancyUnificationAttack,
    ReorganizationAttack,
    SiblingShuffleAttack,
)
from repro.baselines import AKWatermarker, SionSlot, SionWatermarker
from repro.core import Watermark, WmXMLDecoder, WmXMLEncoder
from repro.datasets import bibliography, vocab

CONFIG = bibliography.BibliographyConfig(books=120, editors=10, seed=21)
MESSAGE = "OWNER"
KEY = "comparison-key"


@pytest.fixture(scope="module")
def doc():
    return bibliography.generate_document(CONFIG)


@pytest.fixture(scope="module")
def watermark():
    return Watermark.from_message(MESSAGE)


@pytest.fixture(scope="module")
def wmxml(doc, watermark):
    scheme = bibliography.default_scheme(gamma=2)
    result = WmXMLEncoder(scheme, KEY).embed(doc, watermark)
    return scheme, result


@pytest.fixture(scope="module")
def ak(doc, watermark):
    scheme = bibliography.default_scheme(gamma=2)
    watermarker = AKWatermarker(KEY, bibliography.book_shape(),
                                scheme.carriers, gamma=2, alpha=1e-3)
    marked, record = watermarker.embed(doc, watermark)
    return watermarker, marked, record


@pytest.fixture(scope="module")
def sion(doc, watermark):
    slots = [
        SionSlot("book", "leaf", "year", "numeric"),
        SionSlot("book", "leaf", "price", "numeric",
                 (("fraction_digits", 2),)),
        SionSlot("book", "attribute", "publisher", "categorical",
                 (("domain", list(vocab.PUBLISHERS)),)),
    ]
    watermarker = SionWatermarker(KEY, slots, gamma=2, alpha=1e-3)
    marked, record = watermarker.embed(doc, watermark)
    return watermarker, marked, record


class TestCleanDetection:
    def test_wmxml(self, wmxml, watermark):
        scheme, result = wmxml
        outcome = WmXMLDecoder(KEY).detect(
            result.document, result.record, scheme.shape, expected=watermark)
        assert outcome.detected
        assert outcome.match_ratio == 1.0

    def test_ak(self, ak, watermark):
        watermarker, marked, record = ak
        outcome = watermarker.detect(marked, record, watermark)
        assert outcome.detected
        assert outcome.match_ratio == 1.0

    def test_sion(self, sion, watermark):
        watermarker, marked, record = sion
        outcome = watermarker.detect(marked, record, watermark)
        assert outcome.detected
        assert outcome.match_ratio == 1.0


class TestShuffleAttack:
    """Reordering: WmXML and Sion survive; AK collapses to chance."""

    ATTACK = SiblingShuffleAttack(seed=4)

    def test_wmxml_survives(self, wmxml, watermark):
        scheme, result = wmxml
        attacked = self.ATTACK.apply(result.document).document
        outcome = WmXMLDecoder(KEY).detect(
            attacked, result.record, scheme.shape, expected=watermark)
        assert outcome.detected
        assert outcome.match_ratio == 1.0

    def test_sion_survives(self, sion, watermark):
        watermarker, marked, record = sion
        attacked = self.ATTACK.apply(marked).document
        outcome = watermarker.detect(attacked, record, watermark)
        assert outcome.detected

    def test_ak_collapses(self, ak, watermark):
        watermarker, marked, record = ak
        attacked = self.ATTACK.apply(marked).document
        outcome = watermarker.detect(attacked, record, watermark)
        assert not outcome.detected
        assert outcome.match_ratio < 0.7  # essentially coin-flipping


class TestReorganizationAttack:
    """Restructuring: only WmXML (with query rewriting) survives."""

    def attack(self, document):
        return ReorganizationAttack(
            bibliography.book_shape(),
            bibliography.publisher_shape()).apply(document).document

    def test_wmxml_survives_with_rewriting(self, wmxml, watermark):
        scheme, result = wmxml
        attacked = self.attack(result.document)
        outcome = WmXMLDecoder(KEY).detect(
            attacked, result.record, bibliography.publisher_shape(),
            expected=watermark)
        assert outcome.detected
        assert outcome.match_ratio == 1.0

    def test_wmxml_needs_the_rewriting(self, wmxml, watermark):
        scheme, result = wmxml
        attacked = self.attack(result.document)
        outcome = WmXMLDecoder(KEY).detect(
            attacked, result.record, scheme.shape, expected=watermark)
        assert outcome.votes_total == 0
        assert not outcome.detected

    def test_ak_dies(self, ak, watermark):
        watermarker, marked, record = ak
        outcome = watermarker.detect(self.attack(marked), record, watermark)
        assert not outcome.detected
        assert outcome.votes_total == 0  # every stored path dangling

    def test_sion_dies(self, sion, watermark):
        watermarker, marked, record = sion
        outcome = watermarker.detect(self.attack(marked), record, watermark)
        assert not outcome.detected


class TestRedundancyAttack:
    """FD unification: WmXML's folded marks are untouched; per-occurrence
    marks lose the disagreeing duplicates."""

    ATTACK = RedundancyUnificationAttack(
        bibliography.semantic_fd(), strategy="majority", seed=6)

    def test_wmxml_unaffected(self, wmxml, watermark):
        scheme, result = wmxml
        attacked = self.ATTACK.apply(result.document).document
        outcome = WmXMLDecoder(KEY).detect(
            attacked, result.record, scheme.shape, expected=watermark)
        assert outcome.match_ratio == 1.0
        assert outcome.detected

    def test_wmxml_duplicates_bitwise_identical(self, wmxml):
        # The reason the attack is a no-op: duplicates already agree.
        scheme, result = wmxml
        report = self.ATTACK.apply(result.document)
        assert report.modifications == 0

    def test_ak_loses_votes(self, ak, watermark):
        watermarker, marked, record = ak
        attacked = self.ATTACK.apply(marked).document
        outcome = watermarker.detect(attacked, record, watermark)
        clean = watermarker.detect(marked, record, watermark)
        assert outcome.votes_matching < clean.votes_matching

    def test_sion_loses_votes(self, sion, watermark):
        watermarker, marked, record = sion
        attacked = self.ATTACK.apply(marked).document
        outcome = watermarker.detect(attacked, record, watermark)
        clean = watermarker.detect(marked, record, watermark)
        assert outcome.votes_matching < clean.votes_matching


class TestFalsePositives:
    def test_ak_unmarked(self, doc, ak, watermark):
        watermarker, _, record = ak
        outcome = watermarker.detect(doc, record, watermark)
        assert not outcome.detected

    def test_sion_unmarked(self, doc, sion, watermark):
        watermarker, _, record = sion
        outcome = watermarker.detect(doc, record, watermark)
        assert not outcome.detected

    def test_wrong_key_ak(self, ak, watermark):
        _, marked, record = ak
        stranger = AKWatermarker("not-the-key", bibliography.book_shape(),
                                 bibliography.default_scheme(2).carriers,
                                 gamma=2)
        outcome = stranger.detect(marked, record, watermark)
        assert not outcome.detected
