"""Tests for the result tables and the experiment suite (small configs)."""

import pytest

from repro.harness import (
    EXPERIMENTS,
    ExperimentConfig,
    ResultTable,
    e1_reorganization_equivalence,
    e3_capacity,
    e5_alteration_sweep,
    e7_reorganization_matrix,
    e8_redundancy,
    e10_false_positives,
    render_tables,
)

SMALL = ExperimentConfig(books=40, editors=6, seed=17)


class TestResultTable:
    def test_add_and_column(self):
        table = ResultTable("t", ["a", "b"])
        table.add(1, "x")
        table.add(2, "y")
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]

    def test_arity_checked(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_render_contains_everything(self):
        table = ResultTable("My Title", ["name", "ratio", "ok"])
        table.add("row-one", 0.5, True)
        table.note("a footnote")
        text = table.render()
        assert "My Title" in text
        assert "row-one" in text
        assert "0.500" in text
        assert "yes" in text
        assert "note: a footnote" in text

    def test_float_formatting(self):
        table = ResultTable("t", ["v"])
        table.add(1.23456e-9)
        table.add(0.25)
        text = table.render()
        assert "1.23e-09" in text
        assert "0.250" in text

    def test_csv_roundtrip(self, tmp_path):
        table = ResultTable("t", ["a", "b"])
        table.add(1, "x")
        path = tmp_path / "out.csv"
        table.to_csv(str(path))
        content = path.read_text()
        assert "# t" in content
        assert "a,b" in content
        assert "1,x" in content

    def test_render_tables(self):
        a = ResultTable("A", ["x"])
        b = ResultTable("B", ["y"])
        combined = render_tables([a, b])
        assert "A" in combined and "B" in combined


class TestExperimentRegistry:
    def test_all_ten_registered(self):
        assert sorted(EXPERIMENTS) == [
            "e1", "e10", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"]

    def test_all_return_tables(self):
        # Smoke-run the cheap experiments end to end on a tiny config.
        for name in ("e1", "e2", "e3", "e4"):
            table = EXPERIMENTS[name](SMALL)
            assert isinstance(table, ResultTable)
            assert table.rows


class TestExperimentClaims:
    """The paper's qualitative claims, asserted on small configs."""

    def test_e1_equivalence(self):
        table = e1_reorganization_equivalence(SMALL)
        for row in table.rows:
            answered, total = row[2].split("/")
            assert answered == total

    def test_e3_gamma_one_full_utilisation(self):
        table = e3_capacity(SMALL, gammas=(1, 4))
        assert table.column("utilisation")[0] == 1.0
        assert table.column("utilisation")[1] < 1.0

    def test_e5_crossover_claim(self):
        table = e5_alteration_sweep(SMALL, rates=(0.0, 0.3, 1.0))
        detected = table.column("detected")
        destroyed = table.column("usability-destroyed")
        assert detected[0] and not destroyed[0]
        # At full alteration the watermark is gone AND usability is gone.
        assert not detected[-1] and destroyed[-1]
        # Claim (ii): no row with a lost watermark but intact usability.
        for was_detected, was_destroyed in zip(detected, destroyed):
            assert was_detected or was_destroyed

    def test_e7_matrix_verdicts(self):
        table = e7_reorganization_matrix(SMALL)
        verdict = {(row[0], row[1]): row[5] for row in table.rows}
        assert verdict[("WmXML (rewritten)", "reorganisation")]
        assert not verdict[("Agrawal-Kiernan", "reorganisation")]
        assert not verdict[("Sion-labeling", "reorganisation")]

    def test_e8_wmxml_immune(self):
        table = e8_redundancy(SMALL, strategies=("majority",))
        for row in table.rows:
            if row[0].startswith("WmXML"):
                assert row[2] == 0  # nothing rewritten
                assert row[6]  # detected

    def test_e10_no_false_positives(self):
        table = e10_false_positives(SMALL, trials=5)
        assert all(count == 0 for count in table.column("detections"))
