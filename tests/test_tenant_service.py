"""Multi-tenant service behaviour: auth, quotas, isolation, rotation.

The contracts ISSUE 10 promises:

* **Auth gate** — every endpoint except ``/v1/healthz`` demands a
  bearer token (401), scopes gate each route (403), and the quota
  buckets answer 429 with an honest ``Retry-After``.
* **Isolation** — two tenants on one daemon cannot see each other's
  schemes, records, traces, or stats, and cannot drive detections
  with each other's records.
* **Rotation** — records embedded under key generation 1 still
  verify and trace after the map rotates to generation 2 (the key id
  rides the record), including through an ``--export``/``--import``
  registry round-trip.
* **Compatibility** — the single-tenant daemon's wire behaviour is
  untouched: no tenant/key_id keys in payloads, paging validation
  still 400s, and the stats/healthz payloads only *gain* ``version``.
"""

import json
import time

import pytest

from repro.datasets import bibliography
from repro.registry import WatermarkRegistry
from repro.registry.backend import MemoryBackend
from repro.service import (
    REQUEST_FORMAT,
    RemoteServiceError,
    WmXMLClient,
    WmXMLService,
    running_server,
)
from repro.tenants import TenantDirectory, TenantsConfig
from repro.xmlmodel import parse, serialize

CONFIG = {
    "format": "wmxml-tenants-v1",
    "keys": {"1": "tenancy-master-one"},
    "tenants": {
        "acme": {},
        "globex": {"scopes": ["embed", "detect", "records", "schemes"]},
        "metered": {"quota": {"requests_per_minute": 60,
                              "request_burst": 2}},
        "bulk": {"quota": {"documents_per_minute": 60,
                           "document_burst": 2}},
    },
}

ROTATED_CONFIG = {
    **CONFIG,
    "keys": {"1": "tenancy-master-one", "2": "tenancy-master-two"},
    "active_key_id": 2,
}


def _body(**fields) -> bytes:
    return json.dumps({"format": REQUEST_FORMAT, **fields}).encode()


def _bearer(token: str) -> dict:
    return {"Authorization": f"Bearer {token}"}


@pytest.fixture(scope="module")
def golden_text():
    return serialize(bibliography.generate_document(
        bibliography.BibliographyConfig(books=25, editors=3, seed=11)))


@pytest.fixture()
def stack():
    """A fresh tenant-mode service with an injectable quota clock."""
    now = [0.0]
    directory = TenantDirectory(
        TenantsConfig.from_dict(CONFIG),
        registry=WatermarkRegistry(MemoryBackend()),
        clock=lambda: now[0])
    directory.register_all("books", bibliography.default_scheme(2))
    return WmXMLService(tenants=directory), directory, now


class TestConstruction:
    def test_exactly_one_of_system_or_tenants(self, stack):
        _, directory, _ = stack
        with pytest.raises(ValueError):
            WmXMLService()
        from repro.api import WmXMLSystem
        with pytest.raises(ValueError):
            WmXMLService(WmXMLSystem("k"), tenants=directory)


class TestAuthGate:
    def test_healthz_is_open_and_reveals_no_tenant_data(self, stack):
        service, _, _ = stack
        status, payload, _ = service.dispatch("GET", "/v1/healthz")
        assert status == 200
        assert payload["version"]
        assert payload["tenants"] == 4
        assert "schemes" not in payload

    @pytest.mark.parametrize("method,path", [
        ("GET", "/v1/stats"),
        ("POST", "/v1/embed"),
        ("POST", "/v1/embed/batch"),
        ("POST", "/v1/detect"),
        ("POST", "/v1/detect/batch"),
        ("GET", "/v1/records"),
        ("GET", "/v1/ledger/verify"),
        ("POST", "/v1/trace"),
        ("GET", "/v1/schemes"),
        ("GET", "/v1/schemes/books"),
        ("PUT", "/v1/schemes/books"),
        ("GET", "/v1/nope"),
    ])
    def test_everything_else_401s_without_a_token(self, stack, method,
                                                  path):
        service, _, _ = stack
        status, payload, _ = service.dispatch(method, path, b"{}")
        assert status == 401
        assert payload["error"]["code"] == "unauthorized"

    @pytest.mark.parametrize("header", [
        "Basic dXNlcjpwdw==", "Bearer", "Bearer ", "wmx1.x.y",
    ])
    def test_malformed_authorization_header(self, stack, header):
        service, _, _ = stack
        status, payload, _ = service.dispatch(
            "GET", "/v1/stats", b"", {"Authorization": header})
        assert status == 401

    def test_forged_token_is_401(self, stack):
        service, _, _ = stack
        from repro.tenants import MasterKeyMap, mint_token
        forged = mint_token(MasterKeyMap({1: "not-the-master"}),
                            "acme", {"embed"})
        status, payload, _ = service.dispatch(
            "GET", "/v1/stats", b"", _bearer(forged))
        assert status == 401

    def test_missing_scope_is_403(self, stack, golden_text):
        service, directory, _ = stack
        token = directory.mint_token("globex")  # no trace scope
        status, payload, _ = service.dispatch(
            "POST", "/v1/trace",
            _body(scheme="books", document=golden_text),
            _bearer(token))
        assert status == 403
        assert payload["error"]["code"] == "forbidden"
        assert "trace" in payload["error"]["message"]

    def test_token_narrower_than_grant_is_honoured(self, stack):
        service, directory, _ = stack
        token = directory.mint_token("acme", scopes={"detect"})
        status, payload, _ = service.dispatch(
            "GET", "/v1/records", b"", _bearer(token))
        assert status == 403

    def test_unknown_path_with_valid_token_is_404(self, stack):
        service, directory, _ = stack
        token = directory.mint_token("acme")
        status, payload, _ = service.dispatch(
            "GET", "/v1/nope", b"", _bearer(token))
        assert status == 404

    def test_expired_token_is_401(self, stack):
        service, directory, _ = stack
        token = directory.mint_token("acme", ttl_s=0.0001)
        time.sleep(0.01)
        status, _, _ = service.dispatch("GET", "/v1/stats", b"",
                                        _bearer(token))
        assert status == 401


class TestQuotas:
    def test_request_bucket_429_with_retry_after(self, stack):
        service, directory, now = stack
        token = directory.mint_token("metered")
        for _ in range(2):  # burst
            status, _, _ = service.dispatch("GET", "/v1/stats", b"",
                                            _bearer(token))
            assert status == 200
        status, payload, headers = service.dispatch(
            "GET", "/v1/stats", b"", _bearer(token))
        assert status == 429
        assert payload["error"]["code"] == "rate-limited"
        assert headers["Retry-After"] == "1"  # ceil(1 token / 1 per s)
        now[0] += 1.0
        status, _, _ = service.dispatch("GET", "/v1/stats", b"",
                                        _bearer(token))
        assert status == 200

    def test_document_bucket_charges_per_document(self, stack,
                                                  golden_text):
        service, directory, _ = stack
        token = directory.mint_token("bulk")
        status, payload, _ = service.dispatch(
            "POST", "/v1/embed/batch",
            _body(scheme="books", documents=[golden_text] * 2,
                  message="hi"), _bearer(token))
        assert status == 200
        status, payload, headers = service.dispatch(
            "POST", "/v1/embed",
            _body(scheme="books", document=golden_text, message="hi"),
            _bearer(token))
        assert status == 429
        assert int(headers["Retry-After"]) >= 1

    def test_429_never_charges_or_embeds(self, stack, golden_text):
        service, directory, _ = stack
        token = directory.mint_token("bulk")
        # A 3-document batch cannot ever pass burst=2; it must not
        # drain the bucket either.
        status, _, _ = service.dispatch(
            "POST", "/v1/embed/batch",
            _body(scheme="books", documents=[golden_text] * 3,
                  message="hi"), _bearer(token))
        assert status == 429
        status, _, _ = service.dispatch(
            "POST", "/v1/embed/batch",
            _body(scheme="books", documents=[golden_text] * 2,
                  message="hi"), _bearer(token))
        assert status == 200


class TestIsolation:
    def _embed(self, service, token, text, recipient=None):
        fields = {"scheme": "books", "document": text}
        if recipient is None:
            fields["message"] = "(c) tenant"
        else:
            fields["recipient"] = recipient
        status, payload, _ = service.dispatch(
            "POST", "/v1/embed", _body(**fields), _bearer(token))
        assert status == 200
        return payload

    def test_records_never_cross_tenants(self, stack, golden_text):
        service, directory, _ = stack
        acme = directory.mint_token("acme")
        globex = directory.mint_token("globex")
        self._embed(service, acme, golden_text)
        _, mine, _ = service.dispatch("GET", "/v1/records", b"",
                                      _bearer(acme))
        assert mine["total"] == 1
        assert mine["records"][0]["tenant"] == "acme"
        _, theirs, _ = service.dispatch("GET", "/v1/records", b"",
                                        _bearer(globex))
        assert theirs["total"] == 0 and theirs["records"] == []

    def test_detect_with_another_tenants_record_is_403(self, stack,
                                                       golden_text):
        service, directory, _ = stack
        acme = directory.mint_token("acme")
        globex = directory.mint_token("globex")
        payload = self._embed(service, acme, golden_text)
        status, refused, _ = service.dispatch(
            "POST", "/v1/detect",
            _body(scheme="books", document=payload["xml"],
                  record=payload["record"]), _bearer(globex))
        assert status == 403
        assert refused["error"]["code"] == "forbidden"
        # The owner verifies fine.
        status, verdict, _ = service.dispatch(
            "POST", "/v1/detect",
            _body(scheme="books", document=payload["xml"],
                  record=payload["record"]), _bearer(acme))
        assert status == 200 and verdict["result"]["detected"]

    def test_tenant_marks_never_cross_verify(self, stack, golden_text):
        # Same scheme, same document, same daemon — but each tenant
        # embeds under its own derived key, so one tenant's mark is
        # invisible to the other even with a copy of the record.
        service, directory, _ = stack
        acme = directory.mint_token("acme")
        payload = self._embed(service, acme, golden_text)
        record = payload["record"]
        record.pop("tenant"), record.pop("key_id")
        status, verdict, _ = service.dispatch(
            "POST", "/v1/detect",
            _body(scheme="books", document=payload["xml"],
                  record=record),
            _bearer(directory.mint_token("globex")))
        assert status == 200
        assert not verdict["result"]["detected"]

    def test_trace_stays_in_the_callers_namespace(self, stack,
                                                  golden_text):
        service, directory, _ = stack
        acme = directory.mint_token("acme")
        globex = directory.mint_token("globex")
        leaked = self._embed(service, globex, golden_text,
                             recipient="mole")["xml"]
        status, payload, _ = service.dispatch(
            "POST", "/v1/trace",
            _body(scheme="books", document=leaked), _bearer(acme))
        assert status == 200
        # globex's issued copy is invisible to acme's sweep.
        assert payload["trace"]["verdicts"] == {}
        assert payload["trace"]["accused"] == []
        # globex (were it granted trace) would accuse the mole — prove
        # via the directory, which is what the endpoint calls.
        trace = directory.trace(
            "globex", "books", parse(leaked, strip_whitespace=True))
        assert trace.prime_suspect == "mole"

    def test_scheme_namespaces_are_per_tenant(self, stack):
        service, directory, _ = stack
        acme = directory.mint_token("acme")
        globex = directory.mint_token("globex")
        artefact = bibliography.default_scheme(4).to_dict()
        status, _, _ = service.dispatch(
            "PUT", "/v1/schemes/private",
            json.dumps(artefact).encode(), _bearer(acme))
        assert status == 200
        _, mine, _ = service.dispatch("GET", "/v1/schemes", b"",
                                      _bearer(acme))
        assert sorted(mine["schemes"]) == ["books", "private"]
        _, theirs, _ = service.dispatch("GET", "/v1/schemes", b"",
                                        _bearer(globex))
        assert sorted(theirs["schemes"]) == ["books"]
        status, _, _ = service.dispatch("GET", "/v1/schemes/private",
                                        b"", _bearer(globex))
        assert status == 404

    def test_stats_are_per_tenant(self, stack, golden_text):
        service, directory, _ = stack
        acme = directory.mint_token("acme")
        globex = directory.mint_token("globex")
        self._embed(service, acme, golden_text)
        _, mine, _ = service.dispatch("GET", "/v1/stats", b"",
                                      _bearer(acme))
        assert mine["tenant"]["name"] == "acme"
        assert mine["tenant"]["embedded_documents"] == 1
        assert mine["tenant"]["quota"] == {"requests": None,
                                           "documents": None}
        assert mine["version"] and mine["uptime_s"] >= 0
        _, theirs, _ = service.dispatch("GET", "/v1/stats", b"",
                                        _bearer(globex))
        assert theirs["tenant"]["name"] == "globex"
        assert theirs["tenant"]["embedded_documents"] == 0


class TestRotation:
    def _rotated_stack(self, registry):
        directory = TenantDirectory(
            TenantsConfig.from_dict(ROTATED_CONFIG), registry=registry)
        directory.register_all("books", bibliography.default_scheme(2))
        return WmXMLService(tenants=directory), directory

    def test_old_records_verify_and_trace_after_rotation(
            self, golden_text):
        backend = MemoryBackend()
        directory = TenantDirectory(
            TenantsConfig.from_dict(CONFIG),
            registry=WatermarkRegistry(backend))
        directory.register_all("books", bibliography.default_scheme(2))
        service = WmXMLService(tenants=directory)
        token = directory.mint_token("acme")
        _, old, _ = service.dispatch(
            "POST", "/v1/embed",
            _body(scheme="books", document=golden_text,
                  message="pre-rotation notice"), _bearer(token))
        assert old["key_id"] == 1
        _, old_copy, _ = service.dispatch(
            "POST", "/v1/embed",
            _body(scheme="books", document=golden_text,
                  recipient="before-rotation"), _bearer(token))

        # Rotate: same registry, new key map, generation 2 active.
        service, directory = self._rotated_stack(
            WatermarkRegistry(backend))
        token = directory.mint_token("acme")
        _, new_copy, _ = service.dispatch(
            "POST", "/v1/embed",
            _body(scheme="books", document=golden_text,
                  recipient="after-rotation"), _bearer(token))
        assert new_copy["key_id"] == 2
        assert new_copy["record"]["key_id"] == 2

        # The generation-1 record still verifies: the daemon resolves
        # the recorded key id back to the old subkey.
        status, verdict, _ = service.dispatch(
            "POST", "/v1/detect",
            _body(scheme="books", document=old["xml"],
                  record=old["record"]), _bearer(token))
        assert status == 200 and verdict["result"]["detected"]

        # records?scheme=books spans both generations' fingerprints.
        _, listing, _ = service.dispatch(
            "GET", "/v1/records?scheme=books", b"", _bearer(token))
        assert listing["total"] == 3
        assert [r["key_id"] for r in listing["records"]] == [1, 1, 2]

        # And the trace sweep accuses the right recipient per copy.
        for leaked, culprit in ((old_copy["xml"], "before-rotation"),
                                (new_copy["xml"], "after-rotation")):
            _, traced, _ = service.dispatch(
                "POST", "/v1/trace",
                _body(scheme="books", document=leaked), _bearer(token))
            assert traced["trace"]["prime_suspect"] == culprit

    def test_mixed_generation_detect_batch_is_refused(self,
                                                      golden_text):
        backend = MemoryBackend()
        directory = TenantDirectory(
            TenantsConfig.from_dict(CONFIG),
            registry=WatermarkRegistry(backend))
        directory.register_all("books", bibliography.default_scheme(2))
        token = directory.mint_token("acme")
        old = WmXMLService(tenants=directory).dispatch(
            "POST", "/v1/embed",
            _body(scheme="books", document=golden_text, message="x"),
            _bearer(token))[1]
        service, directory = self._rotated_stack(
            WatermarkRegistry(backend))
        token = directory.mint_token("acme")
        new = service.dispatch(
            "POST", "/v1/embed",
            _body(scheme="books", document=golden_text, message="x"),
            _bearer(token))[1]
        status, payload, _ = service.dispatch(
            "POST", "/v1/detect/batch",
            _body(scheme="books", documents=[old["xml"], new["xml"]],
                  records=[old["record"], new["record"]]),
            _bearer(token))
        assert status == 400
        assert payload["error"]["code"] == "malformed-request"

    def test_rotation_survives_export_import_round_trip(
            self, tmp_path, golden_text):
        db_one = str(tmp_path / "one.db")
        directory = TenantDirectory(
            TenantsConfig.from_dict(CONFIG),
            registry=WatermarkRegistry.open(db_one))
        directory.register_all("books", bibliography.default_scheme(2))
        service = WmXMLService(tenants=directory)
        token = directory.mint_token("acme")
        old = service.dispatch(
            "POST", "/v1/embed",
            _body(scheme="books", document=golden_text,
                  message="gen-one notice"), _bearer(token))[1]
        leaked = service.dispatch(
            "POST", "/v1/embed",
            _body(scheme="books", document=golden_text,
                  recipient="gen-one-mole"), _bearer(token))[1]

        # wmxml records --export jsonl / --import: the migration path.
        export = tmp_path / "dump.jsonl"
        with open(export, "w", encoding="utf-8") as handle:
            directory.registry.export_jsonl(handle)
        db_two = str(tmp_path / "two.db")
        restored = WatermarkRegistry.open(db_two)
        with open(export, "r", encoding="utf-8") as handle:
            restored.import_jsonl(handle)

        # Serve the restored registry under the *rotated* key map.
        service, directory = self._rotated_stack(restored)
        token = directory.mint_token("acme")
        _, listing, _ = service.dispatch(
            "GET", "/v1/records?scheme=books", b"", _bearer(token))
        assert listing["total"] == 2
        assert all(r["tenant"] == "acme" and r["key_id"] == 1
                   for r in listing["records"])
        status, verdict, _ = service.dispatch(
            "POST", "/v1/detect",
            _body(scheme="books", document=old["xml"],
                  record=old["record"]), _bearer(token))
        assert status == 200 and verdict["result"]["detected"]
        _, traced, _ = service.dispatch(
            "POST", "/v1/trace",
            _body(scheme="books", document=leaked["xml"]),
            _bearer(token))
        assert traced["trace"]["prime_suspect"] == "gen-one-mole"


class TestPagingValidation:
    """ISSUE 10 satellite: bad offset/limit is a 400 envelope, not 500.

    Exercised against *both* construction modes so the tenant refactor
    of ``_records`` cannot regress the single-tenant path.
    """

    @pytest.fixture(params=["single", "tenant"])
    def records_service(self, request):
        if request.param == "single":
            from repro.api import WmXMLSystem
            system = WmXMLSystem(
                "paging-key", registry=WatermarkRegistry(MemoryBackend()))
            system.register("books", bibliography.default_scheme(2))
            return WmXMLService(system), {}
        directory = TenantDirectory(
            TenantsConfig.from_dict(CONFIG),
            registry=WatermarkRegistry(MemoryBackend()))
        directory.register_all("books", bibliography.default_scheme(2))
        return (WmXMLService(tenants=directory),
                _bearer(directory.mint_token("acme")))

    @pytest.mark.parametrize("query", [
        "offset=-1", "limit=-1", "offset=-1&limit=-1",
        "offset=abc", "limit=abc", "offset=1.5", "limit=2e3",
        "offset=1&offset=2",
    ])
    def test_bad_paging_is_400(self, records_service, query):
        service, headers = records_service
        status, payload, _ = service.dispatch(
            "GET", f"/v1/records?{query}", b"", headers)
        assert status == 400
        assert payload["error"]["code"] == "malformed-request"

    def test_valid_paging_still_works(self, records_service):
        service, headers = records_service
        status, payload, _ = service.dispatch(
            "GET", "/v1/records?offset=0&limit=5", b"", headers)
        assert status == 200
        assert payload["total"] == 0


class TestSingleTenantUnchanged:
    """The classic daemon must not grow tenancy keys on the wire."""

    @pytest.fixture()
    def single(self):
        from repro.api import WmXMLSystem
        system = WmXMLSystem(
            "solo-key", registry=WatermarkRegistry(MemoryBackend()))
        system.register("books", bibliography.default_scheme(2))
        return WmXMLService(system)

    def test_embed_payload_has_no_tenant_keys(self, single,
                                              golden_text):
        status, payload, _ = single.dispatch(
            "POST", "/v1/embed",
            _body(scheme="books", document=golden_text, message="hi"))
        assert status == 200
        assert "tenant" not in payload and "key_id" not in payload
        assert "tenant" not in payload["record"]
        assert "key_id" not in payload["record"]
        _, listing, _ = single.dispatch("GET", "/v1/records")
        assert "tenant" not in listing["records"][0]
        assert "key_id" not in listing["records"][0]

    def test_healthz_and_stats_gain_version(self, single):
        _, health, _ = single.dispatch("GET", "/v1/healthz")
        from repro import __version__
        assert health["version"] == __version__
        assert health["uptime_s"] >= 0
        _, stats, _ = single.dispatch("GET", "/v1/stats")
        assert stats["version"] == __version__
        assert stats["uptime_s"] >= 0
        assert "tenant" not in stats

    def test_no_auth_required(self, single):
        status, _, _ = single.dispatch("GET", "/v1/stats")
        assert status == 200


class TestLiveClient:
    """The SDK against a real multi-tenant loopback daemon."""

    @pytest.fixture(scope="class")
    def live(self, tmp_path_factory):
        config = json.loads(json.dumps(CONFIG))
        # A refillable-in-test-time quota: 30/min = one token per 2s.
        config["tenants"]["metered"]["quota"] = {
            "requests_per_minute": 30, "request_burst": 1}
        directory = TenantDirectory(
            TenantsConfig.from_dict(config),
            registry=WatermarkRegistry(MemoryBackend()))
        directory.register_all("books", bibliography.default_scheme(2))
        service = WmXMLService(tenants=directory)
        with running_server(service) as server:
            yield (f"http://127.0.0.1:{server.server_address[1]}",
                   directory, service)

    def test_token_client_round_trip(self, live, golden_text):
        base, directory, _ = live
        client = WmXMLClient(base, scheme="books",
                             token=directory.mint_token("acme"))
        result = client.embed(golden_text, "(c) acme")
        assert result.record.tenant == "acme"
        assert result.record.key_id == 1
        assert client.detect(result.xml, result.record).detected
        assert client.records()["total"] >= 1
        assert client.stats()["tenant"]["name"] == "acme"

    def test_tokenless_client_is_refused(self, live, golden_text):
        base, _, _ = live
        client = WmXMLClient(base, scheme="books")
        with pytest.raises(RemoteServiceError) as excinfo:
            client.embed(golden_text, "hi")
        assert excinfo.value.code == "unauthorized"
        assert excinfo.value.http_status == 401
        # healthz stays open even for the tokenless client.
        assert client.healthz()["status"] in ("ok", "degraded")

    def test_client_honours_retry_after_on_429(self, live):
        base, directory, service = live
        client = WmXMLClient(base, token=directory.mint_token("metered"))
        assert client.stats()["tenant"]["name"] == "metered"  # burst
        start = time.monotonic()
        stats = client.stats()  # 429 -> sleep Retry-After -> succeed
        elapsed = time.monotonic() - start
        assert stats["tenant"]["name"] == "metered"
        counters = stats["tenant"]
        # The retried request 429'd at least once and the client waited
        # the advertised whole-second Retry-After before succeeding.
        assert counters["errors"] >= 1
        assert elapsed >= 1.0
