"""Golden-vector lock on the embed/detect pipeline.

The hot-path overhaul (precomputed-state PRF, indexed tree, single-pass
shredder) must preserve outputs *bit-for-bit*: the marked document, the
stored query set Q, and every detection statistic.  The SHA-256 digests
below were captured from the seed implementation before the refactor;
any optimisation that changes a single selected group, perturbed value,
or vote will flip a digest and fail here.
"""

import hashlib
import json

import pytest

from repro.core import Watermark, WmXMLDecoder, WmXMLEncoder
from repro.datasets import bibliography, library
from repro.rewriting import reorganize
from repro.xmlmodel import serialize

#: Captured from the seed implementation (commit 35d2983) with the exact
#: configs used in the fixtures below.
GOLDEN = {
    "bibliography": {
        "marked_sha256":
            "e4be42bf4221ef09cf9fcfd618cb373c773758bea13c6b4206fce51d229e3833",
        "record_sha256":
            "f560a2be927e49a15d9bf452b13fe5e3f5031a72147a446c4d96c48bf0ce303d",
        "queries": 64,
        "nodes_modified": 43,
        "selected_groups": 64,
        "votes_total": 87,
        "votes_matching": 87,
        "queries_answered": 64,
    },
    "library": {
        "marked_sha256":
            "907c9235e9f1e0a420fcac45a36e7087138859392a216b63b5c338fae6b75e21",
        "record_sha256":
            "f86230e7992d81ffe4aa6e6d78adf35584e5bd51179a079bef687e908e9c553d",
        "queries": 41,
        "nodes_modified": 33,
        "selected_groups": 41,
        "votes_total": 53,
        "votes_matching": 53,
        "queries_answered": 41,
    },
    "bibliography-reorganized": {
        "marked_sha256":
            "e65f5a7d610bc5bedde90d9df7e71fd8f46624c3165788ec2edd4d2a8df87442",
        "votes_total": 126,
        "votes_matching": 126,
        "queries_answered": 64,
    },
}


def _embed_bibliography():
    document = bibliography.generate_document(
        bibliography.BibliographyConfig(books=60, editors=6, seed=1234))
    scheme = bibliography.default_scheme(2)
    watermark = Watermark.from_message("(c) golden")
    result = WmXMLEncoder(scheme, "golden-key-bib").embed(document, watermark)
    return scheme, watermark, "golden-key-bib", result


def _embed_library():
    document = library.generate_document(library.LibraryConfig(
        items=60, seed=99))
    scheme = library.default_scheme(3)
    watermark = Watermark.from_message("GOLD")
    result = WmXMLEncoder(scheme, "golden-key-lib").embed(document, watermark)
    return scheme, watermark, "golden-key-lib", result


EMBEDDERS = {
    "bibliography": _embed_bibliography,
    "library": _embed_library,
}


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("profile", sorted(EMBEDDERS))
def test_marked_document_and_record_are_bit_identical(profile):
    golden = GOLDEN[profile]
    scheme, watermark, key, result = EMBEDDERS[profile]()

    assert _sha256(serialize(result.document)) == golden["marked_sha256"]
    record_json = json.dumps(result.record.to_dict(), sort_keys=True)
    assert _sha256(record_json) == golden["record_sha256"]
    assert len(result.record.queries) == golden["queries"]
    assert result.stats.nodes_modified == golden["nodes_modified"]
    assert result.stats.selected_groups == golden["selected_groups"]


@pytest.mark.parametrize("profile", sorted(EMBEDDERS))
def test_detection_outcome_is_unchanged(profile):
    golden = GOLDEN[profile]
    scheme, watermark, key, result = EMBEDDERS[profile]()
    outcome = WmXMLDecoder(key).detect(
        result.document, result.record, scheme.shape, expected=watermark)

    assert outcome.detected
    assert outcome.votes_total == golden["votes_total"]
    assert outcome.votes_matching == golden["votes_matching"]
    assert outcome.queries_answered == golden["queries_answered"]
    assert outcome.queries_rejected == 0


@pytest.mark.parametrize("profile", sorted(EMBEDDERS))
def test_indexed_detection_matches_scan_detection(profile):
    scheme, watermark, key, result = EMBEDDERS[profile]()
    decoder = WmXMLDecoder(key)
    scan = decoder.detect(result.document, result.record, scheme.shape,
                          expected=watermark)
    indexed = decoder.detect(result.document, result.record, scheme.shape,
                             expected=watermark, indexed=True)

    assert indexed.votes_total == scan.votes_total
    assert indexed.votes_matching == scan.votes_matching
    assert indexed.queries_answered == scan.queries_answered
    assert indexed.detected == scan.detected


def test_reorganized_detection_is_unchanged():
    golden = GOLDEN["bibliography-reorganized"]
    scheme, watermark, key, result = _embed_bibliography()
    target = bibliography.publisher_shape()
    reorganized = reorganize(result.document, scheme.shape, target).document

    assert _sha256(serialize(reorganized)) == golden["marked_sha256"]
    outcome = WmXMLDecoder(key).detect(
        reorganized, result.record, target, expected=watermark)
    assert outcome.detected
    assert outcome.votes_total == golden["votes_total"]
    assert outcome.votes_matching == golden["votes_matching"]
    assert outcome.queries_answered == golden["queries_answered"]
