"""Unit tests for the XPath core function library."""

import math

import pytest

from repro.xmlmodel import parse
from repro.xpath import XPathFunctionError, evaluate_xpath
from repro.xpath.errors import XPathTypeError

DOC = parse(
    "<db>"
    "<item><name>alpha beta</name><price>10.5</price></item>"
    "<item><name>gamma</name><price>2</price></item>"
    "<item><name>  spaced   out  </name><price>-3.5</price></item>"
    "</db>"
)


def ev(expr):
    return evaluate_xpath(DOC, expr)


class TestStringFunctions:
    def test_string_of_number(self):
        assert ev("string(3.0)") == "3"
        assert ev("string(3.25)") == "3.25"

    def test_string_of_boolean(self):
        assert ev("string(true())") == "true"
        assert ev("string(false())") == "false"

    def test_string_of_node_set_takes_first(self):
        assert ev("string(/db/item/name)") == "alpha beta"

    def test_string_of_empty_node_set(self):
        assert ev("string(/db/missing)") == ""

    def test_concat(self):
        assert ev("concat('a', 'b', 'c')") == "abc"

    def test_concat_arity(self):
        with pytest.raises(XPathFunctionError):
            ev("concat('a')")

    def test_contains(self):
        assert ev("contains('database', 'tab')") is True
        assert ev("contains('database', 'xyz')") is False

    def test_starts_with(self):
        assert ev("starts-with('database', 'data')") is True
        assert ev("starts-with('database', 'base')") is False

    def test_ends_with(self):
        assert ev("ends-with('database', 'base')") is True

    def test_substring(self):
        assert ev("substring('12345', 2, 3)") == "234"
        assert ev("substring('12345', 2)") == "2345"
        assert ev("substring('12345', 0)") == "12345"
        assert ev("substring('12345', 1.5, 2.6)") == "234"

    def test_substring_before_after(self):
        assert ev("substring-before('1999/04/01', '/')") == "1999"
        assert ev("substring-after('1999/04/01', '/')") == "04/01"
        assert ev("substring-before('abc', 'x')") == ""
        assert ev("substring-after('abc', 'x')") == ""

    def test_string_length(self):
        assert ev("string-length('hello')") == 5.0

    def test_normalize_space(self):
        assert ev("normalize-space('  a   b ')") == "a b"
        assert ev("normalize-space(/db/item[3]/name)") == "spaced out"

    def test_translate(self):
        assert ev("translate('bar', 'abc', 'ABC')") == "BAr"
        assert ev("translate('--aaa--', 'abc-', 'ABC')") == "AAA"


class TestNumberFunctions:
    def test_number_conversions(self):
        assert ev("number('12.5')") == 12.5
        assert math.isnan(ev("number('abc')"))
        assert ev("number(true())") == 1.0

    def test_number_of_node_set(self):
        assert ev("number(/db/item/price)") == 10.5

    def test_sum(self):
        assert ev("sum(/db/item/price)") == pytest.approx(9.0)

    def test_sum_requires_node_set(self):
        with pytest.raises(XPathFunctionError):
            ev("sum(3)")

    def test_floor_ceiling(self):
        assert ev("floor(2.6)") == 2.0
        assert ev("ceiling(2.1)") == 3.0
        assert ev("floor(-2.5)") == -3.0

    def test_round(self):
        assert ev("round(2.5)") == 3.0
        assert ev("round(-2.5)") == -2.0  # rounds towards +inf
        assert ev("round(2.4)") == 2.0
        assert math.isnan(ev("round(number('x'))"))


class TestBooleanFunctions:
    def test_boolean_conversions(self):
        assert ev("boolean(1)") is True
        assert ev("boolean(0)") is False
        assert ev("boolean('')") is False
        assert ev("boolean('x')") is True
        assert ev("boolean(/db/item)") is True
        assert ev("boolean(/db/missing)") is False

    def test_not(self):
        assert ev("not(false())") is True

    def test_nan_is_false(self):
        assert ev("boolean(number('nope'))") is False


class TestNodeSetFunctions:
    def test_count(self):
        assert ev("count(/db/item)") == 3.0

    def test_count_requires_node_set(self):
        with pytest.raises(XPathFunctionError):
            ev("count('str')")

    def test_name(self):
        assert ev("name(/db/item)") == "item"
        assert ev("name(/db/missing)") == ""

    def test_unknown_function(self):
        with pytest.raises(XPathFunctionError):
            ev("no-such-function()")

    def test_bad_arity(self):
        with pytest.raises(XPathFunctionError):
            ev("count()")


class TestContextFunctions:
    def test_position_in_predicate(self):
        names = evaluate_xpath(DOC, "/db/item[position() < 3]/name")
        assert len(names) == 2

    def test_last_in_predicate(self):
        names = evaluate_xpath(DOC, "/db/item[position() = last()]/name")
        assert len(names) == 1

    def test_string_no_arg_uses_context(self):
        result = evaluate_xpath(DOC, "/db/item[string() != '']")
        assert len(result) == 3

    def test_string_length_no_arg(self):
        result = evaluate_xpath(DOC, "/db/item/name[string-length() > 6]")
        assert len(result) == 2
