"""Graceful degradation: the daemon under injected failure.

The contract this module locks down:

* A fault inside dispatch or after routing becomes an **error
  envelope**, never a dropped connection or a hung request.
* Registry storage going dark flips the daemon to **degraded**:
  ``/v1/healthz`` keeps answering 200 (status ``"degraded"``),
  registry-only endpoints answer **503 + Retry-After**, and embeds
  keep serving flagged ``"recorded": false``.  A successful registry
  read self-heals back to ``"ok"``.
* **SIGTERM drains**: a server shutdown completes in-flight requests
  before closing the socket.
* The **client** honors ``Retry-After`` on 503 (capped), retries
  refused connections always, retries mid-request disconnects only
  for idempotent requests, and refuses to auto-retry a disconnected
  embed (the double-append hazard).
"""

import socket
import threading
import time

import pytest

from repro import faults
from repro.api import WmXMLSystem
from repro.datasets import bibliography
from repro.faults import injected
from repro.registry import WatermarkRegistry
from repro.service import (
    REQUEST_FORMAT,
    RemoteServiceError,
    ServiceUnavailableError,
    WmXMLClient,
    WmXMLService,
    running_server,
)
from repro.service.client import (
    IDEMPOTENT_POST_PATHS,
    RETRY_AFTER_CAP,
    _is_idempotent,
    _retry_after_delay,
)
from repro.xmlmodel import serialize

import json

KEY = "resilience-key"


def _request_body(**fields) -> bytes:
    return json.dumps({"format": REQUEST_FORMAT, **fields}).encode()


def _doc_text(seed: int = 77) -> str:
    return serialize(bibliography.generate_document(
        bibliography.BibliographyConfig(books=40, editors=4, seed=seed)))


def _service(tmp_path, **kwargs) -> WmXMLService:
    registry = WatermarkRegistry.open(str(tmp_path / "reg.db"))
    system = WmXMLSystem(KEY, registry=registry, issuer="resilience")
    system.register("books", bibliography.default_scheme(2))
    return WmXMLService(system, **kwargs)


@pytest.fixture(autouse=True)
def clean_slate():
    faults.disarm()
    yield
    faults.disarm()


# ---------------------------------------------------------------------------
# Faults become envelopes
# ---------------------------------------------------------------------------

class TestFaultEnvelopes:
    def test_dispatch_fault_is_an_error_envelope(self, tmp_path):
        service = _service(tmp_path)
        with injected("service.dispatch"):
            status, payload, _ = service.dispatch("GET", "/v1/healthz")
        assert status == 500
        assert payload["ok"] is False
        assert payload["error"]["code"] == "fault-injected"

    def test_late_response_fault_is_an_error_envelope(self, tmp_path):
        service = _service(tmp_path)
        with injected("service.response"):
            status, payload, _ = service.dispatch("GET", "/v1/healthz")
        assert status == 500
        assert payload["error"]["code"] == "fault-injected"

    def test_delay_fault_still_answers(self, tmp_path):
        service = _service(tmp_path)
        with injected("service.dispatch", "delay", ms=10):
            status, payload, _ = service.dispatch("GET", "/v1/healthz")
        assert status == 200 and payload["ok"] is True


# ---------------------------------------------------------------------------
# Degraded mode: registry storage dark
# ---------------------------------------------------------------------------

class TestDegradedMode:
    def test_dark_registry_503s_registry_endpoints(self, tmp_path):
        service = _service(tmp_path)
        with injected("registry.sqlite.read", error="sqlite"):
            status, payload, headers = service.dispatch(
                "GET", "/v1/records")
            assert status == 503
            assert payload["error"]["code"] == "registry-unavailable"
            assert headers["Retry-After"] == "1"
            # stays 503 without re-poking the dead backend each time
            status, payload, headers = service.dispatch(
                "GET", "/v1/records")
            assert status == 503
            assert headers["Retry-After"] == "1"

    def test_retry_after_is_configurable(self, tmp_path):
        service = _service(tmp_path, retry_after=7)
        with injected("registry.sqlite.read", error="sqlite"):
            status, _, headers = service.dispatch("GET", "/v1/records")
        assert status == 503
        assert headers["Retry-After"] == "7"

    def test_healthz_reports_degraded_but_stays_200(self, tmp_path):
        service = _service(tmp_path)
        with injected("registry.sqlite.read", error="sqlite"):
            status, payload, _ = service.dispatch("GET", "/v1/healthz")
            assert status == 200
            assert payload["status"] == "degraded"
            assert payload["registry"]["available"] is False

    def test_embed_serves_unrecorded_while_degraded(self, tmp_path):
        service = _service(tmp_path)
        text = _doc_text()
        with injected("registry.sqlite.read", error="sqlite"):
            service.dispatch("GET", "/v1/healthz")  # trip the flag
            status, payload, _ = service.dispatch(
                "POST", "/v1/embed",
                _request_body(scheme="books", document=text,
                              recipient="alice"))
            assert status == 200
            assert payload["recorded"] is False
        # nothing reached the ledger
        assert service.system.registry.count() == 0

    def test_failed_append_degrades_and_serves_unrecorded(self, tmp_path):
        service = _service(tmp_path)
        text = _doc_text()
        with injected("registry.sqlite.commit", error="sqlite", times=1):
            status, payload, _ = service.dispatch(
                "POST", "/v1/embed",
                _request_body(scheme="books", document=text,
                              recipient="alice"))
        assert status == 200
        assert payload["recorded"] is False
        assert service.system.registry.count() == 0
        # the batched append persisted nothing, so the retry is safe —
        # and the recovered daemon records it exactly once
        status, payload, _ = service.dispatch(
            "POST", "/v1/embed",
            _request_body(scheme="books", document=text,
                          recipient="alice"))
        assert status == 200
        assert payload["recorded"] is True
        assert service.system.registry.count() == 1
        assert service.system.registry.verify_chain().intact

    def test_recovery_self_heals(self, tmp_path):
        service = _service(tmp_path)
        with injected("registry.sqlite.read", error="sqlite"):
            status, payload, _ = service.dispatch("GET", "/v1/healthz")
            assert payload["status"] == "degraded"
        # storage is back: the next probe clears the flag
        status, payload, _ = service.dispatch("GET", "/v1/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        status, payload, _ = service.dispatch("GET", "/v1/records")
        assert status == 200

    def test_degraded_embed_output_matches_recorded_embed(self, tmp_path):
        """Unrecorded serving is a flag, not a different embedding."""
        service = _service(tmp_path)
        text = _doc_text()
        with injected("registry.sqlite.read", error="sqlite"):
            service.dispatch("GET", "/v1/healthz")
            _, degraded, _ = service.dispatch(
                "POST", "/v1/embed",
                _request_body(scheme="books", document=text,
                              recipient="alice"))
        _, recorded, _ = service.dispatch(
            "POST", "/v1/embed",
            _request_body(scheme="books", document=text,
                          recipient="alice"))
        assert degraded["recorded"] is False
        assert recorded["recorded"] is True
        assert degraded["xml"] == recorded["xml"]

    def test_detect_keeps_serving_while_degraded(self, tmp_path):
        service = _service(tmp_path)
        text = _doc_text()
        _, embed, _ = service.dispatch(
            "POST", "/v1/embed",
            _request_body(scheme="books", document=text,
                          message="(c) wm"))
        with injected("registry.sqlite.read", error="sqlite"):
            service.dispatch("GET", "/v1/healthz")
            status, payload, _ = service.dispatch(
                "POST", "/v1/detect",
                _request_body(scheme="books", document=embed["xml"],
                              record=embed["record"],
                              expected="(c) wm"))
        assert status == 200
        assert payload["result"]["detected"] is True

    def test_no_registry_daemon_has_no_recorded_flag(self, tmp_path):
        system = WmXMLSystem(KEY)
        system.register("books", bibliography.default_scheme(2))
        service = WmXMLService(system)
        status, payload, _ = service.dispatch(
            "POST", "/v1/embed",
            _request_body(scheme="books", document=_doc_text(),
                          message="(c) wm"))
        assert status == 200
        assert "recorded" not in payload


# ---------------------------------------------------------------------------
# In-flight accounting and drain
# ---------------------------------------------------------------------------

class TestDrain:
    def test_idle_service_drains_immediately(self, tmp_path):
        service = _service(tmp_path)
        assert service.inflight == 0
        assert service.drain(timeout=0.1) is True

    def test_drain_waits_for_inflight_requests(self, tmp_path):
        service = _service(tmp_path)
        service.begin_request()
        assert service.inflight == 1
        assert service.drain(timeout=0.05) is False

        def finish():
            time.sleep(0.1)
            service.end_request()

        threading.Thread(target=finish).start()
        assert service.drain(timeout=2.0) is True
        assert service.inflight == 0

    def test_shutdown_completes_inflight_request(self, tmp_path):
        """The acceptance scenario: SIGTERM (= leaving running_server)
        drains — a request being processed gets its response before
        the socket closes."""
        service = _service(tmp_path)
        outcome = {}

        with injected("service.response", "delay", ms=400, times=1):
            with running_server(service, port=0, quiet=True) as server:
                host, port = server.server_address[:2]
                client = WmXMLClient(f"http://{host}:{port}")

                def request():
                    outcome["health"] = client.healthz()

                thread = threading.Thread(target=request)
                thread.start()
                # let the request reach the (slowed) handler, then
                # tear the server down around it
                deadline = time.monotonic() + 2.0
                while (service.inflight == 0
                       and time.monotonic() < deadline):
                    time.sleep(0.01)
        thread.join(timeout=5)
        assert outcome["health"]["status"] == "ok"


# ---------------------------------------------------------------------------
# Client: Retry-After, idempotency, disconnects
# ---------------------------------------------------------------------------

class TestRetryAfterParsing:
    def test_honors_delta_seconds(self):
        assert _retry_after_delay("2", fallback=10.0) == 2.0

    def test_caps_hostile_header(self):
        assert _retry_after_delay("9999", fallback=0.1) == RETRY_AFTER_CAP

    def test_garbage_header_uses_fallback(self):
        assert _retry_after_delay("Wed, 21 Oct 2026 07:28:00 GMT",
                                  fallback=0.3) == 0.3

    def test_missing_header_uses_capped_fallback(self):
        assert _retry_after_delay(None, fallback=99.0) == RETRY_AFTER_CAP

    def test_negative_header_clamps_to_zero(self):
        assert _retry_after_delay("-5", fallback=1.0) == 0.0


class TestIdempotencyClassification:
    @pytest.mark.parametrize("method,path,expected", [
        ("GET", "/v1/records?recipient=a", True),
        ("PUT", "/v1/schemes/books", True),
        ("POST", "/v1/detect", True),
        ("POST", "/v1/detect/batch", True),
        ("POST", "/v1/trace", True),
        ("POST", "/v1/embed", False),
        ("POST", "/v1/embed/batch", False),
    ])
    def test_classification(self, method, path, expected):
        assert _is_idempotent(method, path) is expected

    def test_embed_paths_never_listed_idempotent(self):
        assert "/v1/embed" not in IDEMPOTENT_POST_PATHS
        assert "/v1/embed/batch" not in IDEMPOTENT_POST_PATHS


class TestClientAgainstDegradedDaemon:
    def test_client_retries_503_honoring_retry_after(self, tmp_path):
        service = _service(tmp_path, retry_after=0)
        with running_server(service, port=0, quiet=True) as server:
            host, port = server.server_address[:2]
            client = WmXMLClient(f"http://{host}:{port}",
                                 retries=3, retry_delay=0.01)
            with injected("registry.sqlite.read", error="sqlite",
                          times=1):
                # first attempt 503s and trips degraded mode; the
                # retry probes storage (now healthy) and succeeds
                payload = client.records()
        assert payload["total"] == 0

    def test_client_surfaces_503_when_retries_exhausted(self, tmp_path):
        service = _service(tmp_path, retry_after=0)
        with running_server(service, port=0, quiet=True) as server:
            host, port = server.server_address[:2]
            client = WmXMLClient(f"http://{host}:{port}",
                                 retries=1, retry_delay=0.01)
            with injected("registry.sqlite.read", error="sqlite"):
                with pytest.raises(RemoteServiceError) as excinfo:
                    client.records()
        assert excinfo.value.code == "registry-unavailable"
        assert excinfo.value.http_status == 503


class _DisconnectingServer:
    """Accepts, reads the request, closes without answering —
    the shape of a daemon killed mid-request."""

    def __init__(self):
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.accepts = 0
        self._stop = False
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    @property
    def url(self) -> str:
        host, port = self.sock.getsockname()
        return f"http://{host}:{port}"

    def _serve(self):
        self.sock.settimeout(0.1)
        while not self._stop:
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            self.accepts += 1
            conn.settimeout(0.5)
            try:
                while conn.recv(65536):
                    pass
            except socket.timeout:
                pass
            except OSError:
                pass
            finally:
                conn.close()

    def close(self):
        self._stop = True
        self.thread.join(timeout=2)
        self.sock.close()


class TestClientDisconnects:
    def test_disconnected_embed_is_not_retried(self):
        server = _DisconnectingServer()
        try:
            client = WmXMLClient(server.url, scheme="books",
                                 retries=3, retry_delay=0.01)
            with pytest.raises(RemoteServiceError) as excinfo:
                client.embed("<a/>", "(c) wm")
            assert excinfo.value.code == "connection-closed"
            assert "not idempotent" in str(excinfo.value)
            assert "verify server-side state" in str(excinfo.value)
            # exactly one connection: the embed was NOT replayed
            assert server.accepts == 1
        finally:
            server.close()

    def test_disconnected_get_is_retried(self):
        server = _DisconnectingServer()
        try:
            client = WmXMLClient(server.url, retries=2, retry_delay=0.01)
            with pytest.raises(ServiceUnavailableError):
                client.records()
            # idempotent: initial attempt + both retries
            assert server.accepts == 3
        finally:
            server.close()

    def test_disconnected_detect_is_retried(self):
        server = _DisconnectingServer()
        try:
            client = WmXMLClient(server.url, scheme="books",
                                 retries=1, retry_delay=0.01)
            with pytest.raises(ServiceUnavailableError):
                client.detect("<a/>", {"format": "bogus"})
            assert server.accepts == 2
        finally:
            server.close()
