"""Unit tests for XPath evaluation against the tree model."""

import math

import pytest

from repro.xmlmodel import parse
from repro.xpath import (
    AttributeNode,
    XPathTypeError,
    compile_xpath,
    evaluate_xpath,
    select,
    select_strings,
)

DB1 = (
    "<db>"
    '<book publisher="mkp">'
    "<title>Readings in Database Systems</title>"
    "<author>Stonebraker</author>"
    "<author>Hellerstein</author>"
    "<editor>Harrypotter</editor>"
    "<year>1998</year>"
    "</book>"
    '<book publisher="acm">'
    "<title>Database Design</title>"
    "<writer>Berstein</writer>"
    "<writer>Newcomer</writer>"
    "<editor>Gamer</editor>"
    "<year>1998</year>"
    "</book>"
    "</db>"
)


@pytest.fixture()
def db1():
    return parse(DB1)


class TestAbsolutePaths:
    def test_root_step(self, db1):
        assert select(db1, "/db") == [db1.root]

    def test_child_chain(self, db1):
        titles = select_strings(db1, "/db/book/title")
        assert titles == ["Readings in Database Systems", "Database Design"]

    def test_wrong_root_empty(self, db1):
        assert select(db1, "/database") == []

    def test_bare_slash(self, db1):
        assert select(db1, "/") == [db1.root]

    def test_wildcard(self, db1):
        tags = [n.tag for n in select(db1, "/db/book/*")]
        assert tags == ["title", "author", "author", "editor", "year",
                        "title", "writer", "writer", "editor", "year"]


class TestDescendant:
    def test_double_slash_root(self, db1):
        assert len(select(db1, "//author")) == 2
        assert len(select(db1, "//book")) == 2

    def test_double_slash_mid(self, db1):
        assert select_strings(db1, "/db//year") == ["1998", "1998"]

    def test_descendant_axis(self, db1):
        assert len(select(db1, "/db/descendant::title")) == 2

    def test_descendant_or_self_includes_self(self, db1):
        result = select(db1.root, "descendant-or-self::db")
        assert result == [db1.root]

    def test_document_order(self, db1):
        names = [n.tag for n in select(db1, "//*")]
        assert names[0] == "db"
        assert names[1] == "book"
        assert names[2] == "title"


class TestAttributes:
    def test_attribute_axis(self, db1):
        values = select_strings(db1, "/db/book/@publisher")
        assert values == ["mkp", "acm"]

    def test_attribute_nodes(self, db1):
        nodes = select(db1, "/db/book/@publisher")
        assert all(isinstance(n, AttributeNode) for n in nodes)
        assert nodes[0].owner.tag == "book"

    def test_attribute_wildcard(self, db1):
        assert len(select(db1, "/db/book/@*")) == 2

    def test_missing_attribute(self, db1):
        assert select(db1, "/db/book/@isbn") == []

    def test_attribute_predicate(self, db1):
        titles = select_strings(db1, "/db/book[@publisher='acm']/title")
        assert titles == ["Database Design"]

    def test_attribute_write_through(self, db1):
        node = select(db1, "/db/book/@publisher")[0]
        node.set_value("elsevier")
        assert select_strings(db1, "/db/book/@publisher")[0] == "elsevier"


class TestPredicates:
    def test_value_predicate(self, db1):
        authors = select_strings(
            db1, "/db/book[title='Readings in Database Systems']/author")
        assert authors == ["Stonebraker", "Hellerstein"]

    def test_positional_predicate(self, db1):
        assert select_strings(db1, "/db/book[1]/title") == [
            "Readings in Database Systems"]
        assert select_strings(db1, "/db/book[2]/title") == ["Database Design"]

    def test_last_function(self, db1):
        assert select_strings(db1, "/db/book[last()]/title") == [
            "Database Design"]

    def test_position_function(self, db1):
        assert select_strings(db1, "/db/book[position()=2]/title") == [
            "Database Design"]

    def test_and_predicate(self, db1):
        result = select(db1, "/db/book[year='1998' and editor='Gamer']")
        assert len(result) == 1

    def test_or_predicate(self, db1):
        result = select(db1, "/db/book[editor='Gamer' or editor='Harrypotter']")
        assert len(result) == 2

    def test_existence_predicate(self, db1):
        assert len(select(db1, "/db/book[author]")) == 1
        assert len(select(db1, "/db/book[writer]")) == 1

    def test_chained_predicates(self, db1):
        result = select(db1, "/db/book[year='1998'][1]")
        assert len(result) == 1
        assert result[0].find_text("title") == "Readings in Database Systems"

    def test_nested_path_predicate(self, db1):
        # Predicate containing a relative path with its own predicate.
        result = select(db1, "/db[book[title='Database Design']]")
        assert result == [db1.root]

    def test_numeric_comparison_predicate(self, db1):
        assert len(select(db1, "/db/book[year > 1997]")) == 2
        assert select(db1, "/db/book[year > 1998]") == []


class TestNavigation:
    def test_parent_step(self, db1):
        result = select(db1, "/db/book/title/..")
        assert [n.tag for n in result] == ["book", "book"]

    def test_self_step(self, db1):
        assert select(db1, "/db/.") == [db1.root]

    def test_ancestor_axis(self, db1):
        result = select(db1, "//title/ancestor::db")
        assert result == [db1.root]

    def test_following_sibling(self, db1):
        result = select_strings(
            db1, "/db/book[1]/title/following-sibling::author")
        assert result == ["Stonebraker", "Hellerstein"]

    def test_preceding_sibling(self, db1):
        result = select_strings(
            db1, "/db/book[1]/year/preceding-sibling::title")
        assert result == ["Readings in Database Systems"]

    def test_text_nodes(self, db1):
        texts = select(db1, "/db/book[1]/title/text()")
        assert len(texts) == 1
        assert texts[0].value == "Readings in Database Systems"


class TestUnionAndFilter:
    def test_union(self, db1):
        result = select_strings(db1, "/db/book/author | /db/book/writer")
        assert result == ["Stonebraker", "Hellerstein", "Berstein", "Newcomer"]

    def test_union_document_order(self, db1):
        result = [n.tag for n in
                  select(db1, "/db/book/year | /db/book/title")]
        assert result == ["title", "year", "title", "year"]

    def test_union_dedup(self, db1):
        assert len(select(db1, "/db/book | /db/book")) == 2

    def test_filter_positional(self, db1):
        result = select_strings(db1, "(//book)[2]/title")
        assert result == ["Database Design"]

    def test_filter_trailing_descendant(self, db1):
        result = select_strings(db1, "(/db/book[1])//author")
        assert result == ["Stonebraker", "Hellerstein"]

    def test_union_type_error(self, db1):
        with pytest.raises(XPathTypeError):
            evaluate_xpath(db1, "1 | 2")


class TestScalarResults:
    def test_count(self, db1):
        assert evaluate_xpath(db1, "count(/db/book)") == 2.0
        assert evaluate_xpath(db1, "count(//author)") == 2.0

    def test_arithmetic(self, db1):
        assert evaluate_xpath(db1, "1 + 2 * 3") == 7.0
        assert evaluate_xpath(db1, "10 div 4") == 2.5
        assert evaluate_xpath(db1, "10 mod 3") == 1.0
        assert evaluate_xpath(db1, "-(2 + 3)") == -5.0

    def test_div_by_zero(self, db1):
        assert evaluate_xpath(db1, "1 div 0") == math.inf
        assert math.isnan(evaluate_xpath(db1, "0 div 0"))
        assert math.isnan(evaluate_xpath(db1, "5 mod 0"))

    def test_boolean_ops(self, db1):
        assert evaluate_xpath(db1, "true() and not(false())") is True
        assert evaluate_xpath(db1, "false() or false()") is False

    def test_comparison_node_set_string(self, db1):
        assert evaluate_xpath(db1, "/db/book/year = '1998'") is True
        assert evaluate_xpath(db1, "/db/book/year = '2001'") is False

    def test_comparison_node_set_number(self, db1):
        assert evaluate_xpath(db1, "/db/book/year < 2000") is True
        assert evaluate_xpath(db1, "/db/book/year > 1998") is False

    def test_node_set_vs_node_set(self, db1):
        # Two node-sets compare true when any pair matches.
        assert evaluate_xpath(db1, "/db/book[1]/year = /db/book[2]/year") is True
        assert evaluate_xpath(
            db1, "/db/book[1]/title = /db/book[2]/title") is False

    def test_select_on_scalar_raises(self, db1):
        with pytest.raises(XPathTypeError):
            select(db1, "count(//book)")


class TestCompiledQuery:
    def test_reuse_across_documents(self):
        query = compile_xpath("/db/book/title")
        a = parse("<db><book><title>A</title></book></db>")
        b = parse("<db><book><title>B</title></book></db>")
        assert query.select_strings(a) == ["A"]
        assert query.select_strings(b) == ["B"]

    def test_cache_returns_same_object(self):
        assert compile_xpath("/db/unique-cache-test") is compile_xpath(
            "/db/unique-cache-test")

    def test_str_and_repr(self):
        query = compile_xpath("/db/book")
        assert str(query) == "/db/book"
        assert "XPathQuery" in repr(query)

    def test_relative_query_from_node(self, db1):
        book = db1.root.child_elements("book")[1]
        assert select_strings(book, "title") == ["Database Design"]
        assert select_strings(book, "writer") == ["Berstein", "Newcomer"]

    def test_absolute_query_from_node(self, db1):
        book = db1.root.child_elements("book")[1]
        # Absolute queries climb to the root regardless of context.
        assert len(select(book, "/db/book")) == 2


class TestPaperQueries:
    """The exact queries quoted in the paper's sections 2.1-2.2."""

    def test_db1_author_query(self, db1):
        # "db/book[title='DB Design']/author" (paper uses the short title).
        result = select_strings(
            db1, "/db/book[title='Database Design']/writer")
        assert result == ["Berstein", "Newcomer"]

    def test_db2_rewritten_query(self):
        db2 = parse(
            "<db>"
            '<publisher name="mkp">'
            '<author name="Stonebraker">'
            "<book>Readings in Database Systems</book>"
            "<book>XML Query Processing</book>"
            "</author>"
            '<author name="Hellerstein">'
            "<book>Readings in Database Systems</book>"
            "<book>Relational Data Integration</book>"
            "</author>"
            "</publisher>"
            "</db>"
        )
        result = select_strings(
            db2,
            "/db/publisher/author[book='Readings in Database Systems']/@name")
        assert result == ["Stonebraker", "Hellerstein"]
