"""Cross-module integration tests: the full WmXML lifecycle per dataset.

Each scenario exercises generate -> validate -> embed -> attack ->
(rewrite) -> detect -> usability in one flow, over all three demo
domains and both baselines where relevant.
"""

import pytest

from repro.attacks import (
    CompositeAttack,
    NodeInsertionAttack,
    RedundancyUnificationAttack,
    ReductionAttack,
    ReorganizationAttack,
    SiblingShuffleAttack,
    ValueAlterationAttack,
)
from repro.core import (
    UsabilityBaseline,
    Watermark,
    WatermarkRecord,
    WmXMLDecoder,
    WmXMLEncoder,
)
from repro.datasets import bibliography, jobs, library
from repro.semantics import infer_schema, is_valid
from repro.xmlmodel import parse, serialize

KEY = "integration-secret"
MESSAGE = "(c) owner 2005"


def lifecycle(module, config, source_shape, alt_shape, fd):
    """Run the full pipeline for one dataset; return all artefacts."""
    document = module.generate_document(config)
    scheme = module.default_scheme(gamma=2)
    watermark = Watermark.from_message(MESSAGE)
    encoder = WmXMLEncoder(scheme, KEY)
    result = encoder.embed(document, watermark)
    decoder = WmXMLDecoder(KEY, alpha=1e-3)
    return document, scheme, watermark, result, decoder


class TestBibliographyLifecycle:
    CONFIG = bibliography.BibliographyConfig(books=100, editors=8, seed=31)

    @pytest.fixture(scope="class")
    def pipeline(self):
        return lifecycle(bibliography, self.CONFIG,
                         bibliography.book_shape(),
                         bibliography.publisher_shape(),
                         bibliography.semantic_fd())

    def test_marked_document_still_schema_valid(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        schema = infer_schema(document)
        assert is_valid(schema, result.document)

    def test_marked_document_survives_serialisation(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        reloaded = parse(serialize(result.document))
        outcome = decoder.detect(reloaded, result.record, scheme.shape,
                                 expected=watermark)
        assert outcome.detected and outcome.match_ratio == 1.0

    def test_record_survives_persistence(self, pipeline, tmp_path):
        document, scheme, watermark, result, decoder = pipeline
        path = tmp_path / "record.json"
        result.record.save(str(path))
        loaded = WatermarkRecord.load(str(path))
        outcome = decoder.detect(result.document, loaded, scheme.shape,
                                 expected=watermark)
        assert outcome.detected

    def test_combined_attack_chain(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        chain = CompositeAttack([
            ValueAlterationAttack(0.05, seed=2),
            ReductionAttack(0.7, seed=2),
            SiblingShuffleAttack(seed=2),
            RedundancyUnificationAttack(bibliography.semantic_fd(),
                                        strategy="majority", seed=2),
            ReorganizationAttack(bibliography.book_shape(),
                                 bibliography.publisher_shape()),
        ])
        stolen = chain.apply(result.document).document
        outcome = decoder.detect(stolen, result.record,
                                 bibliography.publisher_shape(),
                                 expected=watermark)
        assert outcome.detected

    def test_editor_shape_roundtrip_detection(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        via = ReorganizationAttack(bibliography.book_shape(),
                                   bibliography.editor_shape())
        stolen = via.apply(result.document).document
        outcome = decoder.detect(stolen, result.record,
                                 bibliography.editor_shape(),
                                 expected=watermark)
        assert outcome.detected


class TestJobsLifecycle:
    CONFIG = jobs.JobsConfig(jobs=120, companies=8, cities=6, seed=37)

    @pytest.fixture(scope="class")
    def pipeline(self):
        return lifecycle(jobs, self.CONFIG, jobs.listing_shape(),
                         jobs.by_company_shape(), jobs.semantic_fds()[0])

    def test_all_four_carrier_types_used(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        assert set(result.stats.per_field) == {
            "salary", "posted", "position", "industry"}

    def test_detection_via_both_thief_layouts(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        for layout in (jobs.by_company_shape(), jobs.by_city_shape()):
            stolen = ReorganizationAttack(jobs.listing_shape(),
                                          layout).apply(
                result.document).document
            outcome = decoder.detect(stolen, result.record, layout,
                                     expected=watermark)
            assert outcome.detected, layout.name
            assert outcome.match_ratio == 1.0

    def test_insertion_attack_does_not_poison(self, pipeline):
        # Fabricated postings do not satisfy the stored identity queries'
        # key bindings, so they add (almost) no votes and never flip bits.
        document, scheme, watermark, result, decoder = pipeline
        noisy = NodeInsertionAttack(0.3, seed=5).apply(
            result.document).document
        outcome = decoder.detect(noisy, result.record, scheme.shape,
                                 expected=watermark)
        assert outcome.detected

    def test_usability_after_embedding(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        baseline = UsabilityBaseline.snapshot(document, scheme.shape,
                                              scheme.templates)
        report = baseline.evaluate(result.document)
        assert report.strict > 0.95
        assert not report.destroyed()


class TestLibraryLifecycle:
    CONFIG = library.LibraryConfig(items=80, categories=5, seed=41,
                                   image_bytes=128)

    @pytest.fixture(scope="class")
    def pipeline(self):
        return lifecycle(library, self.CONFIG, library.catalogue_shape(),
                         library.by_category_shape(), library.semantic_fd())

    def test_binary_payloads_detectable(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        outcome = decoder.detect(result.document, result.record,
                                 scheme.shape, expected=watermark)
        assert outcome.detected
        assert outcome.match_ratio == 1.0

    def test_by_category_reorganization(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        stolen = ReorganizationAttack(
            library.catalogue_shape(),
            library.by_category_shape()).apply(result.document).document
        outcome = decoder.detect(stolen, result.record,
                                 library.by_category_shape(),
                                 expected=watermark)
        assert outcome.detected

    def test_images_remain_well_formed_base64(self, pipeline):
        import base64
        document, scheme, watermark, result, decoder = pipeline
        from repro.xpath import select_strings
        for payload in select_strings(result.document,
                                      "/library/item/image"):
            assert len(base64.b64decode(payload)) == self.CONFIG.image_bytes

    def test_shelf_fd_unification_harmless(self, pipeline):
        document, scheme, watermark, result, decoder = pipeline
        attack = RedundancyUnificationAttack(library.semantic_fd(),
                                             strategy="majority", seed=3)
        report = attack.apply(result.document)
        assert report.modifications == 0  # duplicates bit-identical
        outcome = decoder.detect(report.document, result.record,
                                 scheme.shape, expected=watermark)
        assert outcome.detected
