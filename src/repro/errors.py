"""The consolidated WmXML error hierarchy.

Every exception the library raises on purpose descends from
:class:`WmXMLError`, so service callers — the ``repro.api`` facade's
audience — can wrap any WmXML operation in one ``except WmXMLError``
instead of learning the per-layer families.  The per-layer bases
(:class:`~repro.xmlmodel.errors.XMLError`,
:class:`~repro.xpath.errors.XPathError`,
:class:`~repro.semantics.errors.SemanticsError`,
:class:`~repro.core.algorithms.AlgorithmError`, ...) still exist and
still work in ``except`` clauses; they are now subclasses of the single
root defined here.

This module sits below every other package (it imports nothing from
``repro``) so any layer can raise from the shared hierarchy without
import cycles.

Dual inheritance note: errors that historically derived from a builtin
(``ValueError``, ``KeyError``, ``RuntimeError``) keep that builtin as a
second base, so pre-existing ``except ValueError`` call sites continue
to catch them.

Error codes
-----------

Every error class carries a stable, machine-readable ``code`` slug —
the contract a *service boundary* needs: the HTTP daemon
(:mod:`repro.service`) puts the code in its error envelopes, the CLI
puts it in ``--result`` JSON, and clients branch on the slug instead of
parsing prose.  :data:`HTTP_STATUS_BY_CODE` is the one table mapping
every code to its HTTP status; a regression test asserts the table
covers every :class:`WmXMLError` subclass in the system, so adding an
error class without wiring its service behaviour fails CI.
"""

from __future__ import annotations


class WmXMLError(Exception):
    """Base class for every error raised by the WmXML system.

    ``code`` is the stable machine-readable slug surfaced over every
    service boundary (HTTP error envelopes, CLI ``--result`` JSON);
    subclasses each declare their own.
    """

    code = "internal-error"


class SerializationError(WmXMLError, ValueError):
    """A persisted WmXML artefact (scheme, record, result) is malformed."""

    code = "malformed-artefact"


class SchemeFormatError(SerializationError):
    """A declarative scheme document failed to parse or validate."""

    code = "bad-scheme"


class RecordFormatError(SerializationError):
    """A watermark record or detection-result document is malformed."""

    code = "bad-record"


class UnknownSchemeError(WmXMLError, KeyError):
    """A scheme name is not present in the system's registry."""

    code = "unknown-scheme"

    def __init__(self, name: str, known=()) -> None:
        hint = f"; registered: {sorted(known)}" if known else ""
        super().__init__(f"unknown scheme {name!r}{hint}")
        self.name = name

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message, printing spurious
        # quotes around it; render it like every other exception.
        return self.args[0]


class WatermarkDecodeError(WmXMLError, ValueError):
    """Recovered watermark bits do not decode to a text message."""

    code = "watermark-decode"


#: The one code -> HTTP status table, shared by the service's error
#: envelopes and the CLI's ``--result`` JSON.  Codes declared by other
#: layers (xmlmodel, xpath, semantics, core, perf, service) appear here
#: too, so the whole mapping is auditable in one place; the test suite
#: asserts every WmXMLError subclass's code has an entry.
HTTP_STATUS_BY_CODE: dict[str, int] = {
    # root / artefacts
    "internal-error": 500,
    "malformed-artefact": 400,
    "bad-scheme": 400,
    "bad-record": 400,
    "unknown-scheme": 404,
    "watermark-decode": 422,
    # repro.xmlmodel — the suspect document itself is bad input
    "xml-error": 400,
    "xml-syntax": 400,
    "xml-tree": 500,
    "xml-name": 400,
    # repro.xpath — stored queries failed against the input
    "xpath-error": 422,
    "xpath-syntax": 422,
    "xpath-type": 422,
    "xpath-function": 422,
    # repro.semantics
    "semantics-error": 422,
    "schema-error": 422,
    "schema-validation": 422,
    "constraint-error": 422,
    "record-mismatch": 422,
    # repro.core
    "algorithm-error": 400,
    # repro.perf
    "bench-error": 500,
    # repro.service — request-level protocol errors
    "service-error": 500,
    "malformed-request": 400,
    "unsupported-protocol": 400,
    "not-found": 404,
    "method-not-allowed": 405,
    "oversize-body": 413,
    # the daemon cannot store another wire-registered scheme
    "registry-full": 507,
    # repro.registry — persistent watermark registry + provenance ledger
    "registry-error": 500,
    "bad-registry-record": 400,
    "registry-schema": 500,
    # the feature exists but this deployment runs without a registry
    "registry-not-configured": 501,
    # the persisted chain fails verification: stored state conflicts
    # with what the append path wrote
    "chain-broken": 409,
    "unknown-recipient": 404,
    # registry storage answered like a failing disk (I/O error, lock
    # timeout): transient — clients should retry after a pause
    "registry-unavailable": 503,
    # repro.tenants — multi-tenant auth, key hierarchy, and quotas
    "tenant-error": 500,
    "bad-tenant-config": 400,
    # no credential / bad credential vs. a valid credential that lacks
    # the right — the classic 401/403 split, kept distinct on purpose
    "unauthorized": 401,
    "forbidden": 403,
    # token-bucket quota exhausted; responses carry Retry-After
    "rate-limited": 429,
    # a record names a key generation absent from the master-key map
    "unknown-key": 400,
    # repro.faults — a deliberately injected fault fired
    "fault-injected": 500,
    "remote-error": 502,
    # client-side diagnosis of a mid-request close — ambiguous between
    # a dying daemon and the 413-without-reading oversize refusal (the
    # client's blocked write cannot read that response), so neutral.
    "connection-closed": 502,
    "service-unavailable": 503,
}


def error_code(error: BaseException) -> str:
    """The stable slug for ``error`` (``internal-error`` for foreigners).

    Reads the instance attribute, so wrappers that re-raise a remote
    error (:class:`repro.service.client.RemoteServiceError`) can carry
    the server's code through verbatim.  Foreign exceptions that happen
    to carry a ``.code`` of their own (``HTTPError.code`` is an int,
    ``SystemExit.code`` an exit status) are NOT trusted.
    """
    if isinstance(error, WmXMLError):
        return getattr(error, "code", WmXMLError.code)
    return WmXMLError.code


def http_status_for(code: str) -> int:
    """HTTP status for a code slug; unknown codes are server faults."""
    return HTTP_STATUS_BY_CODE.get(code, 500)


def error_payload(error: BaseException) -> dict:
    """The wire form of an error, shared by service and CLI output."""
    code = error_code(error)
    return {
        "code": code,
        "message": str(error),
        "http_status": http_status_for(code),
    }
