"""The consolidated WmXML error hierarchy.

Every exception the library raises on purpose descends from
:class:`WmXMLError`, so service callers — the ``repro.api`` facade's
audience — can wrap any WmXML operation in one ``except WmXMLError``
instead of learning the per-layer families.  The per-layer bases
(:class:`~repro.xmlmodel.errors.XMLError`,
:class:`~repro.xpath.errors.XPathError`,
:class:`~repro.semantics.errors.SemanticsError`,
:class:`~repro.core.algorithms.AlgorithmError`, ...) still exist and
still work in ``except`` clauses; they are now subclasses of the single
root defined here.

This module sits below every other package (it imports nothing from
``repro``) so any layer can raise from the shared hierarchy without
import cycles.

Dual inheritance note: errors that historically derived from a builtin
(``ValueError``, ``KeyError``, ``RuntimeError``) keep that builtin as a
second base, so pre-existing ``except ValueError`` call sites continue
to catch them.
"""

from __future__ import annotations


class WmXMLError(Exception):
    """Base class for every error raised by the WmXML system."""


class SerializationError(WmXMLError, ValueError):
    """A persisted WmXML artefact (scheme, record, result) is malformed."""


class SchemeFormatError(SerializationError):
    """A declarative scheme document failed to parse or validate."""


class RecordFormatError(SerializationError):
    """A watermark record or detection-result document is malformed."""


class UnknownSchemeError(WmXMLError, KeyError):
    """A scheme name is not present in the system's registry."""

    def __init__(self, name: str, known=()) -> None:
        hint = f"; registered: {sorted(known)}" if known else ""
        super().__init__(f"unknown scheme {name!r}{hint}")
        self.name = name

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message, printing spurious
        # quotes around it; render it like every other exception.
        return self.args[0]


class WatermarkDecodeError(WmXMLError, ValueError):
    """Recovered watermark bits do not decode to a text message."""
