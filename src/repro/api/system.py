"""The WmXML system facade: Figure 4 as a single object.

A :class:`WmXMLSystem` owns the owner's secret key and a registry of
named watermarking schemes (deployments).  Schemes register either as
live :class:`~repro.core.scheme.WatermarkingScheme` objects, as
declarative dicts, or straight from ``scheme.json`` files; each is
compiled once into a :class:`~repro.api.pipeline.Pipeline` and cached,
so repeated ``embed``/``detect`` calls pay no setup cost.

The secret key never leaves the system: registry listings and log
output only ever see its public fingerprint.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable, Optional, Union

from repro.api.pipeline import DocumentLike, MessageLike, Pipeline
from repro.core.crypto import KeyedPRF
from repro.core.decoder import DetectionResult
from repro.core.encoder import EmbeddingResult
from repro.core.record import WatermarkRecord
from repro.core.scheme import WatermarkingScheme
from repro.errors import SchemeFormatError, UnknownSchemeError
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.tree import Document

SchemeLike = Union[str, WatermarkingScheme, dict]


class WmXMLSystem:
    """The owner's watermarking service: key + schemes + pipelines."""

    def __init__(self, secret_key: Union[str, bytes],
                 alpha: float = 1e-3) -> None:
        self._secret_key = secret_key
        self._fingerprint = KeyedPRF(secret_key).fingerprint()
        self.alpha = alpha
        self._schemes: dict[str, WatermarkingScheme] = {}
        # Registered deployments hit the O(1) name-keyed cache (evicted
        # when the name is re-registered); ad-hoc scheme objects/dicts
        # fall back to a content-keyed cache so equal content shares
        # one pipeline no matter how often it is re-sent.
        self._named_pipelines: dict[tuple[str, float], Pipeline] = {}
        self._content_pipelines: dict[tuple[str, float], Pipeline] = {}
        self._lock = threading.Lock()

    @property
    def key_fingerprint(self) -> str:
        """Public fingerprint of the system's secret key."""
        return self._fingerprint

    # -- scheme registry ------------------------------------------------------------

    def register(self, name: str,
                 scheme: Union[WatermarkingScheme, dict]) -> WatermarkingScheme:
        """Register a deployment under ``name``; returns the live scheme.

        Accepts a built scheme or its declarative dict form.
        Re-registering a name replaces it and evicts the name's
        compiled pipelines.
        """
        if isinstance(scheme, dict):
            scheme = WatermarkingScheme.from_dict(scheme)
        with self._lock:
            self._schemes[name] = scheme
            self._named_pipelines = {
                key: pipeline
                for key, pipeline in self._named_pipelines.items()
                if key[0] != name
            }
        return scheme

    def register_file(self, name: str, path: str) -> WatermarkingScheme:
        """Register a deployment from a ``scheme.json`` artefact."""
        return self.register(name, WatermarkingScheme.load(path))

    def scheme(self, name: str) -> WatermarkingScheme:
        with self._lock:
            try:
                return self._schemes[name]
            except KeyError:
                raise UnknownSchemeError(name, self._schemes) from None

    def scheme_names(self) -> list[str]:
        with self._lock:
            return sorted(self._schemes)

    # -- compilation ------------------------------------------------------------

    def _resolve(self, scheme: SchemeLike) -> WatermarkingScheme:
        if isinstance(scheme, str):
            return self.scheme(scheme)
        if isinstance(scheme, dict):
            return WatermarkingScheme.from_dict(scheme)
        return scheme

    def pipeline(self, scheme: SchemeLike,
                 alpha: Optional[float] = None) -> Pipeline:
        """The compiled pipeline for a scheme, cached.

        Registered names are the hot path: a dict lookup per call, no
        serialization.  Scheme objects and declarative dicts are keyed
        by their *content*, so re-sending an equal deployment on every
        request (the service case) still shares one pipeline — and one
        set of warm PRF/plug-in caches.  Cache size is bounded by the
        number of distinct deployments, not the number of calls.
        """
        effective_alpha = self.alpha if alpha is None else alpha
        if isinstance(scheme, str):
            key = (scheme, effective_alpha)
            with self._lock:
                pipeline = self._named_pipelines.get(key)
            if pipeline is not None:
                return pipeline
            pipeline = Pipeline(self.scheme(scheme), self._secret_key,
                                alpha=effective_alpha)
            with self._lock:
                return self._named_pipelines.setdefault(key, pipeline)
        resolved = self._resolve(scheme)
        try:
            content = json.dumps(resolved.to_dict(), sort_keys=True)
        except TypeError as error:
            raise SchemeFormatError(
                f"scheme is not JSON-serialisable: {error}") from error
        key = (content, effective_alpha)
        with self._lock:
            pipeline = self._content_pipelines.get(key)
            if pipeline is None:
                pipeline = Pipeline(resolved, self._secret_key,
                                    alpha=effective_alpha)
                self._content_pipelines[key] = pipeline
        return pipeline

    # -- conveniences ------------------------------------------------------------

    def embed(self, scheme: SchemeLike, document: Document,
              message: MessageLike, in_place: bool = False) -> EmbeddingResult:
        return self.pipeline(scheme).embed(document, message,
                                           in_place=in_place)

    def embed_many(self, scheme: SchemeLike,
                   documents: Iterable[DocumentLike],
                   message: MessageLike,
                   in_place: bool = False,
                   processes: Optional[int] = None,
                   output: str = "document") -> list[EmbeddingResult]:
        return self.pipeline(scheme).embed_many(documents, message,
                                                in_place=in_place,
                                                processes=processes,
                                                output=output)

    def detect(
        self,
        scheme: SchemeLike,
        document: Document,
        record: WatermarkRecord,
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
    ) -> DetectionResult:
        return self.pipeline(scheme).detect(
            document, record, expected=expected, shape=shape,
            strategy=strategy)

    def detect_many(
        self,
        scheme: SchemeLike,
        items: Iterable[tuple[DocumentLike, WatermarkRecord]],
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
        processes: Optional[int] = None,
    ) -> list[DetectionResult]:
        return self.pipeline(scheme).detect_many(
            items, expected=expected, shape=shape, strategy=strategy,
            processes=processes)

    def __repr__(self) -> str:
        return (f"WmXMLSystem(key_fingerprint={self._fingerprint!r}, "
                f"schemes={self.scheme_names()!r})")
