"""The WmXML system facade: Figure 4 as a single object.

A :class:`WmXMLSystem` owns the owner's secret key and a registry of
named watermarking schemes (deployments).  Schemes register either as
live :class:`~repro.core.scheme.WatermarkingScheme` objects, as
declarative dicts, or straight from ``scheme.json`` files; each is
compiled once into a :class:`~repro.api.pipeline.Pipeline` and cached,
so repeated ``embed``/``detect`` calls pay no setup cost.

The secret key never leaves the system: registry listings and log
output only ever see its public fingerprint.
"""

from __future__ import annotations

import json
import threading
from typing import Iterable, Optional, Union

from repro.api.pipeline import (
    DocumentLike,
    MessageLike,
    Pipeline,
    content_fingerprint,
    scheme_content_key,
)
from repro.core.crypto import KeyedPRF
from repro.core.decoder import DetectionResult
from repro.core.encoder import EmbeddingResult
from repro.core.fingerprint import TraceResult
from repro.core.record import WatermarkRecord
from repro.core.scheme import WatermarkingScheme
from repro.core.watermark import Watermark
from repro.errors import SchemeFormatError, UnknownSchemeError
from repro.registry import (RegistryNotConfiguredError, UnknownRecipientError,
                            WatermarkRegistry)
from repro.registry.records import RegistryRecord
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.tree import Document

SchemeLike = Union[str, WatermarkingScheme, dict]

#: Ceiling on the content-keyed pipeline cache.  Registered names are
#: unbounded by design (the operator controls them); ad-hoc inline
#: schemes can arrive from the wire on every request, so they evict
#: least-recently-used beyond this many distinct deployments.
CONTENT_CACHE_MAX = 64


class WmXMLSystem:
    """The owner's watermarking service: key + schemes + pipelines."""

    def __init__(self, secret_key: Union[str, bytes],
                 alpha: float = 1e-3,
                 registry: Optional[WatermarkRegistry] = None,
                 issuer: str = "wmxml",
                 *,
                 tenant: Optional[str] = None,
                 key_id: Optional[int] = None,
                 seal_registry: bool = True) -> None:
        self._secret_key = secret_key
        self._prf = KeyedPRF(secret_key)
        self._fingerprint = self._prf.fingerprint()
        self.alpha = alpha
        self.issuer = issuer
        self.registry = registry
        #: Tenancy identity (both ``None`` for the classic single-key
        #: system): stamped into every record this system embeds, so a
        #: detection can name which tenant and key generation made it.
        self.tenant = tenant
        self.key_id = key_id
        if registry is not None and seal_registry:
            # Ledger seals derive from the system key under their own
            # purpose string, so the registry never holds a second
            # secret.  Tenant systems sharing one registry pass
            # ``seal_registry=False``: the TenantDirectory attaches a
            # rotation-stable sealer of its own instead.
            registry.attach_sealer(self._prf)
        self._schemes: dict[str, WatermarkingScheme] = {}
        # Registered deployments hit the O(1) name-keyed cache (evicted
        # when the name is re-registered); ad-hoc scheme objects/dicts
        # fall back to a content-keyed cache so equal content shares
        # one pipeline no matter how often it is re-sent.
        self._named_pipelines: dict[tuple[str, float], Pipeline] = {}
        self._content_pipelines: dict[tuple[str, float], Pipeline] = {}
        # Derived-key pipelines for fingerprinted issuance, keyed by
        # (scheme content, recipient, alpha); LRU like the content cache.
        self._recipient_pipelines: dict[tuple[str, str, float],
                                        Pipeline] = {}
        self._name_fingerprints: dict[str, str] = {}
        self._lock = threading.Lock()

    @property
    def key_fingerprint(self) -> str:
        """Public fingerprint of the system's secret key."""
        return self._fingerprint

    # -- scheme registry ------------------------------------------------------------

    def register(self, name: str,
                 scheme: Union[WatermarkingScheme, dict]) -> WatermarkingScheme:
        """Register a deployment under ``name``; returns the live scheme.

        Accepts a built scheme or its declarative dict form.
        Re-registering a name replaces it and evicts the name's
        compiled pipelines.
        """
        if isinstance(scheme, dict):
            scheme = WatermarkingScheme.from_dict(scheme)
        with self._lock:
            self._schemes[name] = scheme
            self._name_fingerprints.pop(name, None)
            self._named_pipelines = {
                key: pipeline
                for key, pipeline in self._named_pipelines.items()
                if key[0] != name
            }
        return scheme

    def register_file(self, name: str, path: str) -> WatermarkingScheme:
        """Register a deployment from a ``scheme.json`` artefact."""
        return self.register(name, WatermarkingScheme.load(path))

    # ``add_scheme`` is the service-facing spelling of ``register``:
    # the daemon's ``PUT /v1/schemes/{name}`` maps straight onto it.
    add_scheme = register

    def scheme(self, name: str) -> WatermarkingScheme:
        with self._lock:
            try:
                return self._schemes[name]
            except KeyError:
                raise UnknownSchemeError(name, self._schemes) from None

    def scheme_names(self) -> list[str]:
        with self._lock:
            return sorted(self._schemes)

    def list_schemes(self) -> dict[str, str]:
        """Registry listing: ``{name: pipeline fingerprint}``.

        The fingerprint is the content hash of (scheme, public key
        fingerprint, alpha) that keys the parallel engine's worker
        caches — the value a service exposes in cache-validation
        headers (``ETag``), so clients can tell whether a named
        deployment changed without downloading it.
        """
        return {name: self.scheme_fingerprint(name)
                for name in self.scheme_names()}

    def scheme_fingerprint(self, scheme: SchemeLike) -> str:
        """Content fingerprint of the pipeline for ``scheme``.

        Computed straight from the declarative scheme form — equal to
        ``self.pipeline(scheme).fingerprint`` by construction, without
        compiling (or pinning) a pipeline just to list the registry.
        """
        if isinstance(scheme, str):
            return self.scheme_with_fingerprint(scheme)[1]
        return self._object_fingerprint(self._resolve(scheme))

    def scheme_with_fingerprint(
            self, name: str) -> tuple[WatermarkingScheme, str]:
        """Atomic ``(scheme, fingerprint)`` snapshot for a name.

        The pair is guaranteed consistent under concurrent
        re-registration — the daemon's ``GET /v1/schemes/{name}`` must
        never pair an old body with a new ``ETag`` — and repeat reads
        hit the name-keyed fingerprint cache (invalidated by
        :meth:`register` under the same lock).
        """
        with self._lock:
            try:
                scheme = self._schemes[name]
            except KeyError:
                raise UnknownSchemeError(name, self._schemes) from None
            cached = self._name_fingerprints.get(name)
        if cached is not None:
            return scheme, cached
        fingerprint = self._object_fingerprint(scheme)
        with self._lock:
            # Guard against a register() replacing the name while we
            # hashed: only cache if it still maps to what we
            # fingerprinted.
            if self._schemes.get(name) is scheme:
                self._name_fingerprints[name] = fingerprint
        return scheme, fingerprint

    def _object_fingerprint(self, resolved: WatermarkingScheme) -> str:
        # scheme_content_key handles non-JSON schemes (pickle hash),
        # so this equals Pipeline(resolved, ...).fingerprint by
        # construction without re-resolving any name (the (scheme,
        # fingerprint) pairing stays atomic) or compiling anything.
        return content_fingerprint(scheme_content_key(resolved),
                                   self._fingerprint, self.alpha)

    # -- compilation ------------------------------------------------------------

    def _resolve(self, scheme: SchemeLike) -> WatermarkingScheme:
        if isinstance(scheme, str):
            return self.scheme(scheme)
        if isinstance(scheme, dict):
            return WatermarkingScheme.from_dict(scheme)
        return scheme

    def pipeline(self, scheme: SchemeLike,
                 alpha: Optional[float] = None) -> Pipeline:
        """The compiled pipeline for a scheme, cached.

        Registered names are the hot path: a dict lookup per call, no
        serialization.  Scheme objects and declarative dicts are keyed
        by their *content*, so re-sending an equal deployment on every
        request (the service case) still shares one pipeline — and one
        set of warm PRF/plug-in caches.  The content cache evicts LRU
        beyond :data:`CONTENT_CACHE_MAX` distinct deployments, so a
        wire client cycling through unique inline schemes cannot grow
        the daemon's memory without bound.
        """
        effective_alpha = self.alpha if alpha is None else alpha
        if isinstance(scheme, str):
            key = (scheme, effective_alpha)
            with self._lock:
                pipeline = self._named_pipelines.get(key)
            if pipeline is not None:
                return pipeline
            resolved = self.scheme(scheme)
            pipeline = Pipeline(resolved, self._secret_key,
                                alpha=effective_alpha)
            with self._lock:
                if self._schemes.get(scheme) is resolved:
                    return self._named_pipelines.setdefault(key, pipeline)
            # The name was re-registered while we compiled: caching the
            # stale pipeline would silently serve the replaced scheme
            # forever.  Compile from the current registration instead.
            return self.pipeline(scheme, alpha)
        resolved = self._resolve(scheme)
        try:
            content = json.dumps(resolved.to_dict(), sort_keys=True)
        except TypeError as error:
            raise SchemeFormatError(
                f"scheme is not JSON-serialisable: {error}") from error
        key = (content, effective_alpha)
        with self._lock:
            pipeline = self._content_pipelines.pop(key, None)
            if pipeline is not None:
                # Re-insertion keeps dict order = recency order.
                self._content_pipelines[key] = pipeline
                return pipeline
        # Compile outside the lock: a slow inline-scheme compile must
        # not head-of-line-block every cached lookup in the daemon.
        pipeline = Pipeline(resolved, self._secret_key,
                            alpha=effective_alpha)
        with self._lock:
            existing = self._content_pipelines.pop(key, None)
            if existing is not None:
                pipeline = existing  # a concurrent compile won; share it
            self._content_pipelines[key] = pipeline
            while len(self._content_pipelines) > CONTENT_CACHE_MAX:
                self._content_pipelines.pop(
                    next(iter(self._content_pipelines)))
        return pipeline

    # -- fingerprinted issuance ------------------------------------------------------------

    def recipient_key(self, recipient: str) -> bytes:
        """The derived per-recipient secret key.

        The exact :class:`~repro.core.fingerprint.Fingerprinter`
        derivation — ``HMAC(master, "fingerprint-key", recipient)`` —
        so copies issued here and traces run here interoperate with
        the core fingerprinting machinery.  Derived keys select
        *different* element subsets per recipient, which is what makes
        collusion tracing work.
        """
        if not recipient:
            raise ValueError("recipient id must not be empty")
        return self._prf.digest("fingerprint-key", recipient)

    def recipient_pipeline(self, scheme: SchemeLike, recipient: str,
                           alpha: Optional[float] = None) -> Pipeline:
        """The compiled pipeline under ``recipient``'s derived key."""
        effective_alpha = self.alpha if alpha is None else alpha
        resolved = self._resolve(scheme)
        content = scheme_content_key(resolved)
        key = (content, recipient, effective_alpha)
        with self._lock:
            pipeline = self._recipient_pipelines.pop(key, None)
            if pipeline is not None:
                self._recipient_pipelines[key] = pipeline
                return pipeline
        pipeline = Pipeline(resolved, self.recipient_key(recipient),
                            alpha=effective_alpha)
        with self._lock:
            existing = self._recipient_pipelines.pop(key, None)
            if existing is not None:
                pipeline = existing
            self._recipient_pipelines[key] = pipeline
            while len(self._recipient_pipelines) > CONTENT_CACHE_MAX:
                self._recipient_pipelines.pop(
                    next(iter(self._recipient_pipelines)))
        return pipeline

    # -- registry ------------------------------------------------------------

    def _require_registry(self) -> WatermarkRegistry:
        if self.registry is None:
            raise RegistryNotConfiguredError(
                "this system has no registry attached; construct "
                "WmXMLSystem(registry=...) or run with --registry")
        return self.registry

    @staticmethod
    def _message_identity(message: MessageLike) -> str:
        """The recipient identity a plain embed is recorded under."""
        if isinstance(message, Watermark):
            text = message.to_message(strict=False)
            if text is not None:
                return text
            return "bits:" + "".join(str(bit) for bit in message.bits)
        return message

    def _stamp(self, record: WatermarkRecord) -> None:
        """Mark a fresh record with this system's tenancy identity.

        Single-key systems (``tenant``/``key_id`` both ``None``) leave
        the record untouched, so their serialized form — and every
        golden vector — stays byte-identical.
        """
        if self.tenant is not None:
            record.tenant = self.tenant
        if self.key_id is not None:
            record.key_id = self.key_id

    def _record_embed(self, recipient: str, keying: str,
                      scheme_fingerprint: str, pipeline: Pipeline,
                      result: EmbeddingResult) -> Optional[RegistryRecord]:
        """Append one embed to the registry (no-op without one).

        Always runs in the parent process, *after* the pipeline
        returned — pooled batches hand records back from the workers
        and the appends happen here, so the pool contract is untouched
        and ledger order is the order results came back in.
        """
        if self.registry is None:
            return None
        return self.registry.record_embed(
            recipient=recipient, record=result.record,
            document_xml=result.to_xml(),
            scheme_fingerprint=scheme_fingerprint,
            key_fingerprint=pipeline.key_fingerprint,
            keying=keying, issuer=self.issuer,
            tenant=self.tenant, key_id=self.key_id)

    # -- conveniences ------------------------------------------------------------

    def embed(self, scheme: SchemeLike, document: Document,
              message: MessageLike, in_place: bool = False,
              recipient: Optional[str] = None) -> EmbeddingResult:
        """Embed; with ``recipient`` set, issue a fingerprinted copy.

        ``recipient=None`` is the classic owner embed under the system
        key; a recipient switches to that recipient's derived key and
        uses the recipient id as the message (self-describing
        evidence).  Either way, an attached registry records the copy.
        """
        if recipient is not None:
            pipeline = self.recipient_pipeline(scheme, recipient)
            result = pipeline.embed(document, recipient, in_place=in_place)
            self._stamp(result.record)
            self._record_embed(recipient, "recipient",
                               self.scheme_fingerprint(scheme),
                               pipeline, result)
            return result
        pipeline = self.pipeline(scheme)
        result = pipeline.embed(document, message, in_place=in_place)
        self._stamp(result.record)
        self._record_embed(self._message_identity(message), "system",
                           self.scheme_fingerprint(scheme), pipeline,
                           result)
        return result

    def embed_many(self, scheme: SchemeLike,
                   documents: Iterable[DocumentLike],
                   message: MessageLike,
                   in_place: bool = False,
                   processes: Optional[int] = None,
                   output: str = "document",
                   recipient: Optional[str] = None) -> list[EmbeddingResult]:
        if recipient is not None:
            pipeline = self.recipient_pipeline(scheme, recipient)
            identity, keying = recipient, "recipient"
            message = recipient
        else:
            pipeline = self.pipeline(scheme)
            identity, keying = self._message_identity(message), "system"
        results = pipeline.embed_many(documents, message,
                                      in_place=in_place,
                                      processes=processes,
                                      output=output)
        for result in results:
            self._stamp(result.record)
        if self.registry is not None and results:
            # One batched append: a single SQLite transaction (one
            # fsync for the whole batch instead of one per record),
            # and all-or-nothing — a mid-batch failure persists no
            # records at all, so a client retry cannot double-append
            # half a batch.
            scheme_fingerprint = self.scheme_fingerprint(scheme)
            self.registry.record_embed_many([
                {"recipient": identity, "record": result.record,
                 "document_xml": result.to_xml(),
                 "scheme_fingerprint": scheme_fingerprint,
                 "key_fingerprint": pipeline.key_fingerprint,
                 "keying": keying, "issuer": self.issuer,
                 "tenant": self.tenant, "key_id": self.key_id}
                for result in results])
        return results

    def issue(self, scheme: SchemeLike, document: Document,
              recipient: str, in_place: bool = False) -> EmbeddingResult:
        """Issue one fingerprinted copy to ``recipient`` (and record it)."""
        return self.embed(scheme, document, recipient, in_place=in_place,
                          recipient=recipient)

    def issue_many(self, scheme: SchemeLike,
                   documents: Iterable[DocumentLike], recipient: str,
                   processes: Optional[int] = None,
                   output: str = "document") -> list[EmbeddingResult]:
        """Issue fingerprinted copies of many documents to one recipient."""
        return self.embed_many(scheme, documents, recipient,
                               processes=processes, output=output,
                               recipient=recipient)

    def trace(self, scheme: SchemeLike, document: Document,
              *,
              shape: Optional[DocumentShape] = None,
              strategy: str = "auto",
              recipients: Optional[Iterable[str]] = None) -> TraceResult:
        """Trace a suspected leak against every persisted issued copy.

        Requires a registry.  Every record of this deployment is
        verified against ``document`` under the key it was issued with
        (system key for plain embeds, derived key for fingerprinted
        copies); each recipient keeps their strongest verdict (lowest
        p-value; ties keep the earlier record).  ``recipients``
        restricts the sweep and must name known identities.
        """
        registry = self._require_registry()
        scheme_fingerprint = self.scheme_fingerprint(scheme)
        entries = registry.records(scheme_fingerprint=scheme_fingerprint)
        if recipients is not None:
            wanted = set(recipients)
            known = {entry.recipient for entry in entries}
            missing = wanted - known
            if missing:
                raise UnknownRecipientError(
                    sorted(missing)[0], known=registry.recipients())
            entries = [entry for entry in entries
                       if entry.recipient in wanted]
        best: dict[str, tuple[tuple, DetectionResult]] = {}
        for entry in entries:
            if entry.keying == "recipient":
                pipeline = self.recipient_pipeline(scheme, entry.recipient)
            else:
                pipeline = self.pipeline(scheme)
            verdict = pipeline.detect(
                document, entry.record, expected=entry.recipient,
                shape=shape, strategy=strategy)
            rank = (verdict.p_value,
                    entry.sequence if entry.sequence is not None else 0)
            current = best.get(entry.recipient)
            if current is None or rank < current[0]:
                best[entry.recipient] = (rank, verdict)
        return TraceResult(verdicts={name: verdict
                                     for name, (_, verdict)
                                     in best.items()})

    def detect_recorded(self, scheme: SchemeLike, document: Document,
                        recipient: str,
                        *,
                        shape: Optional[DocumentShape] = None,
                        strategy: str = "auto") -> DetectionResult:
        """Detect using the newest persisted record for one recipient."""
        registry = self._require_registry()
        entries = registry.records(
            recipient=recipient,
            scheme_fingerprint=self.scheme_fingerprint(scheme))
        if not entries:
            raise UnknownRecipientError(recipient,
                                        known=registry.recipients())
        entry = entries[-1]
        if entry.keying == "recipient":
            pipeline = self.recipient_pipeline(scheme, recipient)
        else:
            pipeline = self.pipeline(scheme)
        return pipeline.detect(document, entry.record,
                               expected=entry.recipient, shape=shape,
                               strategy=strategy)

    def detect(
        self,
        scheme: SchemeLike,
        document: Document,
        record: WatermarkRecord,
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
    ) -> DetectionResult:
        return self.pipeline(scheme).detect(
            document, record, expected=expected, shape=shape,
            strategy=strategy)

    def detect_many(
        self,
        scheme: SchemeLike,
        items: Iterable[tuple[DocumentLike, WatermarkRecord]],
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
        processes: Optional[int] = None,
    ) -> list[DetectionResult]:
        return self.pipeline(scheme).detect_many(
            items, expected=expected, shape=shape, strategy=strategy,
            processes=processes)

    def __repr__(self) -> str:
        return (f"WmXMLSystem(key_fingerprint={self._fingerprint!r}, "
                f"schemes={self.scheme_names()!r})")
