"""Fluent construction of watermarking schemes.

A :class:`SchemeBuilder` assembles the four user inputs of Figure 4 —
document shape, carrier fields with identifier rules, usability
templates, and the selection density gamma — step by step, then
validates everything at :meth:`SchemeBuilder.build` by constructing the
:class:`~repro.core.scheme.WatermarkingScheme` (whose eager validation
rejects unknown fields, self-identifying carriers, and bad plug-in
parameters).

The builder is the programmatic twin of the declarative JSON format:
``builder.build().to_dict()`` is the document form, and
``WatermarkingScheme.from_dict`` (or ``.load``) is the way back.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence, Union

from repro.core.identity import CarrierSpec, FDIdentifier, KeyIdentifier
from repro.core.scheme import WatermarkingScheme
from repro.core.usability import UsabilityTemplate
from repro.errors import SchemeFormatError
from repro.semantics.shape import DocumentShape

FieldNames = Union[str, Sequence[str]]


def _fields_tuple(value: FieldNames) -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    return tuple(value)


class SchemeBuilder:
    """Build a :class:`WatermarkingScheme` fluently.

    Every method returns ``self`` so calls chain; :meth:`build` performs
    the full validation and returns the immutable-ish scheme.  The
    builder itself may be reused (``build`` does not consume it).
    """

    def __init__(self, shape: Optional[DocumentShape] = None) -> None:
        self._shape = shape
        self._carriers: list[CarrierSpec] = []
        self._templates: list[UsabilityTemplate] = []
        self._gamma = 4

    # -- inputs ------------------------------------------------------------

    def shape(self, shape: DocumentShape) -> "SchemeBuilder":
        """The document organisation the scheme embeds through."""
        self._shape = shape
        return self

    def gamma(self, gamma: int) -> "SchemeBuilder":
        """Selection density: one carrier group in ``gamma`` is marked."""
        self._gamma = gamma
        return self

    def carrier(
        self,
        field: str,
        algorithm: str,
        *,
        key: Optional[FieldNames] = None,
        fd: Optional[FieldNames] = None,
        params: Optional[Mapping[str, Any]] = None,
    ) -> "SchemeBuilder":
        """Declare a carrier field.

        Exactly one of ``key`` (entity-key identifier fields) or ``fd``
        (FD left-hand-side fields, folding duplicates into one group)
        must be given; either accepts a single field name or a sequence.
        """
        if (key is None) == (fd is None):
            raise SchemeFormatError(
                f"carrier {field!r}: declare exactly one of key=... "
                "(entity-key identifier) or fd=... (FD identifier)")
        if key is not None:
            identifier = KeyIdentifier(_fields_tuple(key))
        else:
            identifier = FDIdentifier(_fields_tuple(fd))
        self._carriers.append(
            CarrierSpec.create(field, algorithm, identifier, params))
        return self

    def template(
        self,
        name: str,
        target: str,
        conditions: FieldNames,
        *,
        tolerance: float = 0.0,
        casefold: bool = False,
    ) -> "SchemeBuilder":
        """Declare a §2.1 usability query template."""
        self._templates.append(UsabilityTemplate(
            name, target, _fields_tuple(conditions),
            tolerance=tolerance, casefold=casefold))
        return self

    def templates(
            self,
            templates: Sequence[UsabilityTemplate]) -> "SchemeBuilder":
        """Adopt already-constructed templates (e.g. a dataset's suite)."""
        self._templates.extend(templates)
        return self

    # -- output ------------------------------------------------------------

    def build(self) -> WatermarkingScheme:
        """Validate and return the scheme (raises on misconfiguration)."""
        if self._shape is None:
            raise SchemeFormatError(
                "no document shape declared; call .shape(...) first")
        return WatermarkingScheme(
            shape=self._shape,
            carriers=list(self._carriers),
            templates=list(self._templates),
            gamma=self._gamma,
        )

    def to_dict(self) -> dict:
        """Shorthand for ``build().to_dict()`` — the JSON artefact."""
        return self.build().to_dict()
