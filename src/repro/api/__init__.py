"""``repro.api`` — the one public entry point to the WmXML system.

The paper presents WmXML as a *system* (Figure 4): the owner hands it a
watermark, a secret key, query templates, and the keys/FDs discovered
from the schema, and the system does the rest.  This package is that
system boundary for the reproduction:

* :class:`SchemeBuilder` — fluent construction of a
  :class:`~repro.core.scheme.WatermarkingScheme`; the built scheme
  round-trips through a versioned JSON document
  (``scheme.to_dict()`` / ``WatermarkingScheme.from_dict`` /
  ``scheme.save("scheme.json")``), so a deployment is a config
  artefact, not Python code;
* :class:`WmXMLSystem` — the facade that owns the secret key and a
  scheme registry, and compiles each scheme once into a reusable
  :class:`Pipeline`;
* :class:`Pipeline` — a compiled (scheme, key) pair with single and
  batch ``embed`` / ``detect`` APIs and an explicit detection
  ``strategy`` (``"indexed"`` / ``"scan"`` / ``"auto"``);
* the consolidated :class:`~repro.errors.WmXMLError` hierarchy — every
  error the library raises on purpose is catchable through this one
  base class.

Quickstart::

    from repro import api

    scheme = (api.SchemeBuilder()
              .shape(my_shape)
              .carrier("year", "numeric", key=("title",))
              .gamma(2)
              .build())
    scheme.save("scheme.json")                  # the deployment artefact

    system = api.WmXMLSystem("owner-secret")
    system.register("books", scheme)            # or register_file(...)
    pipeline = system.pipeline("books")

    result = pipeline.embed(document, "(c) me")
    result.record.save("record.json")

    outcome = pipeline.detect(suspect, result.record, expected="(c) me")
    assert outcome.detected

The pre-existing import paths (``repro.core.WmXMLEncoder`` and friends)
keep working; they are the engine room this facade drives.
"""

from repro.api.builder import SchemeBuilder
from repro.api.pipeline import (
    DETECTION_STRATEGIES,
    EMBED_OUTPUTS,
    Pipeline,
)
from repro.api.system import WmXMLSystem
from repro.attacks import (
    Attack,
    AttackReport,
    CollusionAttack,
    CompositeAttack,
    NodeDeletionAttack,
    NodeInsertionAttack,
    RedundancyUnificationAttack,
    ReductionAttack,
    ReorganizationAttack,
    SiblingShuffleAttack,
    ValueAlterationAttack,
)
from repro.core import (
    CarrierSpec,
    DetectionResult,
    EmbeddingResult,
    EmbeddingStats,
    FDIdentifier,
    Fingerprinter,
    KeyIdentifier,
    UsabilityBaseline,
    UsabilityReport,
    UsabilityTemplate,
    Watermark,
    WatermarkRecord,
    WatermarkingScheme,
)
from repro.core.algorithms import AlgorithmError, algorithm_names
from repro.errors import (
    HTTP_STATUS_BY_CODE,
    RecordFormatError,
    SchemeFormatError,
    SerializationError,
    UnknownSchemeError,
    WatermarkDecodeError,
    WmXMLError,
    error_code,
    error_payload,
    http_status_for,
)
from repro.core.fingerprint import IssuedCopy, TraceResult
from repro.registry import (
    ChainBrokenError,
    ChainVerification,
    LedgerBlock,
    MemoryBackend,
    RegistryBackend,
    RegistryError,
    RegistryFormatError,
    RegistryNotConfiguredError,
    RegistryRecord,
    RegistrySchemaError,
    SQLiteBackend,
    UnknownRecipientError,
    WatermarkRegistry,
)
from repro.semantics import DocumentShape, level, shape
from repro.semantics.errors import RecordError, SemanticsError
from repro.xmlmodel import (
    XMLError,
    parse,
    parse_file,
    parse_many,
    pretty,
    serialize,
    write_file,
)
from repro.xpath import XPathError

__all__ = [
    # facade
    "WmXMLSystem",
    "Pipeline",
    "SchemeBuilder",
    "DETECTION_STRATEGIES",
    "EMBED_OUTPUTS",
    # scheme / data model
    "CarrierSpec",
    "DocumentShape",
    "FDIdentifier",
    "KeyIdentifier",
    "UsabilityTemplate",
    "WatermarkingScheme",
    "level",
    "shape",
    "algorithm_names",
    # artefacts
    "DetectionResult",
    "EmbeddingResult",
    "EmbeddingStats",
    "Watermark",
    "WatermarkRecord",
    # usability
    "UsabilityBaseline",
    "UsabilityReport",
    # fingerprinting
    "Fingerprinter",
    "IssuedCopy",
    "TraceResult",
    # registry / provenance
    "WatermarkRegistry",
    "RegistryBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "RegistryRecord",
    "LedgerBlock",
    "ChainVerification",
    "RegistryError",
    "RegistryFormatError",
    "RegistrySchemaError",
    "RegistryNotConfiguredError",
    "ChainBrokenError",
    "UnknownRecipientError",
    # attacks
    "Attack",
    "AttackReport",
    "CollusionAttack",
    "CompositeAttack",
    "NodeDeletionAttack",
    "NodeInsertionAttack",
    "RedundancyUnificationAttack",
    "ReductionAttack",
    "ReorganizationAttack",
    "SiblingShuffleAttack",
    "ValueAlterationAttack",
    # XML I/O
    "parse",
    "parse_file",
    "parse_many",
    "pretty",
    "serialize",
    "write_file",
    # errors
    "WmXMLError",
    "HTTP_STATUS_BY_CODE",
    "error_code",
    "error_payload",
    "http_status_for",
    "AlgorithmError",
    "RecordError",
    "RecordFormatError",
    "SchemeFormatError",
    "SemanticsError",
    "SerializationError",
    "UnknownSchemeError",
    "WatermarkDecodeError",
    "XMLError",
    "XPathError",
]
