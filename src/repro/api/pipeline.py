"""A compiled watermarking pipeline: one scheme + one key, many documents.

The facade compiles a :class:`~repro.core.scheme.WatermarkingScheme`
once into a :class:`Pipeline` and reuses it for every document of that
deployment.  Reuse is what makes the batch APIs fast: the encoder and
decoder instances live as long as the pipeline, so the precomputed-state
PRF (HMAC pad + bounded digest memo) and the per-``(algorithm, params)``
plug-in instances built by the first document are warm for every
subsequent one.

Thread-safety: a pipeline may be shared across threads.  ``embed``
copies the input document (unless ``in_place=True``), and the only
shared mutable state is a set of append-only caches (PRF digest memo,
plug-in registry) whose dict operations are atomic under CPython's GIL;
two threads at worst compute the same cache entry twice.

Detection strategies (the ``strategy`` argument):

* ``"scan"`` — per-query XPath evaluation from the document root,
  O(|Q| x |document|); the reference engine.
* ``"indexed"`` — one shred through the shape plus inverted
  value->row indexes (:class:`~repro.rewriting.executor.
  LogicalExecutor`), O(|document| + |Q|); produces the same votes and
  verdict (asserted over every attack in :mod:`repro.attacks` for every
  dataset profile by the test suite).
* ``"auto"`` — the indexed executor, always.  Historically this
  switched on a query-count heuristic; with vote-for-vote equivalence
  proven for the bibliography, jobs and library profiles
  (``tests/test_detection_strategies.py``) the heuristic is gone and
  ``auto`` simply names the fast engine, keeping ``scan`` reachable as
  the explicit reference path.

Batch inputs (``embed_many`` / ``detect_many``) accept either parsed
:class:`~repro.xmlmodel.tree.Document` objects or raw XML strings;
strings are parsed through :func:`repro.xmlmodel.parse_many`, and
``processes=N`` shards that parse over a process pool — the
per-document parse is the batch bottleneck and the one stage that
parallelises cleanly beyond the GIL.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.core.decoder import DetectionResult, WmXMLDecoder
from repro.core.encoder import EmbeddingResult, WmXMLEncoder
from repro.core.record import WatermarkRecord
from repro.core.scheme import WatermarkingScheme
from repro.core.watermark import Watermark
from repro.errors import WmXMLError
from repro.perf.profiler import profiled
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.parser import parse_many
from repro.xmlmodel.tree import Document

#: Accepted values of the ``strategy`` argument to :meth:`Pipeline.detect`.
DETECTION_STRATEGIES = ("auto", "indexed", "scan")

MessageLike = Union[str, Watermark]

#: Batch APIs take parsed documents or raw XML text interchangeably.
DocumentLike = Union[Document, str]


def _as_watermark(message: MessageLike) -> Watermark:
    if isinstance(message, Watermark):
        return message
    return Watermark.from_message(message)


def _resolve_strategy(strategy: str) -> bool:
    """True when detection should run through the indexed executor."""
    if strategy not in DETECTION_STRATEGIES:
        raise WmXMLError(
            f"unknown detection strategy {strategy!r}; "
            f"choices: {DETECTION_STRATEGIES}")
    return strategy != "scan"


def _as_documents(items: Iterable[DocumentLike],
                  processes: Optional[int] = None) -> list[Document]:
    """Parse any raw XML strings in ``items``, preserving order.

    Strings are parsed with ``strip_whitespace=True`` (the data-centric
    convention every loader in this system uses) via
    :func:`repro.xmlmodel.parse_many`, so ``processes`` can shard the
    parsing across workers; already-parsed documents pass through
    untouched.
    """
    resolved = list(items)
    text_positions = [index for index, item in enumerate(resolved)
                     if isinstance(item, str)]
    if text_positions:
        parsed = parse_many([resolved[index] for index in text_positions],
                            strip_whitespace=True, processes=processes)
        for index, document in zip(text_positions, parsed):
            resolved[index] = document
    return resolved


class Pipeline:
    """A reusable, thread-safe embed/detect engine for one deployment."""

    def __init__(self, scheme: WatermarkingScheme,
                 secret_key: Union[str, bytes],
                 alpha: float = 1e-3) -> None:
        self.scheme = scheme
        self.alpha = alpha
        self._encoder = WmXMLEncoder(scheme, secret_key)
        self._decoder = WmXMLDecoder(secret_key, alpha=alpha)

    @property
    def shape(self) -> DocumentShape:
        """The document organisation this pipeline embeds through."""
        return self.scheme.shape

    @property
    def key_fingerprint(self) -> str:
        """Public fingerprint of the owning key (safe to log)."""
        return self._encoder.prf.fingerprint()

    # -- embedding ------------------------------------------------------------

    def embed(self, document: Document, message: MessageLike,
              in_place: bool = False) -> EmbeddingResult:
        """Embed a message (text or :class:`Watermark`) into a document."""
        return self._encoder.embed(document, _as_watermark(message),
                                   in_place=in_place)

    @profiled("api.embed_many")
    def embed_many(self, documents: Iterable[DocumentLike],
                   message: MessageLike,
                   in_place: bool = False,
                   processes: Optional[int] = None) -> list[EmbeddingResult]:
        """Embed the same message into many documents.

        One encoder serves the whole batch, so the PRF digest memo and
        plug-in instances warmed by the first document are reused by the
        rest — the per-document cost drops measurably versus constructing
        a fresh encoder per document (tracked by the E9 bench's
        ``api_embed_many_ms`` stage).

        Entries may be raw XML strings; they are parsed up front (the
        batch bottleneck), and ``processes=N`` shards that parsing over
        a process pool.  ``processes`` has no effect on entries that
        are already :class:`Document` objects.
        """
        watermark = _as_watermark(message)
        return [self._encoder.embed(document, watermark, in_place=in_place)
                for document in _as_documents(documents, processes)]

    # -- detection ------------------------------------------------------------

    def detect(
        self,
        document: Document,
        record: WatermarkRecord,
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
    ) -> DetectionResult:
        """Run the stored query set Q against a suspected document.

        ``shape`` names the document's *current* organisation; passing a
        different shape than the scheme's rewrites every stored query
        for it (Figure 2).  ``strategy`` picks the query engine — see
        the module docstring.
        """
        return self._decoder.detect(
            document, record, shape or self.scheme.shape,
            expected=None if expected is None else _as_watermark(expected),
            indexed=_resolve_strategy(strategy),
        )

    @profiled("api.detect_many")
    def detect_many(
        self,
        items: Iterable[tuple[DocumentLike, WatermarkRecord]],
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
        processes: Optional[int] = None,
    ) -> list[DetectionResult]:
        """Detect over many (document, record) pairs with one decoder.

        The decoder's PRF and plug-in caches are shared across the
        batch, amortising key re-derivation the same way
        :meth:`embed_many` amortises embedding state.  Documents may be
        raw XML strings, parsed up front with optional process-pool
        sharding (``processes=N``) exactly as in :meth:`embed_many`.
        """
        expected_wm = (None if expected is None
                       else _as_watermark(expected))
        indexed = _resolve_strategy(strategy)
        items = list(items)  # consumed twice; accept iterators safely
        documents = _as_documents([document for document, _ in items],
                                  processes)
        return [
            self._decoder.detect(
                document, record, shape or self.scheme.shape,
                expected=expected_wm, indexed=indexed)
            for document, (_, record) in zip(documents, items)
        ]
