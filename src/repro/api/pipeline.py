"""A compiled watermarking pipeline: one scheme + one key, many documents.

The facade compiles a :class:`~repro.core.scheme.WatermarkingScheme`
once into a :class:`Pipeline` and reuses it for every document of that
deployment.  Reuse is what makes the batch APIs fast: the encoder and
decoder instances live as long as the pipeline, so the precomputed-state
PRF (HMAC pad + bounded digest memo) and the per-``(algorithm, params)``
plug-in instances built by the first document are warm for every
subsequent one.

Thread-safety: a pipeline may be shared across threads.  ``embed``
copies the input document (unless ``in_place=True``), and the only
shared mutable state is a set of append-only caches (PRF digest memo,
plug-in registry) whose dict operations are atomic under CPython's GIL;
two threads at worst compute the same cache entry twice.

Detection strategies (the ``strategy`` argument):

* ``"scan"`` — per-query XPath evaluation from the document root,
  O(|Q| x |document|); the reference engine.
* ``"indexed"`` — one shred through the shape plus inverted
  value->row indexes (:class:`~repro.rewriting.executor.
  LogicalExecutor`), O(|document| + |Q|); produces the same votes and
  verdict (asserted over every attack in :mod:`repro.attacks` for every
  dataset profile by the test suite).
* ``"auto"`` — the indexed executor, always.  Historically this
  switched on a query-count heuristic; with vote-for-vote equivalence
  proven for the bibliography, jobs and library profiles
  (``tests/test_detection_strategies.py``) the heuristic is gone and
  ``auto`` simply names the fast engine, keeping ``scan`` reachable as
  the explicit reference path.

The parallel batch engine (``processes=N``)
-------------------------------------------

``embed_many``/``detect_many`` accept parsed
:class:`~repro.xmlmodel.tree.Document` objects or raw XML strings.
With ``processes=N`` the *whole* per-document pipeline — parse, embed
or detect, and (with ``output="xml"``) serialise — runs as one fused
task inside a process-pool worker:

* The batch is cut into contiguous, evenly sized chunks
  (:func:`repro.parallel.chunk_evenly`; ~4 chunks per worker) and
  dispatched over a *persistent* pool shared with
  :func:`repro.xmlmodel.parse_many`, so fork cost is paid once per
  process count, not once per batch.
* Each chunk task carries the pickled pipeline plus its content
  fingerprint; a worker unpickles it **once** into a
  fingerprint-keyed cache and reuses the compiled pipeline (warm PRF
  pads/memos, plug-in instances) for every later chunk of any batch of
  the same deployment.  Unpicklable hot-path state (the HMAC key
  schedule, digest memos, plug-in caches) is dropped on pickling and
  lazily rebuilt in the worker — see ``KeyedPRF.__getstate__``.
* Raw-XML inputs are parsed *in the worker*, so a text batch never
  pays the old two-hop cost (parse results pickled back to the parent
  only to be re-pickled out for embedding); with ``output="xml"`` the
  marked tree is serialised in the worker too and only markup text
  returns.
* Results come back in input order, and a failure (syntax error, dead
  worker) either propagates exactly as the serial path would raise it
  or — for pool-level failures such as ``BrokenProcessPool`` or
  pickling a pathologically deep tree — falls back to the serial path:
  parallelism is a throughput optimisation, never a correctness
  dependency.  Pooled and serial outputs are bit-identical (locked by
  ``tests/test_parallel_engine.py``).

``processes=N`` pays off once the batch has enough total work to
amortise chunk dispatch — as a rule of thumb, ``batch size x
per-document cost >= ~20 ms`` on an otherwise idle machine; below
that, or on a single-core host, leave it unset.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import pickle
from functools import cached_property
from typing import Iterable, Optional, Sequence, Union

from repro import parallel
from repro.core.decoder import DetectionResult, WmXMLDecoder
from repro.faults import fault_point
from repro.core.encoder import EmbeddingResult, WmXMLEncoder
from repro.core.record import WatermarkRecord, all_same_record
from repro.core.scheme import WatermarkingScheme
from repro.core.watermark import Watermark
from repro.errors import WmXMLError
from repro.perf.profiler import profiled
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.parser import parse, parse_many
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.tree import Document

#: Accepted values of the ``strategy`` argument to :meth:`Pipeline.detect`.
DETECTION_STRATEGIES = ("auto", "indexed", "scan")

#: Accepted values of the ``output`` argument to :meth:`Pipeline.embed_many`.
EMBED_OUTPUTS = ("document", "xml")

MessageLike = Union[str, Watermark]

#: Batch APIs take parsed documents or raw XML text interchangeably.
DocumentLike = Union[Document, str]

#: Distinguishes pipelines whose scheme cannot serialise (see
#: :attr:`Pipeline.fingerprint`); a monotonic counter, unlike
#: ``id()``, is never reused after garbage collection.
_INSTANCE_COUNTER = itertools.count()


def content_fingerprint(scheme_content: str, key_fingerprint: str,
                        alpha: float) -> str:
    """The (scheme JSON, public key fingerprint, alpha) content hash.

    The one definition behind :attr:`Pipeline.fingerprint` and
    :meth:`WmXMLSystem.scheme_fingerprint`, so the registry can
    fingerprint a deployment without compiling its pipeline.
    """
    material = "\x1f".join([scheme_content, key_fingerprint,
                            repr(alpha)])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]


def scheme_content_key(scheme: WatermarkingScheme) -> str:
    """Deterministic content string for a scheme, JSON or not.

    Non-JSON-serialisable schemes (exotic plug-in params) hash their
    pickled form — stable within a process, which is what fingerprint
    contracts (worker cache keys, service ``ETag``s) need.  A scheme
    that can't even pickle falls back to identity keying, forfeiting
    sharing.
    """
    try:
        return json.dumps(scheme.to_dict(), sort_keys=True)
    except TypeError:
        try:
            blob = pickle.dumps(scheme)
        except Exception:
            return f"instance:{next(_INSTANCE_COUNTER)}"
        return "pickle:" + hashlib.sha256(blob).hexdigest()


def _as_watermark(message: MessageLike) -> Watermark:
    if isinstance(message, Watermark):
        return message
    return Watermark.from_message(message)


def _resolve_strategy(strategy: str) -> bool:
    """True when detection should run through the indexed executor."""
    if strategy not in DETECTION_STRATEGIES:
        raise WmXMLError(
            f"unknown detection strategy {strategy!r}; "
            f"choices: {DETECTION_STRATEGIES}")
    return strategy != "scan"


def _resolve_output(output: str) -> str:
    if output not in EMBED_OUTPUTS:
        raise WmXMLError(
            f"unknown embed output {output!r}; choices: {EMBED_OUTPUTS}")
    return output


def _as_documents(items: Iterable[DocumentLike],
                  processes: Optional[int] = None) -> list[Document]:
    """Parse any raw XML strings in ``items``, preserving order.

    Strings are parsed with ``strip_whitespace=True`` (the data-centric
    convention every loader in this system uses) via
    :func:`repro.xmlmodel.parse_many`, so ``processes`` can shard the
    parsing across workers; already-parsed documents pass through
    untouched.
    """
    resolved = list(items)
    text_positions = [index for index, item in enumerate(resolved)
                     if isinstance(item, str)]
    if text_positions:
        parsed = parse_many([resolved[index] for index in text_positions],
                            strip_whitespace=True, processes=processes)
        for index, document in zip(text_positions, parsed):
            resolved[index] = document
    return resolved


# -- worker side of the parallel engine ------------------------------------------------------------

#: Per-worker compiled pipelines, keyed by content fingerprint; each
#: worker unpickles a deployment once and keeps its caches warm across
#: every chunk and batch that names the same fingerprint.
_WORKER_PIPELINES: dict[str, "Pipeline"] = {}

#: Bound on distinct deployments a worker keeps compiled.
_WORKER_PIPELINE_LIMIT = 8


def _worker_pipeline(fingerprint: str, payload: bytes) -> "Pipeline":
    pipeline = _WORKER_PIPELINES.get(fingerprint)
    if pipeline is None:
        pipeline = pickle.loads(payload)
        if len(_WORKER_PIPELINES) >= _WORKER_PIPELINE_LIMIT:
            del _WORKER_PIPELINES[next(iter(_WORKER_PIPELINES))]
        _WORKER_PIPELINES[fingerprint] = pipeline
    return pipeline


def _embed_chunk(task: tuple) -> list[EmbeddingResult]:
    """Fused embed task: parse -> embed -> (optionally) serialise.

    Runs inside a pool worker.  Embedding is in-place: the tree here is
    either freshly parsed or the pickled private copy of the caller's
    document, so no further defensive copy is needed — the output is
    bit-identical to the parent-side ``embed()`` either way.
    """
    fingerprint, payload, items, watermark, output = task
    # The "pool.chunk" fault point simulates a dying or raising worker
    # (armed with scope="worker" it fires only in forked children, so
    # the parent's serial fallback survives the experiment).
    fault_point("pool.chunk")
    pipeline = _worker_pipeline(fingerprint, payload)
    encoder = pipeline._encoder
    results = []
    for item in items:
        document = (parse(item, strip_whitespace=True)
                    if isinstance(item, str) else item)
        result = encoder.embed(document, watermark, in_place=True)
        if output == "xml":
            result = EmbeddingResult(
                document=None, record=result.record, stats=result.stats,
                xml=serialize(result.document))
        results.append(result)
    return results


def _detect_chunk(task: tuple) -> list[DetectionResult]:
    """Fused detect task: parse -> detect, one worker-local decoder.

    ``records`` is either ``("shared", record)`` — the one-record-
    many-copies batch, where the record is pickled once per chunk
    instead of once per item (per-item record payloads dominated
    pooled detect dispatch) — or ``("each", [record, ...])`` aligned
    with ``documents``.
    """
    fingerprint, payload, documents, records, expected, shape, indexed = task
    fault_point("pool.chunk")
    pipeline = _worker_pipeline(fingerprint, payload)
    decoder = pipeline._decoder
    shape = shape or pipeline.scheme.shape
    mode, payload_records = records
    record_for = (itertools.repeat(payload_records) if mode == "shared"
                  else payload_records)
    results = []
    for document, record in zip(documents, record_for):
        if isinstance(document, str):
            document = parse(document, strip_whitespace=True)
        results.append(decoder.detect(document, record, shape,
                                      expected=expected, indexed=indexed))
    return results


class Pipeline:
    """A reusable, thread-safe embed/detect engine for one deployment."""

    def __init__(self, scheme: WatermarkingScheme,
                 secret_key: Union[str, bytes],
                 alpha: float = 1e-3) -> None:
        self.scheme = scheme
        self.alpha = alpha
        self._encoder = WmXMLEncoder(scheme, secret_key)
        self._decoder = WmXMLDecoder(secret_key, alpha=alpha)

    @property
    def shape(self) -> DocumentShape:
        """The document organisation this pipeline embeds through."""
        return self.scheme.shape

    @property
    def key_fingerprint(self) -> str:
        """Public fingerprint of the owning key (safe to log)."""
        return self._encoder.prf.fingerprint()

    @cached_property
    def fingerprint(self) -> str:
        """Content fingerprint of (scheme, key, alpha) — no secrets.

        Keys the per-worker pipeline cache of the parallel engine: two
        pipelines compiled from equal deployments share one worker-side
        compilation.  Derived from the declarative scheme form, the
        *public* key fingerprint and alpha; a scheme that cannot
        serialise to JSON hashes its pickled form instead (see
        :func:`scheme_content_key`).
        """
        return content_fingerprint(scheme_content_key(self.scheme),
                                   self.key_fingerprint, self.alpha)

    # -- embedding ------------------------------------------------------------

    def embed(self, document: Document, message: MessageLike,
              in_place: bool = False) -> EmbeddingResult:
        """Embed a message (text or :class:`Watermark`) into a document."""
        return self._encoder.embed(document, _as_watermark(message),
                                   in_place=in_place)

    @profiled("api.embed_many")
    def embed_many(self, documents: Iterable[DocumentLike],
                   message: MessageLike,
                   in_place: bool = False,
                   processes: Optional[int] = None,
                   output: str = "document") -> list[EmbeddingResult]:
        """Embed the same message into many documents.

        One compiled pipeline serves the whole batch, so the PRF digest
        memo and plug-in instances warmed by the first document are
        reused by the rest (tracked by the E9 bench's
        ``api_embed_many_ms`` stage).

        Entries may be raw XML strings.  With ``processes=N`` the full
        per-document pipeline (parse -> embed -> serialise) is sharded
        over the persistent worker pool as fused chunk tasks — see the
        module docstring; without it the batch runs serially in this
        process.  ``output="xml"`` returns results whose ``xml`` field
        carries the serialised marked document (``document`` is None),
        which is both what a service ships and the cheap way to get
        results back from workers.

        ``in_place=True`` mutates caller-supplied ``Document`` objects,
        which only a same-process embed can honour — such batches run
        serially regardless of ``processes``.
        """
        watermark = _as_watermark(message)
        output = _resolve_output(output)
        batch = list(documents)
        if self._poolable(processes, batch,
                          in_place and any(isinstance(item, Document)
                                           for item in batch)):
            try:
                return self._embed_pooled(batch, watermark, processes,
                                          output)
            except (RecursionError, parallel.BrokenProcessPool):
                pass  # fall back to the serial path below
        results = [self._encoder.embed(document, watermark,
                                       in_place=in_place)
                   for document in _as_documents(batch, processes)]
        if output == "xml":
            results = [
                EmbeddingResult(document=None, record=result.record,
                                stats=result.stats,
                                xml=serialize(result.document))
                for result in results
            ]
        return results

    # -- detection ------------------------------------------------------------

    def detect(
        self,
        document: Document,
        record: WatermarkRecord,
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
    ) -> DetectionResult:
        """Run the stored query set Q against a suspected document.

        ``shape`` names the document's *current* organisation; passing a
        different shape than the scheme's rewrites every stored query
        for it (Figure 2).  ``strategy`` picks the query engine — see
        the module docstring.
        """
        return self._decoder.detect(
            document, record, shape or self.scheme.shape,
            expected=None if expected is None else _as_watermark(expected),
            indexed=_resolve_strategy(strategy),
        )

    @profiled("api.detect_many")
    def detect_many(
        self,
        items: Iterable[tuple[DocumentLike, WatermarkRecord]],
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
        processes: Optional[int] = None,
    ) -> list[DetectionResult]:
        """Detect over many (document, record) pairs with one decoder.

        ``expected``, ``shape`` and ``strategy`` are resolved once and
        applied identically to every pair — pooled or serial, every
        document is judged by the same engine against the same
        expectation (vote-for-vote equality of pooled and serial runs,
        for every strategy, is locked by the test suite).  Documents
        may be raw XML strings; with ``processes=N`` parse + detect run
        as fused chunk tasks on the worker pool, exactly as in
        :meth:`embed_many`.
        """
        expected_wm = (None if expected is None
                       else _as_watermark(expected))
        indexed = _resolve_strategy(strategy)
        batch = list(items)  # accept iterators safely
        if self._poolable(processes, batch, False):
            try:
                return self._detect_pooled(batch, expected_wm, shape,
                                           indexed, processes)
            except (RecursionError, parallel.BrokenProcessPool):
                pass  # fall back to the serial path below
        documents = _as_documents([document for document, _ in batch],
                                  processes)
        return [
            self._decoder.detect(
                document, record, shape or self.scheme.shape,
                expected=expected_wm, indexed=indexed)
            for document, (_, record) in zip(documents, batch)
        ]

    # -- parallel dispatch ------------------------------------------------------------

    @staticmethod
    def _poolable(processes: Optional[int], batch: Sequence,
                  needs_caller_state: bool) -> bool:
        """Whether a batch should go to the worker pool at all."""
        return (processes is not None and processes > 1
                and len(batch) > 1 and not needs_caller_state)

    def _payload(self) -> tuple[str, bytes]:
        """(fingerprint, pickled self) shipped with every chunk task.

        The pickle is lean by construction: the PRF drops its HMAC
        schedule and memos, encoder/decoder drop their plug-in caches
        (all rebuilt lazily worker-side).  Note the secret key itself
        travels inside the payload — over the pool's process pipe on
        this machine, never into any stored artefact.
        """
        return self.fingerprint, pickle.dumps(self)

    def _embed_pooled(self, batch: list[DocumentLike],
                      watermark: Watermark, processes: int,
                      output: str) -> list[EmbeddingResult]:
        fingerprint, payload = self._payload()
        tasks = [
            (fingerprint, payload, chunk, watermark, output)
            for chunk in parallel.chunk_evenly(
                batch, processes * parallel.CHUNKS_PER_WORKER)
        ]
        # map_recovering localises failure to the chunk: a dead worker
        # costs one retry on a fresh pool, then a serial run of that
        # chunk alone — never the whole batch.
        chunks = parallel.map_recovering(processes, _embed_chunk, tasks)
        return [result for chunk in chunks for result in chunk]

    def _detect_pooled(self, batch: list, expected: Optional[Watermark],
                       shape: Optional[DocumentShape], indexed: bool,
                       processes: int) -> list[DetectionResult]:
        fingerprint, payload = self._payload()
        documents = [document for document, _ in batch]
        records = [record for _, record in batch]
        chunk_count = processes * parallel.CHUNKS_PER_WORKER
        document_chunks = parallel.chunk_evenly(documents, chunk_count)
        # The piracy-hunting batch checks many copies against one
        # record; each chunk then ships the record once instead of
        # once per item (per-item payloads dominate pooled detect
        # dispatch) — see all_same_record for why equality matters.
        if all_same_record(records):
            tasks = [
                (fingerprint, payload, chunk, ("shared", records[0]),
                 expected, shape, indexed)
                for chunk in document_chunks
            ]
        else:
            # chunk_evenly is deterministic for a given (length, count),
            # so the record chunks align index-for-index with the
            # document chunks.
            record_chunks = parallel.chunk_evenly(records, chunk_count)
            tasks = [
                (fingerprint, payload, chunk, ("each", record_chunk),
                 expected, shape, indexed)
                for chunk, record_chunk in zip(document_chunks,
                                               record_chunks)
            ]
        chunks = parallel.map_recovering(processes, _detect_chunk, tasks)
        return [result for chunk in chunks for result in chunk]
