"""A compiled watermarking pipeline: one scheme + one key, many documents.

The facade compiles a :class:`~repro.core.scheme.WatermarkingScheme`
once into a :class:`Pipeline` and reuses it for every document of that
deployment.  Reuse is what makes the batch APIs fast: the encoder and
decoder instances live as long as the pipeline, so the precomputed-state
PRF (HMAC pad + bounded digest memo) and the per-``(algorithm, params)``
plug-in instances built by the first document are warm for every
subsequent one.

Thread-safety: a pipeline may be shared across threads.  ``embed``
copies the input document (unless ``in_place=True``), and the only
shared mutable state is a set of append-only caches (PRF digest memo,
plug-in registry) whose dict operations are atomic under CPython's GIL;
two threads at worst compute the same cache entry twice.

Detection strategies (the ``strategy`` argument):

* ``"scan"`` — per-query XPath evaluation from the document root,
  O(|Q| x |document|); the reference engine.
* ``"indexed"`` — one shred through the shape plus inverted
  value->row indexes (:class:`~repro.rewriting.executor.
  LogicalExecutor`), O(|document| + |Q|); produces the same votes and
  verdict (asserted over every attack in :mod:`repro.attacks` by the
  test suite).
* ``"auto"`` — ``indexed`` once the query set is large enough for the
  one-time shred to pay off, ``scan`` for tiny records.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from repro.core.decoder import DetectionResult, WmXMLDecoder
from repro.core.encoder import EmbeddingResult, WmXMLEncoder
from repro.core.record import WatermarkRecord
from repro.core.scheme import WatermarkingScheme
from repro.core.watermark import Watermark
from repro.errors import WmXMLError
from repro.perf.profiler import profiled
from repro.semantics.shape import DocumentShape
from repro.xmlmodel.tree import Document

#: Accepted values of the ``strategy`` argument to :meth:`Pipeline.detect`.
DETECTION_STRATEGIES = ("auto", "indexed", "scan")

#: ``auto`` switches to the indexed executor at this many stored queries
#: (below it, |Q| XPath scans are cheaper than one shred + index build).
AUTO_INDEXED_MIN_QUERIES = 8

MessageLike = Union[str, Watermark]


def _as_watermark(message: MessageLike) -> Watermark:
    if isinstance(message, Watermark):
        return message
    return Watermark.from_message(message)


def _resolve_strategy(strategy: str, record: WatermarkRecord) -> bool:
    """True when detection should run through the indexed executor."""
    if strategy not in DETECTION_STRATEGIES:
        raise WmXMLError(
            f"unknown detection strategy {strategy!r}; "
            f"choices: {DETECTION_STRATEGIES}")
    if strategy == "auto":
        return len(record.queries) >= AUTO_INDEXED_MIN_QUERIES
    return strategy == "indexed"


class Pipeline:
    """A reusable, thread-safe embed/detect engine for one deployment."""

    def __init__(self, scheme: WatermarkingScheme,
                 secret_key: Union[str, bytes],
                 alpha: float = 1e-3) -> None:
        self.scheme = scheme
        self.alpha = alpha
        self._encoder = WmXMLEncoder(scheme, secret_key)
        self._decoder = WmXMLDecoder(secret_key, alpha=alpha)

    @property
    def shape(self) -> DocumentShape:
        """The document organisation this pipeline embeds through."""
        return self.scheme.shape

    @property
    def key_fingerprint(self) -> str:
        """Public fingerprint of the owning key (safe to log)."""
        return self._encoder.prf.fingerprint()

    # -- embedding ------------------------------------------------------------

    def embed(self, document: Document, message: MessageLike,
              in_place: bool = False) -> EmbeddingResult:
        """Embed a message (text or :class:`Watermark`) into a document."""
        return self._encoder.embed(document, _as_watermark(message),
                                   in_place=in_place)

    @profiled("api.embed_many")
    def embed_many(self, documents: Iterable[Document],
                   message: MessageLike,
                   in_place: bool = False) -> list[EmbeddingResult]:
        """Embed the same message into many documents.

        One encoder serves the whole batch, so the PRF digest memo and
        plug-in instances warmed by the first document are reused by the
        rest — the per-document cost drops measurably versus constructing
        a fresh encoder per document (tracked by the E9 bench's
        ``api_embed_many_ms`` stage).
        """
        watermark = _as_watermark(message)
        return [self._encoder.embed(document, watermark, in_place=in_place)
                for document in documents]

    # -- detection ------------------------------------------------------------

    def detect(
        self,
        document: Document,
        record: WatermarkRecord,
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
    ) -> DetectionResult:
        """Run the stored query set Q against a suspected document.

        ``shape`` names the document's *current* organisation; passing a
        different shape than the scheme's rewrites every stored query
        for it (Figure 2).  ``strategy`` picks the query engine — see
        the module docstring.
        """
        return self._decoder.detect(
            document, record, shape or self.scheme.shape,
            expected=None if expected is None else _as_watermark(expected),
            indexed=_resolve_strategy(strategy, record),
        )

    @profiled("api.detect_many")
    def detect_many(
        self,
        items: Sequence[tuple[Document, WatermarkRecord]],
        *,
        expected: Optional[MessageLike] = None,
        shape: Optional[DocumentShape] = None,
        strategy: str = "auto",
    ) -> list[DetectionResult]:
        """Detect over many (document, record) pairs with one decoder.

        The decoder's PRF and plug-in caches are shared across the
        batch, amortising key re-derivation the same way
        :meth:`embed_many` amortises embedding state.
        """
        expected_wm = (None if expected is None
                       else _as_watermark(expected))
        return [
            self._decoder.detect(
                document, record, shape or self.scheme.shape,
                expected=expected_wm,
                indexed=_resolve_strategy(strategy, record))
            for document, record in items
        ]
