"""Shared process-pool infrastructure for batch sharding.

Every batch API that escapes the GIL — ``parse_many(processes=N)``,
``Pipeline.embed_many``/``detect_many`` — shards its work over a worker
pool from this module.  Pools are *persistent*: the first batch with
``processes=N`` forks the workers, subsequent batches reuse them, so
the fork/bootstrap cost is paid once per process count instead of once
per call.  That matters for the service workload the facade targets:
a 50-document batch embeds in tens of milliseconds, which a
per-call pool would spend entirely on process startup.

Worker-side state (per-worker compiled pipelines, warm PRF memos) is
keyed by content fingerprints in the task payloads, so one pool serves
any number of deployments concurrently — see
:mod:`repro.api.pipeline`.

Failure handling: a pool whose workers died (``BrokenProcessPool``) is
discarded so the next request forks a fresh one; callers treat the
error as "fall back to the serial path" — parallelism is a throughput
optimisation, never a correctness dependency.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = [
    "BrokenProcessPool",
    "CHUNKS_PER_WORKER",
    "chunk_evenly",
    "discard_pool",
    "map_recovering",
    "map_sharded",
    "shared_pool",
    "shutdown_pools",
]

T = TypeVar("T")

#: Chunks dispatched per worker by the sharded batch APIs: enough
#: slack to balance uneven items without flooding the task queue with
#: per-chunk payloads.
CHUNKS_PER_WORKER = 4

#: Live executors, keyed by worker count.  Guarded by a lock: the
#: service daemon's request threads call the batch APIs concurrently,
#: and a check-then-create race would orphan a whole executor's worker
#: processes.
_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def shared_pool(processes: int) -> ProcessPoolExecutor:
    """The persistent executor with ``processes`` workers (lazily forked).

    Workers are started on demand by the executor itself, so asking for
    a pool is cheap until work is actually submitted.
    """
    if processes < 1:
        raise ValueError("processes must be >= 1")
    with _POOLS_LOCK:
        pool = _POOLS.get(processes)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=processes)
            _POOLS[processes] = pool
        return pool


def discard_pool(processes: int) -> None:
    """Drop (and shut down) the pool for ``processes`` workers.

    Called after a :class:`BrokenProcessPool` so the next batch forks a
    healthy pool instead of failing forever on the dead one.
    """
    with _POOLS_LOCK:
        pool = _POOLS.pop(processes, None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every persistent pool (atexit; also handy in tests)."""
    while True:
        with _POOLS_LOCK:
            if not _POOLS:
                return
            _, pool = _POOLS.popitem()
        pool.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


def chunk_evenly(items: Sequence[T], chunks: int) -> list[Sequence[T]]:
    """Split ``items`` into at most ``chunks`` contiguous, even slices.

    Contiguity preserves input order under ``pool.map`` + flatten; even
    sizing (the first ``remainder`` chunks get one extra item) keeps the
    worker load balanced without a scheduler.
    """
    count = len(items)
    chunks = max(1, min(chunks, count))
    size, remainder = divmod(count, chunks)
    out: list[Sequence[T]] = []
    start = 0
    for index in range(chunks):
        end = start + size + (1 if index < remainder else 0)
        out.append(items[start:end])
        start = end
    return out


def map_sharded(processes: int, func: Callable, tasks: Iterable) -> list:
    """``pool.map`` over pre-chunked tasks, preserving order.

    Exceptions raised inside a worker propagate to the caller exactly
    as the serial path would raise them (the task payloads are the
    chunking unit, so ``chunksize=1`` adds no IPC overhead).
    """
    pool = shared_pool(processes)
    try:
        return list(pool.map(func, tasks))
    except BrokenProcessPool:
        discard_pool(processes)
        raise


def map_recovering(processes: int, func: Callable, tasks: Iterable,
                   serial: Optional[Callable] = None) -> list:
    """Like :func:`map_sharded`, but failures cost one *chunk*, not
    the batch.

    A worker death (``BrokenProcessPool``) fails every in-flight
    future, but only the chunk that killed the worker is actually
    poisoned — so each unfinished chunk is retried once on a fresh
    pool, and a chunk that still fails runs serially in this process
    via ``serial`` (default: ``func``).  Chunks that completed before
    the crash keep their results; order is preserved throughout.

    A chunk whose serial run *also* raises propagates normally: the
    recovery ladder absorbs infrastructure failures, never correctness
    errors.
    """
    tasks = list(tasks)
    results: list = [None] * len(tasks)
    pending = set(range(len(tasks)))
    for _attempt in range(2):
        if not pending:
            break
        pool = shared_pool(processes)
        try:
            futures = {index: pool.submit(func, tasks[index])
                       for index in sorted(pending)}
        except RuntimeError:
            # The pool was shut down under us (interpreter teardown,
            # concurrent discard): skip straight to the serial ladder.
            discard_pool(processes)
            break
        broken = False
        for index, future in futures.items():
            try:
                results[index] = future.result()
                pending.discard(index)
            except BrokenProcessPool:
                broken = True
            except Exception:
                # The chunk failed but the pool survived; leave it
                # pending for the retry / serial ladder.
                pass
        if broken:
            discard_pool(processes)
    serial_func = func if serial is None else serial
    for index in sorted(pending):
        results[index] = serial_func(tasks[index])
    return results
