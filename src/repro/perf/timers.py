"""Stage timers: the measuring substrate of the perf package.

A :class:`StageTimer` accumulates wall-clock time per named stage.
Stages may repeat (every call adds to the stage's total and count) and
may nest (each stage records its own wall time; nesting is purely an
annotation concern — "shred" inside "embed" simply shows up as both).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


@dataclass
class StageStats:
    """Accumulated timing for one named stage."""

    name: str
    total_seconds: float = 0.0
    calls: int = 0

    @property
    def total_ms(self) -> float:
        return self.total_seconds * 1000.0

    @property
    def mean_ms(self) -> float:
        return self.total_ms / self.calls if self.calls else 0.0

    def add(self, seconds: float) -> None:
        self.total_seconds += seconds
        self.calls += 1


class StageTimer:
    """Accumulates wall-clock durations per named pipeline stage."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._stages: dict[str, StageStats] = {}

    # -- recording ------------------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name``."""
        start = self._clock()
        try:
            yield
        finally:
            self.record(name, self._clock() - start)

    def record(self, name: str, seconds: float) -> None:
        """Add a measured duration to stage ``name``."""
        stats = self._stages.get(name)
        if stats is None:
            stats = self._stages[name] = StageStats(name)
        stats.add(seconds)

    def measure(self, name: str, func: Callable, *args, **kwargs):
        """Run ``func`` under stage ``name`` and return its result."""
        with self.stage(name):
            return func(*args, **kwargs)

    # -- reading ------------------------------------------------------------

    @property
    def stages(self) -> dict[str, StageStats]:
        """name -> stats, in first-recorded order."""
        return dict(self._stages)

    def total_ms(self, name: str) -> float:
        """Total milliseconds recorded under ``name`` (0 when absent)."""
        stats = self._stages.get(name)
        return stats.total_ms if stats else 0.0

    def as_dict(self) -> dict[str, float]:
        """``{stage: total_ms}`` snapshot (JSON-friendly)."""
        return {name: stats.total_ms for name, stats in self._stages.items()}

    def render(self, title: Optional[str] = None) -> str:
        """Human-readable stage table."""
        lines: list[str] = []
        if title:
            lines.append(title)
            lines.append("-" * len(title))
        width = max((len(name) for name in self._stages), default=5)
        lines.append(f"{'stage'.ljust(width)}  {'total-ms':>10}  "
                     f"{'calls':>6}  {'mean-ms':>10}")
        for stats in self._stages.values():
            lines.append(
                f"{stats.name.ljust(width)}  {stats.total_ms:>10.3f}  "
                f"{stats.calls:>6}  {stats.mean_ms:>10.3f}")
        return "\n".join(lines)
