"""Throughput reporting: timings + work counts -> rates.

The E9 experiment (and the paper's §3 performance discussion) talks in
throughput — elements marked per second, queries answered per second —
not raw milliseconds.  :class:`ThroughputReporter` owns that conversion
so the CLI, the bench harness, and the experiment tables all derive
rates the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.perf.timers import StageTimer


@dataclass(frozen=True)
class ThroughputLine:
    """One measured stage with its work count."""

    stage: str
    count: int
    seconds: float
    unit: str = "items"

    @property
    def rate(self) -> float:
        """Work items per second (0 when the stage took no time)."""
        if self.seconds <= 0:
            return 0.0
        return self.count / self.seconds

    def render(self) -> str:
        return (f"{self.stage}: {self.count} {self.unit} in "
                f"{self.seconds * 1000:.1f} ms -> {self.rate:,.0f} "
                f"{self.unit}/s")


class ThroughputReporter:
    """Collects stage/count pairs and renders a throughput summary."""

    def __init__(self) -> None:
        self._lines: list[ThroughputLine] = []

    def add(self, stage: str, count: int, seconds: float,
            unit: str = "items") -> ThroughputLine:
        line = ThroughputLine(stage, count, seconds, unit)
        self._lines.append(line)
        return line

    def add_from_timer(self, timer: StageTimer, stage: str, count: int,
                       unit: str = "items") -> Optional[ThroughputLine]:
        """Add a line for ``stage`` using the timer's recorded total."""
        total_ms = timer.total_ms(stage)
        if not total_ms:
            return None
        return self.add(stage, count, total_ms / 1000.0, unit)

    @property
    def lines(self) -> list[ThroughputLine]:
        return list(self._lines)

    def render(self, title: str = "throughput") -> str:
        out = [title, "-" * len(title)]
        out.extend(line.render() for line in self._lines)
        return "\n".join(out)
