"""The ``@profiled`` decorator and the active-timer stack.

Library internals cannot take a :class:`~repro.perf.timers.StageTimer`
argument without polluting every signature, so the profiler keeps a
small stack of active timers instead: ``use_timer(timer)`` activates one
for a ``with`` block, and any ``@profiled`` function that runs inside
records into it.  When no timer is active the decorator's overhead is a
single list check — cheap enough to leave instrumentation on in
production code paths.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, TypeVar

from repro.perf.timers import StageTimer

_ACTIVE: list[StageTimer] = []

F = TypeVar("F", bound=Callable)


def active_timer() -> Optional[StageTimer]:
    """The innermost active timer, or None."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def use_timer(timer: StageTimer) -> Iterator[StageTimer]:
    """Activate ``timer`` for the enclosed block."""
    _ACTIVE.append(timer)
    try:
        yield timer
    finally:
        _ACTIVE.pop()


def profiled(stage: Optional[str] = None) -> Callable[[F], F]:
    """Record the wrapped function's wall time under ``stage``.

    ``stage`` defaults to the function's qualified name.  Recording only
    happens while a timer is active (see :func:`use_timer`); otherwise
    the call passes straight through.
    """

    def decorate(func: F) -> F:
        name = stage or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not _ACTIVE:
                return func(*args, **kwargs)
            with _ACTIVE[-1].stage(name):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
