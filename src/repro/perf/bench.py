"""The E9 regression bench: measure, archive, and gate the hot path.

Runs the stages E9 measures (shred, embed, detect via per-query scan,
detect via the indexed executor, parse) over the bibliography dataset,
taking the best of several repeats per stage.  Results are archived to
``BENCH_e9.json``; once a best time is on record, any stage more than
:data:`REGRESSION_THRESHOLD` slower than its best fails the run — so a
PR that quietly re-introduces a quadratic loop is caught by CI, not by
a user.

Used by ``wmxml bench`` and by ``benchmarks/regression.py`` (the
``run_bench.sh`` entry point).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from typing import Optional

from repro.errors import WmXMLError

#: A stage this much slower than its best recorded time is a regression.
REGRESSION_THRESHOLD = 1.20

#: Default archive location (repo root by convention).
BENCH_FILE = "BENCH_e9.json"

_FORMAT = "wmxml-bench-e9-v1"

#: How many archived runs to keep (oldest dropped first).
_HISTORY_LIMIT = 50

#: Documents per batch in the API-level embed_many throughput stage.
BATCH_DOCS = 50


class BenchError(WmXMLError, RuntimeError):
    """A bench run that cannot produce meaningful timings."""

    code = "bench-error"


def _host() -> str:
    """Stable identifier for the measuring machine.

    Best times are only comparable on the same hardware, so the archive
    keys them per host: a contributor on a slower machine records their
    own baseline on first run instead of failing against someone
    else's.
    """
    return platform.node() or "unknown-host"


def run_e9_bench(books: int = 200, repeats: int = 3,
                 secret_key: str = "wmxml-bench-key",
                 message: str = "(c) WmXML", gamma: int = 2,
                 processes: int = 4) -> dict:
    """Measure the E9 pipeline stages; best-of-``repeats`` per stage.

    Returns ``{"books", "elements", "queries", "stages": {name: ms}}``.
    Detection outcomes are asserted along the way so a bench run can
    never report a fast time for a broken pipeline.

    ``processes`` sizes the parallel batch-engine stages
    (``api_embed_many_p{N}_ms`` / ``api_detect_many_p{N}_ms``), which
    run the fused raw-XML -> parse -> embed/detect -> serialise
    pipeline over the persistent worker pool and are asserted
    bit-identical to their serial equivalents; ``processes=0`` skips
    them (serial-only hosts).
    """
    # Imported here: this module is reachable from ``repro.perf`` docs
    # while the core layer itself uses ``repro.perf.profiler``.
    from repro.core import Watermark, WmXMLDecoder, WmXMLEncoder
    from repro.datasets import bibliography
    from repro.xmlmodel import parse, serialize

    document = bibliography.generate_document(bibliography.BibliographyConfig(
        books=books, editors=max(2, books // 13), seed=42))
    scheme = bibliography.default_scheme(gamma)
    watermark = Watermark.from_message(message)
    text = serialize(document)

    stages: dict[str, float] = {}

    def best(name: str, func) -> None:
        best_seconds = None
        for _ in range(repeats):
            start = time.perf_counter()
            func()
            elapsed = time.perf_counter() - start
            if best_seconds is None or elapsed < best_seconds:
                best_seconds = elapsed
        stages[name] = best_seconds * 1000.0

    best("parse_ms", lambda: parse(text))
    best("serialize_ms", lambda: serialize(document))
    best("shred_ms", lambda: scheme.shape.shred(document))

    result_box: dict = {}

    def do_embed() -> None:
        encoder = WmXMLEncoder(scheme, secret_key)
        result_box["result"] = encoder.embed(document, watermark)

    best("embed_ms", do_embed)
    result = result_box["result"]

    def do_detect(indexed: bool) -> None:
        decoder = WmXMLDecoder(secret_key)
        outcome = decoder.detect(result.document, result.record,
                                 scheme.shape, expected=watermark,
                                 indexed=indexed)
        if not outcome.detected:
            raise BenchError(
                f"bench pipeline failed to detect its own mark at "
                f"books={books} (votes {outcome.votes_matching}/"
                f"{outcome.votes_total}); the document is too small to "
                "carry the watermark — use a larger --books")

    best("detect_scan_ms", lambda: do_detect(False))
    best("detect_indexed_ms", lambda: do_detect(True))

    # API-level batch throughput: one compiled pipeline embedding a
    # fleet of small bibliographies, the service-facing workload the
    # facade's embed_many() exists for.
    from repro.api import Pipeline

    batch = [
        bibliography.generate_document(bibliography.BibliographyConfig(
            books=max(10, books // 10), editors=4, seed=1000 + index))
        for index in range(BATCH_DOCS)
    ]
    pipeline = Pipeline(scheme, secret_key)
    embed_box: dict = {}

    def do_embed_many() -> None:
        embed_box["results"] = pipeline.embed_many(batch, watermark)

    best("api_embed_many_ms", do_embed_many)
    batch_results = embed_box["results"]

    # API-level batch detection over the marked fleet (one decoder, the
    # scan/index split is covered above; this is the service-facing
    # verdict-per-document workload).
    detect_items = [(item.document, item.record) for item in batch_results]

    # Tiny fleets (--books < 100 shrinks each batch document below the
    # ~20 books where a verdict reaches significance) still answer all
    # their queries; only full-size runs assert the strict verdict.
    def check_batch_outcomes(outcomes, stage: str) -> None:
        if not all(outcome.queries_answered == outcome.queries_total
                   for outcome in outcomes):
            raise BenchError(f"{stage} lost queries over its own marks")
        if books >= 100 and not all(outcome.detected
                                    for outcome in outcomes):
            raise BenchError(f"{stage} failed to detect its own marks "
                             "across the batch")

    def do_detect_many() -> None:
        check_batch_outcomes(
            pipeline.detect_many(detect_items, expected=watermark),
            "api_detect_many")

    best("api_detect_many_ms", do_detect_many)

    # Batch parse throughput: the per-document parse is the batch
    # bottleneck the scanner attacks; one reused parser over the fleet
    # (serial — process-pool sharding is measured by the p{N} stages
    # below).
    from repro.xmlmodel import parse_many

    batch_texts = [serialize(item) for item in batch]

    def do_parse_many() -> None:
        parsed = parse_many(batch_texts)
        if len(parsed) != len(batch_texts):
            raise BenchError("parse_many dropped documents")

    best("parse_many_ms", do_parse_many)

    # Fused end-to-end batch: raw XML in, marked XML out — the full
    # service round-trip (parse -> embed -> serialise), serially ...
    xml_box: dict = {}

    def do_embed_many_xml() -> None:
        xml_box["results"] = pipeline.embed_many(batch_texts, watermark,
                                                 output="xml")

    best("api_embed_many_xml_ms", do_embed_many_xml)
    serial_xml = [item.xml for item in xml_box["results"]]
    serial_records = [item.record for item in xml_box["results"]]

    # The fused detect equivalent: raw marked XML in, verdicts out —
    # the apples-to-apples serial baseline for the pooled detect stage
    # (which also pays the per-document parse).
    marked_items = list(zip(serial_xml, serial_records))
    detect_xml_box: dict = {}

    def do_detect_many_xml() -> None:
        detect_xml_box["outcomes"] = pipeline.detect_many(
            marked_items, expected=watermark)

    best("api_detect_many_xml_ms", do_detect_many_xml)
    serial_outcomes = detect_xml_box["outcomes"]
    check_batch_outcomes(serial_outcomes, "api_detect_many_xml")

    # ... and sharded over the persistent worker pool.  Outputs are
    # asserted bit-identical to the serial run, so the parallel stages
    # can never trade correctness for speed.
    if processes and processes > 1:
        pooled_box: dict = {}

        def do_embed_pooled() -> None:
            pooled_box["results"] = pipeline.embed_many(
                batch_texts, watermark, processes=processes, output="xml")

        best(f"api_embed_many_p{processes}_ms", do_embed_pooled)
        pooled_xml = [item.xml for item in pooled_box["results"]]
        if pooled_xml != serial_xml:
            raise BenchError(
                "pooled embed output diverged from the serial batch")

        pooled_detect_box: dict = {}

        def do_detect_pooled() -> None:
            pooled_detect_box["outcomes"] = pipeline.detect_many(
                marked_items, expected=watermark, processes=processes)

        best(f"api_detect_many_p{processes}_ms", do_detect_pooled)
        pooled_dicts = [outcome.to_dict()
                        for outcome in pooled_detect_box["outcomes"]]
        if pooled_dicts != [outcome.to_dict()
                            for outcome in serial_outcomes]:
            raise BenchError(
                "pooled detect outcomes diverged from the serial batch")
        check_batch_outcomes(pooled_detect_box["outcomes"], "pooled detect")

    # Service round-trip latency: one embed request over loopback HTTP
    # (JSON envelope in, marked XML + record out) against an in-process
    # daemon — the protocol + transport overhead the wire adds on top
    # of the fused pipeline, gated like every other stage.  The
    # response is asserted bit-identical to the serial batch's first
    # document, so the service path can never drift from the library.
    from repro.api import WmXMLSystem
    from repro.service import WmXMLClient, WmXMLService, running_server

    system = WmXMLSystem(secret_key)
    system.register("bench", scheme)
    with running_server(WmXMLService(system)) as server:
        client = WmXMLClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            scheme="bench")
        service_box: dict = {}

        def do_service_embed() -> None:
            service_box["result"] = client.embed(batch_texts[0], message)

        best("service_embed_ms", do_service_embed)
        if service_box["result"].xml != serial_xml[0]:
            raise BenchError(
                "service embed response diverged from the local pipeline")

    # The same loopback embed against a multi-tenant daemon: bearer
    # token verification + scope check + two token-bucket charges ride
    # every request, and the gate proves that auth overhead stays in
    # the noise next to service_embed_ms.  Output differs from the
    # single-tenant daemon's by design (the tenant embeds under a
    # *derived* subkey), so correctness is asserted by detection, not
    # bit-identity.
    from repro.tenants import TenantDirectory, TenantsConfig

    tenant_config = TenantsConfig.from_dict({
        "format": "wmxml-tenants-v1",
        "keys": {"1": secret_key},
        "tenants": {"bench": {}},
    })
    directory = TenantDirectory(tenant_config)
    directory.register("bench", "bench", scheme)
    with running_server(WmXMLService(tenants=directory)) as server:
        auth_client = WmXMLClient(
            f"http://127.0.0.1:{server.server_address[1]}",
            scheme="bench", token=directory.mint_token("bench"))
        auth_box: dict = {}

        def do_service_auth_embed() -> None:
            auth_box["result"] = auth_client.embed(batch_texts[0],
                                                   message)

        best("service_auth_embed_ms", do_service_auth_embed)
        auth_verdict = auth_client.detect(auth_box["result"].xml,
                                          auth_box["result"].record,
                                          expected=message)
        if not auth_verdict.detected:
            raise BenchError(
                "authenticated service embed failed to verify")

    # Registry/provenance stages.  Appending issuance receipts is pure
    # bookkeeping on the embed path, so its cost must stay flat —
    # measured against a *fresh* SQLite tmpfile per repeat (every
    # repeat pays the same cold-file cost; reusing one file would time
    # ever-larger databases).
    import tempfile

    from repro.core.crypto import KeyedPRF
    from repro.registry import WatermarkRegistry

    sealer = KeyedPRF(secret_key)
    registry_dir = tempfile.mkdtemp(prefix="wmxml-bench-registry-")
    append_counter = [0]

    def do_registry_append() -> None:
        append_counter[0] += 1
        db_path = os.path.join(registry_dir,
                               f"append-{append_counter[0]}.db")
        registry = WatermarkRegistry.open(db_path, sealer=sealer)
        try:
            # The whole batch in one transaction (one fsync), the way
            # embed_many records — this is the cost the gate protects.
            registry.record_embed_many([
                {"recipient": "bench-recipient", "record": record,
                 "document_xml": xml,
                 "scheme_fingerprint": "bench-scheme",
                 "key_fingerprint": sealer.fingerprint(),
                 "keying": "recipient", "issuer": "bench"}
                for xml, record in zip(serial_xml, serial_records)])
            if registry.count() != len(serial_xml):
                raise BenchError("registry lost appends during the bench")
        finally:
            registry.close()
            os.remove(db_path)

    try:
        best("registry_append_ms", do_registry_append)

        # Traitor tracing over a persisted corpus: issue fingerprinted
        # copies of the full-size document, leak one, sweep every
        # issued record.  The verdict is asserted on full-size runs so
        # a fast time can never hide a broken trace.
        trace_system = WmXMLSystem(
            secret_key,
            registry=WatermarkRegistry.open(
                os.path.join(registry_dir, "trace.db")))
        trace_system.register("bench", scheme)
        leaked = None
        for recipient in ("alice", "bob", "carol"):
            issued = trace_system.issue("bench", document, recipient)
            if recipient == "bob":
                leaked = issued.document

        def do_trace() -> None:
            trace = trace_system.trace("bench", leaked)
            if books >= 100 and trace.prime_suspect != "bob":
                raise BenchError(
                    "trace failed to accuse the leaked copy's recipient")

        best("trace_ms", do_trace)
        if not trace_system.registry.verify_chain().intact:
            raise BenchError("bench registry ledger failed verification")
        trace_system.registry.close()
    finally:
        import shutil

        shutil.rmtree(registry_dir, ignore_errors=True)

    def docs_per_s(stage: str) -> float:
        return len(batch) / (stages[stage] / 1000.0)

    throughput = {
        "api_embed_many_docs_per_s": docs_per_s("api_embed_many_ms"),
        "api_detect_many_docs_per_s": docs_per_s("api_detect_many_ms"),
        "api_embed_many_xml_docs_per_s": docs_per_s("api_embed_many_xml_ms"),
        "api_detect_many_xml_docs_per_s": docs_per_s(
            "api_detect_many_xml_ms"),
        "parse_many_docs_per_s": docs_per_s("parse_many_ms"),
    }
    if processes and processes > 1:
        embed_stage = f"api_embed_many_p{processes}_ms"
        detect_stage = f"api_detect_many_p{processes}_ms"
        throughput[f"api_embed_many_p{processes}_docs_per_s"] = (
            docs_per_s(embed_stage))
        throughput[f"api_detect_many_p{processes}_docs_per_s"] = (
            docs_per_s(detect_stage))
        # Speedup of the pooled fused pipeline over the *same* fused
        # workload run serially (raw XML in, both paths paying the
        # per-document parse).
        throughput["parallel_embed_speedup"] = (
            stages["api_embed_many_xml_ms"] / stages[embed_stage])
        throughput["parallel_detect_speedup"] = (
            stages["api_detect_many_xml_ms"] / stages[detect_stage])

    return {
        "books": books,
        "elements": document.count_elements(),
        "queries": len(result.record.queries),
        "batch_docs": len(batch),
        "processes": processes,
        "stages": stages,
        "throughput": throughput,
    }


# -- history ------------------------------------------------------------


def load_history(path: str) -> dict:
    """Load the bench archive, or a fresh skeleton when absent.

    ``best`` maps host -> stage -> best milliseconds; timings are only
    comparable within one machine.
    """
    if not os.path.exists(path):
        return {"format": _FORMAT, "best": {}, "runs": []}
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if data.get("format") != _FORMAT:
        raise ValueError(f"{path} is not a {_FORMAT} archive")
    return data


def best_for_host(history: dict, host: Optional[str] = None) -> dict:
    """The recorded best stage times for ``host`` (default: this one)."""
    return dict(history["best"].get(host or _host(), {}))


def check_regression(stages: dict[str, float], best: dict[str, float],
                     threshold: float = REGRESSION_THRESHOLD) -> list[str]:
    """Describe every stage slower than ``threshold`` × its best time."""
    failures: list[str] = []
    for name, current in sorted(stages.items()):
        recorded = best.get(name)
        if recorded is None or recorded <= 0:
            continue
        ratio = current / recorded
        if ratio > threshold:
            failures.append(
                f"{name}: {current:.3f} ms vs best {recorded:.3f} ms "
                f"({ratio:.2f}x > {threshold:.2f}x allowed)")
    return failures


def save_run(path: str, run: dict) -> dict:
    """Append ``run`` to the archive and fold its times into ``best``.

    Returns the updated history.  ``best`` only ever decreases, so a
    regressing run is archived (for trend analysis) without loosening
    the gate.
    """
    history = load_history(path)
    entry = dict(run)
    entry["timestamp"] = time.strftime("%Y-%m-%dT%H:%M:%S%z")
    entry["python"] = platform.python_version()
    entry.setdefault("host", _host())
    history["runs"].append(entry)
    history["runs"] = history["runs"][-_HISTORY_LIMIT:]
    best = history["best"].setdefault(entry["host"], {})
    for name, value in run["stages"].items():
        recorded = best.get(name)
        if recorded is None or value < recorded:
            best[name] = value
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")
    return history


def run_and_check(path: str = BENCH_FILE, books: int = 200,
                  repeats: int = 3, check: bool = True,
                  archive: bool = True, smoke: bool = False,
                  processes: int = 4, printer=print) -> int:
    """Full bench workflow: measure, compare against best, archive.

    Returns a process exit code (1 on regression).  The comparison runs
    against the best times *before* this run, then the run is archived
    either way.  ``smoke=True`` — what CI runs on every push — is the
    one definition of smoke mode: a single repetition, no regression
    gate, and no archive write.  ``processes`` sizes the parallel
    batch-engine stages (0 skips them).
    """
    if smoke:
        repeats, check, archive = 1, False, False
    run = run_e9_bench(books=books, repeats=repeats, processes=processes)
    previous_best = best_for_host(load_history(path))
    printer(f"E9 bench: {run['books']} books, {run['elements']} elements, "
            f"{run['queries']} queries  [host {_host()}]")
    for name, value in run["stages"].items():
        recorded = previous_best.get(name)
        baseline = f"  (best {recorded:.3f} ms)" if recorded else ""
        printer(f"  {name:>22}: {value:>9.3f} ms{baseline}")
    throughput = run["throughput"]
    docs_per_s = throughput["api_embed_many_docs_per_s"]
    printer(f"  api.embed_many throughput: {docs_per_s:.1f} docs/s "
            f"({run['batch_docs']} documents per batch)")
    printer(f"  api.detect_many throughput: "
            f"{throughput['api_detect_many_docs_per_s']:.1f} docs/s")
    if processes and processes > 1:
        pooled = throughput[f"api_embed_many_p{processes}_docs_per_s"]
        speedup = throughput["parallel_embed_speedup"]
        printer(f"  parallel engine (processes={processes}): "
                f"embed {pooled:.1f} docs/s "
                f"({speedup:.2f}x vs serial fused), detect "
                f"{throughput[f'api_detect_many_p{processes}_docs_per_s']:.1f}"
                f" docs/s "
                f"({throughput['parallel_detect_speedup']:.2f}x)")
    failures = check_regression(run["stages"], previous_best) if check else []
    if archive:
        save_run(path, run)
        printer(f"archived to {path}")
    else:
        printer("smoke mode: archive not written")
    if failures:
        printer("PERF REGRESSION (>20% over best recorded run):")
        for failure in failures:
            printer(f"  {failure}")
        return 1
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the E9 perf bench and gate regressions")
    parser.add_argument("--books", type=int, default=200,
                        help="bibliography size (default 200)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="repeats per stage, best kept (default 3)")
    parser.add_argument("--output", "-o", default=BENCH_FILE,
                        help=f"archive path (default {BENCH_FILE})")
    parser.add_argument("--no-check", action="store_true",
                        help="record only; do not fail on regression")
    parser.add_argument("--smoke", action="store_true",
                        help="single repetition, no gate, no archive "
                        "write (CI smoke mode)")
    parser.add_argument("--processes", type=int, default=4,
                        help="worker count for the parallel batch-engine "
                        "stages (0 skips them; default 4)")
    args = parser.parse_args(argv)
    try:
        return run_and_check(path=args.output, books=args.books,
                             repeats=args.repeats, check=not args.no_check,
                             smoke=args.smoke, processes=args.processes)
    except (BenchError, ValueError) as error:
        print(f"error: {error}")
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via scripts
    raise SystemExit(main())
