"""Performance instrumentation for the WmXML pipeline.

The ROADMAP north star is a system that "runs as fast as the hardware
allows"; this package is how that is *measured* rather than assumed:

* :mod:`repro.perf.timers` — :class:`StageTimer`, a nestable stage
  stopwatch the CLI's ``--profile`` flag and the ``wmxml perf``
  subcommand wrap around the embed/detect pipeline;
* :mod:`repro.perf.profiler` — the ``@profiled`` decorator and the
  active-timer stack that let library internals report stages without
  threading a timer argument everywhere;
* :mod:`repro.perf.reporter` — :class:`ThroughputReporter`, which turns
  raw stage timings plus work counts into elements/sec and queries/sec;
* :mod:`repro.perf.bench` — the E9 regression bench: runs the pipeline
  stages, archives results to ``BENCH_e9.json``, and fails when a stage
  regresses more than 20% against the best recorded run.

``repro.perf.bench`` is deliberately *not* imported here: core modules
use ``@profiled`` on their hot paths, so this package ``__init__`` must
stay importable from below the core layer (bench imports the encoder,
which would close an import cycle).
"""

from repro.perf.profiler import active_timer, profiled, use_timer
from repro.perf.reporter import ThroughputReporter
from repro.perf.timers import StageStats, StageTimer

__all__ = [
    "StageStats",
    "StageTimer",
    "ThroughputReporter",
    "active_timer",
    "profiled",
    "use_timer",
]
