"""Job-advertisement dataset: the paper's §1 motivating example.

"An example is a job agent's web site, who would like to prevent his job
advertisements from being stolen and posted on other web sites."

Semantics:

* ``reference`` (a posting code like ``JOB-00042``) is the key,
* FDs ``company -> industry`` and ``city -> country`` hold and create
  redundancy across postings,
* carriers: ``salary`` (numeric), ``posted`` (date), ``position``
  (free text, case-parity plug-in), ``industry`` (categorical).

Shapes: a flat listing (the agent's feed) and a by-company organisation
(what a thief republishing the data per employer page would produce).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import (
    CarrierSpec,
    FDIdentifier,
    KeyIdentifier,
    UsabilityTemplate,
    WatermarkingScheme,
)
from repro.datasets import vocab
from repro.semantics import DocumentShape, Row, XMLFD, XMLKey, level, shape
from repro.xmlmodel.tree import Document


@dataclass(frozen=True)
class JobsConfig:
    """Generator knobs; fewer companies => larger FD duplicate groups."""

    jobs: int = 150
    companies: int = 10
    cities: int = 8
    seed: int = 11


def listing_shape() -> DocumentShape:
    """The agent's flat feed: one <job> element per posting."""
    return shape(
        "job-listing",
        "jobs",
        [
            level(
                "job",
                group_by=["reference"],
                attributes={"reference": "reference"},
                leaves={
                    "position": "position",
                    "company": "company",
                    "industry": "industry",
                    "city": "city",
                    "country": "country",
                    "salary": "salary",
                    "posted": "posted",
                },
            ),
        ],
    )


def by_company_shape() -> DocumentShape:
    """Reorganised per employer page (a plausible thief layout)."""
    return shape(
        "jobs-by-company",
        "jobs",
        [
            level("company", group_by=["company"],
                  attributes={"name": "company", "industry": "industry"}),
            level("job", group_by=["reference"],
                  attributes={"reference": "reference"},
                  leaves={"position": "position", "city": "city",
                          "country": "country", "salary": "salary",
                          "posted": "posted"}),
        ],
    )


def by_city_shape() -> DocumentShape:
    """Reorganised per location page (a second thief layout)."""
    return shape(
        "jobs-by-city",
        "jobs",
        [
            level("location", group_by=["city"],
                  attributes={"city": "city", "country": "country"}),
            level("job", group_by=["reference"],
                  attributes={"reference": "reference"},
                  leaves={"position": "position", "company": "company",
                          "industry": "industry", "salary": "salary",
                          "posted": "posted"}),
        ],
    )


def generate_rows(config: JobsConfig) -> list[Row]:
    """Synthesise the postings relation."""
    rng = random.Random(config.seed)
    companies = rng.sample(vocab.COMPANIES,
                           min(config.companies, len(vocab.COMPANIES)))
    company_industry = {
        company: rng.choice(vocab.INDUSTRIES) for company in companies
    }
    cities = rng.sample(vocab.CITIES, min(config.cities, len(vocab.CITIES)))
    rows: list[Row] = []
    for index in range(config.jobs):
        company = rng.choice(companies)
        city, country = rng.choice(cities)
        seniority = rng.choice(vocab.SENIORITIES)
        base_title = rng.choice(vocab.JOB_TITLES)
        salary = str(rng.randrange(45_000, 180_000, 500))
        posted = (f"{rng.randint(2004, 2005):04d}-"
                  f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}")
        rows.append(Row.from_values({
            "reference": f"JOB-{index:05d}",
            "position": f"{seniority} {base_title}",
            "company": company,
            "industry": company_industry[company],
            "city": city,
            "country": country,
            "salary": salary,
            "posted": posted,
        }))
    return rows


def generate_document(config: JobsConfig) -> Document:
    """A complete job feed in the flat listing shape."""
    return listing_shape().build(generate_rows(config))


def semantic_key() -> XMLKey:
    return XMLKey("job-reference", "/jobs", "job", ("@reference",))


def semantic_fds() -> list[XMLFD]:
    return [
        XMLFD("company-industry", "/jobs/job", ("company",), "industry"),
        XMLFD("city-country", "/jobs/job", ("city",), "country"),
    ]


def usability_templates() -> list[UsabilityTemplate]:
    """What a job seeker actually asks the feed."""
    return [
        UsabilityTemplate("salary-of-job", "salary", ("reference",),
                          tolerance=0.02),
        UsabilityTemplate("position-of-job", "position", ("reference",),
                          casefold=True),
        UsabilityTemplate("company-jobs", "reference", ("company",)),
        UsabilityTemplate("industry-of-company", "industry", ("company",)),
        UsabilityTemplate("city-jobs", "reference", ("city",)),
    ]


def default_scheme(gamma: int = 4) -> WatermarkingScheme:
    """The reference watermarking scheme for the job feed."""
    return WatermarkingScheme(
        shape=listing_shape(),
        carriers=[
            CarrierSpec.create("salary", "numeric",
                               KeyIdentifier(("reference",))),
            CarrierSpec.create("posted", "date",
                               KeyIdentifier(("reference",))),
            CarrierSpec.create("position", "text-case",
                               KeyIdentifier(("reference",))),
            CarrierSpec.create("industry", "categorical",
                               FDIdentifier(("company",)),
                               {"domain": list(vocab.INDUSTRIES)}),
        ],
        templates=usability_templates(),
        gamma=gamma,
    )
