"""Digital-library dataset: the paper's second motivating example.

"A commercial digital library also would need to safeguard its
copyright over its collection of knowledge information."

Items carry a binary preview image (base64) — the payload type the
original system's image plug-in handled — plus bibliographic metadata:

* ``item_id`` is the key,
* FD ``category -> shelf`` holds (every category lives on one shelf),
* carriers: ``image`` (binary LSB), ``pages`` (numeric), ``category``
  (categorical via the FD on shelf? no — categorical on its own key).

Shapes: a flat catalogue and a by-category organisation.
"""

from __future__ import annotations

import base64
import random
from dataclasses import dataclass

from repro.core import (
    CarrierSpec,
    FDIdentifier,
    KeyIdentifier,
    UsabilityTemplate,
    WatermarkingScheme,
)
from repro.datasets import vocab
from repro.semantics import DocumentShape, Row, XMLFD, XMLKey, level, shape
from repro.xmlmodel.tree import Document


@dataclass(frozen=True)
class LibraryConfig:
    """Generator knobs; ``image_bytes`` sizes the binary payloads."""

    items: int = 80
    categories: int = 6
    seed: int = 13
    image_bytes: int = 96


def catalogue_shape() -> DocumentShape:
    """The flat catalogue: one <item> per holding."""
    return shape(
        "library-catalogue",
        "library",
        [
            level(
                "item",
                group_by=["item_id"],
                attributes={"id": "item_id"},
                leaves={
                    "title": "title",
                    "category": "category",
                    "shelf": "shelf",
                    "pages": "pages",
                    "image": "image",
                },
            ),
        ],
    )


def by_category_shape() -> DocumentShape:
    """Reorganised per category (a browsing layout)."""
    return shape(
        "library-by-category",
        "library",
        [
            level("category", group_by=["category"],
                  attributes={"name": "category", "shelf": "shelf"}),
            level("item", group_by=["item_id"],
                  attributes={"id": "item_id"},
                  leaves={"title": "title", "pages": "pages",
                          "image": "image"}),
        ],
    )


def generate_rows(config: LibraryConfig) -> list[Row]:
    """Synthesise the catalogue relation, images included."""
    rng = random.Random(config.seed)
    categories = rng.sample(
        vocab.CATEGORIES, min(config.categories, len(vocab.CATEGORIES)))
    category_shelf = {
        category: f"shelf-{rng.randint(1, 40):02d}"
        for category in categories
    }
    rows: list[Row] = []
    for index in range(config.items):
        category = rng.choice(categories)
        qualifier = rng.choice(vocab.TITLE_QUALIFIERS)
        subject = rng.choice(vocab.TITLE_SUBJECTS)
        payload = bytes(rng.getrandbits(8) for _ in range(config.image_bytes))
        rows.append(Row.from_values({
            "item_id": f"ITEM-{index:05d}",
            "title": f"{qualifier} {subject} #{index}",
            "category": category,
            "shelf": category_shelf[category],
            "pages": str(rng.randint(80, 900)),
            "image": base64.b64encode(payload).decode("ascii"),
        }))
    return rows


def generate_document(config: LibraryConfig) -> Document:
    """A complete catalogue in the flat shape."""
    return catalogue_shape().build(generate_rows(config))


def semantic_key() -> XMLKey:
    return XMLKey("item-id", "/library", "item", ("@id",))


def semantic_fd() -> XMLFD:
    return XMLFD("category-shelf", "/library/item", ("category",), "shelf")


def usability_templates() -> list[UsabilityTemplate]:
    """What a library patron asks the catalogue."""
    return [
        UsabilityTemplate("title-of-item", "title", ("item_id",)),
        UsabilityTemplate("pages-of-item", "pages", ("item_id",),
                          tolerance=0.02),
        UsabilityTemplate("items-in-category", "item_id", ("category",)),
        UsabilityTemplate("shelf-of-category", "shelf", ("category",),
                          casefold=True),
    ]


def default_scheme(gamma: int = 4) -> WatermarkingScheme:
    """The reference watermarking scheme for the library catalogue."""
    return WatermarkingScheme(
        shape=catalogue_shape(),
        carriers=[
            CarrierSpec.create("image", "binary-lsb",
                               KeyIdentifier(("item_id",)),
                               {"spread": 8}),
            CarrierSpec.create("pages", "numeric",
                               KeyIdentifier(("item_id",))),
            CarrierSpec.create("shelf", "text-case",
                               FDIdentifier(("category",))),
        ],
        templates=usability_templates(),
        gamma=gamma,
    )
