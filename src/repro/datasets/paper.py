"""The literal example documents from the paper (Figure 1).

Kept verbatim (db2 lightly completed with the editor/year fields the
paper elides) so tests, examples, and the demo CLI can reproduce the
paper's running example exactly.
"""

from __future__ import annotations

from repro.xmlmodel import Document, parse

#: Figure 1(a): db1.xml as printed (with the second book's <writer>
#: children, an incidental tag variation the paper itself drops when it
#: reorganises the data).
DB1_VERBATIM = (
    "<db>"
    '<book publisher="mkp">'
    "<title>Readings in Database Systems</title>"
    "<author>Stonebraker</author>"
    "<author>Hellerstein</author>"
    "<editor>Harrypotter</editor>"
    "<year>1998</year>"
    "</book>"
    '<book publisher="acm">'
    "<title>Database Design</title>"
    "<writer>Berstein</writer>"
    "<writer>Newcomer</writer>"
    "<editor>Gamer</editor>"
    "<year>1998</year>"
    "</book>"
    "</db>"
)

#: Figure 1(b): db2.xml as printed (publisher/author-centric).
DB2_VERBATIM = (
    "<db>"
    '<publisher name="mkp">'
    '<author name="Stonebraker">'
    "<book>Readings in Database Systems</book>"
    "<book>XML Query Processing</book>"
    "</author>"
    '<author name="Hellerstein">'
    "<book>Readings in Database Systems</book>"
    "<book>Relational Data Integration</book>"
    "</author>"
    "</publisher>"
    '<publisher name="acm">'
    '<author name="Berstein">'
    "<book>Database Design</book>"
    "</author>"
    "</publisher>"
    "</db>"
)


def figure1_db1() -> Document:
    """Parse the verbatim db1.xml of Figure 1(a)."""
    return parse(DB1_VERBATIM)


def figure1_db2() -> Document:
    """Parse the verbatim db2.xml of Figure 1(b)."""
    return parse(DB2_VERBATIM)
