"""Seeded synthetic datasets for the three demo domains.

The paper demonstrates WmXML on real-world semi-structured feeds; this
package substitutes controlled synthetic equivalents (see DESIGN.md):

* :mod:`~repro.datasets.bibliography` — the db1.xml publication domain
  of Figure 1, with the title key and the editor->publisher FD,
* :mod:`~repro.datasets.jobs` — the job-agent feed of the introduction,
* :mod:`~repro.datasets.library` — a digital library with binary image
  payloads (the image plug-in's domain),
* :mod:`~repro.datasets.paper` — the verbatim Figure 1 documents.

Each domain module exports ``generate_rows`` / ``generate_document``, at
least two :class:`~repro.semantics.shape.DocumentShape` organisations,
its keys/FDs in XML-constraint form, usability templates, and a
``default_scheme`` ready for the encoder.
"""

from repro.datasets import bibliography, jobs, library, paper

__all__ = ["bibliography", "jobs", "library", "paper"]
