"""Seeded synthetic datasets for the three demo domains.

The paper demonstrates WmXML on real-world semi-structured feeds; this
package substitutes controlled synthetic equivalents (see DESIGN.md):

* :mod:`~repro.datasets.bibliography` — the db1.xml publication domain
  of Figure 1, with the title key and the editor->publisher FD,
* :mod:`~repro.datasets.jobs` — the job-agent feed of the introduction,
* :mod:`~repro.datasets.library` — a digital library with binary image
  payloads (the image plug-in's domain),
* :mod:`~repro.datasets.paper` — the verbatim Figure 1 documents.

Each domain module exports ``generate_rows`` / ``generate_document``, at
least two :class:`~repro.semantics.shape.DocumentShape` organisations,
its keys/FDs in XML-constraint form, usability templates, and a
``default_scheme`` ready for the encoder.

:func:`load_documents` is the batch mirror of
:func:`repro.xmlmodel.parse_file`: it reads many XML files and parses
them through :func:`repro.xmlmodel.parse_many`, optionally sharding the
parse over a process pool — the way a service feeds a fleet of
documents into ``Pipeline.embed_many``/``detect_many``.
"""

from typing import Iterable, Optional

from repro.datasets import bibliography, jobs, library, paper
from repro.xmlmodel.parser import parse_many
from repro.xmlmodel.tree import Document

__all__ = ["bibliography", "jobs", "library", "load_documents", "paper"]


def load_documents(paths: Iterable[str], strip_whitespace: bool = True,
                   processes: Optional[int] = None) -> list[Document]:
    """Read and parse many XML files, in input order.

    ``strip_whitespace`` defaults to true — the data-centric convention
    used everywhere in this system (indentation noise never carries
    content).  ``processes=N`` shards the parsing over ``N`` worker
    processes via :func:`repro.xmlmodel.parse_many`; file I/O stays in
    the calling process.
    """
    texts = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            texts.append(handle.read())
    return parse_many(texts, strip_whitespace=strip_whitespace,
                      processes=processes)
