"""Vocabulary pools for the synthetic dataset generators.

The demo paper applies WmXML to "a few sets of real world
semi-structured data"; those feeds are not available, so the generators
synthesise documents from these pools.  Pools are plain tuples so every
draw is a pure function of the caller's seeded RNG.
"""

from __future__ import annotations

FIRST_NAMES = (
    "Michael", "Jennifer", "David", "Linda", "James", "Patricia", "Robert",
    "Maria", "John", "Susan", "William", "Margaret", "Richard", "Dorothy",
    "Thomas", "Lisa", "Charles", "Nancy", "Christopher", "Karen", "Daniel",
    "Betty", "Matthew", "Helen", "Anthony", "Sandra", "Donald", "Donna",
    "Mark", "Carol", "Paul", "Ruth", "Steven", "Sharon", "Andrew", "Wei",
    "Kenneth", "Mei", "Joshua", "Priya", "Kevin", "Fatima", "Brian",
    "Yuki", "George", "Ingrid", "Edward", "Olga", "Ronald", "Chen",
)

LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Thomas", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Sanchez", "Clark",
    "Ramirez", "Lewis", "Robinson", "Walker", "Young", "Allen", "King",
    "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores", "Green",
    "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Tan", "Zhou",
)

PUBLISHERS = (
    "mkp", "acm", "ieee", "springer", "elsevier", "usenix", "wiley",
    "oreilly", "mit-press", "cambridge", "oxford", "vldb-endowment",
)

TITLE_SUBJECTS = (
    "Database Systems", "Query Processing", "Transaction Management",
    "Information Retrieval", "Data Integration", "XML Processing",
    "Distributed Computing", "Concurrency Control", "Data Mining",
    "Stream Processing", "Access Methods", "Storage Engines",
    "Query Optimization", "Semantic Modeling", "Data Warehousing",
    "Schema Evolution", "Web Services", "Digital Libraries",
    "Copyright Protection", "Watermarking Techniques",
)

TITLE_QUALIFIERS = (
    "Readings in", "Principles of", "Foundations of", "Advanced",
    "Introduction to", "A Survey of", "Practical", "Modern", "Essential",
    "The Art of", "Handbook of", "Theory of",
)

COMPANIES = (
    "Acme Analytics", "Globex Systems", "Initech Software", "Umbrella Data",
    "Stark Computing", "Wayne Informatics", "Tyrell Networks",
    "Cyberdyne Labs", "Hooli Cloud", "Pied Piper Storage",
    "Vandelay Industries", "Wonka Logistics", "Duff Technologies",
    "Oceanic Platforms", "Soylent Services", "Gringotts Fintech",
)

INDUSTRIES = (
    "finance", "healthcare", "logistics", "retail", "manufacturing",
    "telecom", "energy", "media",
)

CITIES = (
    ("Singapore", "Singapore"), ("Trondheim", "Norway"),
    ("Hanover", "Germany"), ("New York", "USA"), ("London", "UK"),
    ("Tokyo", "Japan"), ("Sydney", "Australia"), ("Toronto", "Canada"),
    ("Bangalore", "India"), ("Paris", "France"), ("Zurich", "Switzerland"),
    ("Seoul", "South Korea"), ("Dublin", "Ireland"), ("Austin", "USA"),
    ("Berlin", "Germany"), ("Shanghai", "China"),
)

JOB_TITLES = (
    "Software Engineer", "Database Administrator", "Data Analyst",
    "Systems Architect", "QA Engineer", "DevOps Engineer",
    "Product Manager", "Data Scientist", "Security Analyst",
    "Support Engineer", "Technical Writer", "Network Engineer",
    "Machine Learning Engineer", "Site Reliability Engineer",
)

SENIORITIES = ("Junior", "Senior", "Staff", "Principal", "Lead")

CATEGORIES = (
    "databases", "networking", "security", "algorithms", "graphics",
    "languages", "systems", "theory", "ai", "hci",
)

DESCRIPTION_WORDS = (
    "design", "implement", "maintain", "scalable", "reliable", "secure",
    "distributed", "database", "services", "pipelines", "queries",
    "indexes", "replication", "backup", "monitoring", "performance",
    "tuning", "schemas", "migrations", "integrity", "transactions",
    "analytics", "reporting", "compliance", "availability",
)
