"""Bibliography dataset: the paper's own db1.xml domain, at scale.

Generates publication databases with exactly the semantics WmXML
exploits:

* ``title`` is the key of ``book`` ("the title of each publication is
  usually unique"),
* the FD ``editor -> publisher`` holds ("an editor only works for one
  publisher") and produces genuine redundancy — many books share an
  editor, duplicating the publisher value,
* ``author`` is multi-valued,
* ``year`` (numeric), ``price`` (decimal) and ``publisher``
  (categorical) are the carrier fields.

Two shapes are provided: the paper's book-centric db1 organisation and
the publisher/author-centric db2 organisation of Figure 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core import (
    CarrierSpec,
    FDIdentifier,
    KeyIdentifier,
    UsabilityTemplate,
    WatermarkingScheme,
)
from repro.datasets import vocab
from repro.semantics import DocumentShape, Row, XMLFD, XMLKey, level, shape
from repro.xmlmodel.tree import Document


@dataclass(frozen=True)
class BibliographyConfig:
    """Generator knobs.

    ``editors`` controls redundancy: fewer editors for the same number
    of books means larger FD duplicate groups.
    """

    books: int = 100
    editors: int = 12
    seed: int = 7
    max_authors: int = 3


def book_shape() -> DocumentShape:
    """The db1.xml (book-centric) organisation."""
    return shape(
        "book-centric",
        "db",
        [
            level(
                "book",
                group_by=["title"],
                attributes={"publisher": "publisher"},
                leaves={
                    "title": "title",
                    "author": "author",
                    "editor": "editor",
                    "year": "year",
                    "price": "price",
                },
            ),
        ],
    )


def publisher_shape() -> DocumentShape:
    """The db2.xml (publisher/author-centric) organisation of Figure 1."""
    return shape(
        "publisher-centric",
        "db",
        [
            level("publisher", group_by=["publisher"],
                  attributes={"name": "publisher"}),
            level("author", group_by=["author"],
                  attributes={"name": "author"}),
            level("book", group_by=["title"], text_field="title",
                  leaves={"editor": "editor", "year": "year",
                          "price": "price"}),
        ],
    )


def editor_shape() -> DocumentShape:
    """A third organisation (editor-centric), for the Figure 2 fan-out."""
    return shape(
        "editor-centric",
        "db",
        [
            level("editor", group_by=["editor"],
                  attributes={"name": "editor",
                              "publisher": "publisher"}),
            level("book", group_by=["title"],
                  leaves={"title": "title", "author": "author",
                          "year": "year", "price": "price"}),
        ],
    )


def generate_rows(config: BibliographyConfig) -> list[Row]:
    """Synthesise the logical relation (one row per book-author pair)."""
    rng = random.Random(config.seed)
    editors = [
        f"{rng.choice(vocab.FIRST_NAMES)} {rng.choice(vocab.LAST_NAMES)}"
        for _ in range(config.editors)
    ]
    # The FD editor -> publisher: assign each editor one publisher.
    editor_publisher = {
        editor: rng.choice(vocab.PUBLISHERS) for editor in editors
    }
    rows: list[Row] = []
    seen_titles: set[str] = set()
    for index in range(config.books):
        qualifier = rng.choice(vocab.TITLE_QUALIFIERS)
        subject = rng.choice(vocab.TITLE_SUBJECTS)
        title = f"{qualifier} {subject}"
        if title in seen_titles:
            title = f"{title}, Volume {index}"
        seen_titles.add(title)
        editor = rng.choice(editors)
        year = str(rng.randint(1985, 2005))
        price = f"{rng.randint(15, 180)}.{rng.randint(0, 99):02d}"
        author_count = rng.randint(1, config.max_authors)
        authors = {
            f"{rng.choice(vocab.FIRST_NAMES)} {rng.choice(vocab.LAST_NAMES)}"
            for _ in range(author_count)
        }
        for author in sorted(authors):
            rows.append(Row.from_values({
                "title": title,
                "author": author,
                "editor": editor,
                "publisher": editor_publisher[editor],
                "year": year,
                "price": price,
            }))
    return rows


def generate_document(config: BibliographyConfig) -> Document:
    """A complete bibliography document in the book-centric shape."""
    return book_shape().build(generate_rows(config))


def semantic_key() -> XMLKey:
    """The title-identifies-book key, in XML-constraint form."""
    return XMLKey("book-title", "/db", "book", ("title",))


def semantic_fd() -> XMLFD:
    """The editor -> publisher FD, in XML-constraint form."""
    return XMLFD("editor-publisher", "/db/book", ("editor",), "@publisher")


def usability_templates() -> list[UsabilityTemplate]:
    """The query templates a bibliography consumer relies on (§2.1)."""
    return [
        UsabilityTemplate("authors-of-title", "author", ("title",)),
        UsabilityTemplate("year-of-title", "year", ("title",),
                          tolerance=0.002),
        UsabilityTemplate("price-of-title", "price", ("title",),
                          tolerance=0.02),
        UsabilityTemplate("publisher-of-editor", "publisher", ("editor",)),
    ]


def default_scheme(gamma: int = 4) -> WatermarkingScheme:
    """The reference watermarking scheme for bibliography data."""
    return WatermarkingScheme(
        shape=book_shape(),
        carriers=[
            CarrierSpec.create("year", "numeric",
                               KeyIdentifier(("title",))),
            CarrierSpec.create("price", "numeric",
                               KeyIdentifier(("title",)),
                               {"fraction_digits": 2}),
            CarrierSpec.create("publisher", "categorical",
                               FDIdentifier(("editor",)),
                               {"domain": list(vocab.PUBLISHERS)}),
        ],
        templates=usability_templates(),
        gamma=gamma,
    )
