"""`TenantDirectory` — many tenants, one process, one registry.

The directory is what a multi-tenant daemon holds instead of a single
:class:`~repro.api.system.WmXMLSystem`.  It owns:

* the :class:`MasterKeyMap` (key generations + subkey derivation);
* per-tenant scheme namespaces — each tenant registers and lists its
  own deployments, invisible to every other tenant;
* lazily-built ``WmXMLSystem`` instances, one per ``(tenant, key
  generation)``, each keyed by that tenant's *derived* subkey — two
  tenants can never produce or verify each other's marks;
* token auth (mint + verify, scope intersection with the tenant's
  grant) and the live quota buckets;
* the shared registry: the directory attaches a rotation-stable
  sealer, tenant systems stamp their records with ``tenant``/
  ``key_id``, and tenant-scoped queries filter on the tenant column.

Rotation story: :meth:`system` resolves ``key_id=None`` to the active
generation for new embeds, but any persisted record names the
generation that embedded it, so :meth:`trace` and the service's detect
path rebuild the exact subkey a record was issued under — old
detections keep verifying forever.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.api.system import WmXMLSystem
from repro.core.decoder import DetectionResult
from repro.core.fingerprint import TraceResult
from repro.core.scheme import WatermarkingScheme
from repro.registry import (RegistryNotConfiguredError,
                            UnknownRecipientError, WatermarkRegistry)

from .config import TenantConfig, TenantsConfig
from .errors import ForbiddenError, TenantConfigError, UnauthorizedError
from .quotas import Clock, TenantQuota
from .tokens import TokenClaims, mint_token, verify_token

import time


class TenantDirectory:
    """The tenancy runtime: keys, namespaces, auth, and quotas."""

    def __init__(self, config: TenantsConfig,
                 registry: Optional[WatermarkRegistry] = None,
                 alpha: float = 1e-3, issuer: str = "wmxml",
                 *, clock: Clock = time.monotonic) -> None:
        self.config = config
        self.keys = config.keys
        self.registry = registry
        self.alpha = alpha
        self.issuer = issuer
        if registry is not None:
            registry.attach_sealer(self.keys.sealer())
        self._schemes: Dict[str, Dict[str, WatermarkingScheme]] = {
            name: {} for name in config.tenants}
        self._systems: Dict[Tuple[str, int], WmXMLSystem] = {}
        self._quotas: Dict[str, TenantQuota] = {
            name: TenantQuota(tenant.quota, clock=clock)
            for name, tenant in config.tenants.items()}
        self._lock = threading.Lock()

    # -- tenants ------------------------------------------------------------

    def tenant_names(self) -> List[str]:
        return sorted(self.config.tenants)

    def tenant(self, name: str) -> TenantConfig:
        return self.config.tenant(name)

    # -- schemes (per-tenant namespaces) --------------------------------------

    def register(self, tenant: str, name: str,
                 scheme: Union[WatermarkingScheme, dict]
                 ) -> WatermarkingScheme:
        """Register a deployment in one tenant's namespace.

        Pushed into every already-built system of that tenant (all key
        generations), so a rotation-era system and the active one
        always agree on what a name means.
        """
        self.tenant(tenant)
        if isinstance(scheme, dict):
            scheme = WatermarkingScheme.from_dict(scheme)
        with self._lock:
            self._schemes[tenant][name] = scheme
            for (owner, _kid), system in self._systems.items():
                if owner == tenant:
                    system.register(name, scheme)
        return scheme

    def register_all(self, name: str,
                     scheme: Union[WatermarkingScheme, dict]
                     ) -> WatermarkingScheme:
        """Register a deployment in *every* tenant's namespace.

        The boot-time ``--scheme`` case: schemes named on the daemon
        command line are offered to all tenants (each still compiles
        under its own derived key).
        """
        if isinstance(scheme, dict):
            scheme = WatermarkingScheme.from_dict(scheme)
        for tenant in self.tenant_names():
            self.register(tenant, name, scheme)
        return scheme

    def scheme_names(self, tenant: str) -> List[str]:
        self.tenant(tenant)
        with self._lock:
            return sorted(self._schemes[tenant])

    def scheme_fingerprints(self, tenant: str, name: str) -> List[str]:
        """The pipeline fingerprints of one named scheme across every
        key generation (deduped, oldest generation first) — what a
        tenant-scoped ``/v1/records?scheme=name`` query must match,
        since records embedded before a rotation carry the older
        generation's fingerprint."""
        seen: List[str] = []
        for key_id in self.keys.key_ids():
            fingerprint = self.system(tenant, key_id) \
                .scheme_fingerprint(name)
            if fingerprint not in seen:
                seen.append(fingerprint)
        return seen

    # -- systems ------------------------------------------------------------

    def system(self, tenant: str, key_id: Optional[int] = None
               ) -> WmXMLSystem:
        """The tenant's system under one key generation (cached).

        ``key_id=None`` means the active generation — the one new
        embeds and tokens are issued under.
        """
        self.tenant(tenant)
        if key_id is None:
            key_id = self.keys.active_id
        with self._lock:
            system = self._systems.get((tenant, key_id))
            if system is not None:
                return system
            # tenant_key raises UnknownKeyError for a generation the
            # map does not hold (e.g. a forged record's key_id).
            system = WmXMLSystem(
                self.keys.tenant_key(tenant, key_id=key_id),
                alpha=self.alpha, registry=self.registry,
                issuer=self.issuer, tenant=tenant, key_id=key_id,
                seal_registry=False)
            for name, scheme in self._schemes[tenant].items():
                system.register(name, scheme)
            self._systems[(tenant, key_id)] = system
            return system

    def system_for_record(self, tenant: str, record) -> WmXMLSystem:
        """The system that can verify ``record`` — its own generation.

        A record stamped with another tenant's name is refused with
        :class:`ForbiddenError`: possession of a leaked record must
        not let one tenant drive detections in another's namespace.
        An unstamped record (single-tenant era, or built client-side)
        verifies under the caller's active generation.
        """
        stamped = getattr(record, "tenant", None)
        if stamped is not None and stamped != tenant:
            raise ForbiddenError(
                f"record belongs to tenant {stamped!r}, not {tenant!r}")
        return self.system(tenant, getattr(record, "key_id", None))

    # -- auth ------------------------------------------------------------

    def mint_token(self, tenant: str,
                   scopes: Optional[Iterable[str]] = None,
                   *, ttl_s: Optional[float] = None,
                   key_id: Optional[int] = None) -> str:
        """A bearer token for ``tenant``; scopes default to its grant.

        Requested scopes must be a subset of what the tenants file
        grants — a token can narrow a tenant's rights, never widen
        them.
        """
        granted = self.tenant(tenant).scopes
        if scopes is None:
            wanted = granted
        else:
            wanted = frozenset(scopes)
            beyond = wanted - granted
            if beyond:
                raise TenantConfigError(
                    f"tenant {tenant!r} is not granted scopes "
                    f"{sorted(beyond)} (granted: {sorted(granted)})")
        return mint_token(self.keys, tenant, wanted, ttl_s=ttl_s,
                          key_id=key_id)

    def authenticate(self, token: Optional[str]) -> TokenClaims:
        """Verify a bearer token into claims for a *known* tenant.

        The effective scopes are the intersection of what the token
        says and what the tenants file currently grants, so revoking a
        scope in the config file disarms every outstanding token
        immediately.
        """
        claims = verify_token(self.keys, token or "")
        tenant = self.config.tenants.get(claims.tenant)
        if tenant is None:
            raise UnauthorizedError(
                f"token names unknown tenant {claims.tenant!r}")
        return TokenClaims(tenant=claims.tenant,
                           scopes=claims.scopes & tenant.scopes,
                           key_id=claims.key_id,
                           expires_at=claims.expires_at)

    # -- quotas ------------------------------------------------------------

    def charge_request(self, tenant: str) -> None:
        self._quotas[tenant].charge_request()

    def charge_documents(self, tenant: str, count: int) -> None:
        self._quotas[tenant].charge_documents(count)

    def quota_snapshot(self, tenant: str) -> dict:
        return self._quotas[tenant].snapshot()

    # -- registry-wide operations ---------------------------------------------

    def _require_registry(self) -> WatermarkRegistry:
        if self.registry is None:
            raise RegistryNotConfiguredError(
                "this directory has no registry attached; construct "
                "TenantDirectory(registry=...) or run with --registry")
        return self.registry

    def trace(self, tenant: str, scheme: str, document, *,
              shape=None, strategy: str = "auto",
              recipients: Optional[Iterable[str]] = None) -> TraceResult:
        """Trace a leak against one tenant's persisted copies only.

        Rotation-aware: the sweep collects records across *every* key
        generation's fingerprint of the named scheme, and verifies
        each one under the generation that embedded it — but it never
        leaves the tenant's registry namespace.
        """
        registry = self._require_registry()
        entries = []
        seen_fingerprints = set()
        for key_id in self.keys.key_ids():
            fingerprint = self.system(tenant, key_id) \
                .scheme_fingerprint(scheme)
            if fingerprint in seen_fingerprints:
                continue
            seen_fingerprints.add(fingerprint)
            entries.extend(registry.records(
                scheme_fingerprint=fingerprint, tenant=tenant))
        entries.sort(key=lambda e: e.sequence
                     if e.sequence is not None else 0)
        if recipients is not None:
            wanted = set(recipients)
            known = {entry.recipient for entry in entries}
            missing = wanted - known
            if missing:
                raise UnknownRecipientError(
                    sorted(missing)[0], known=sorted(known))
            entries = [entry for entry in entries
                       if entry.recipient in wanted]
        best: Dict[str, Tuple[tuple, DetectionResult]] = {}
        for entry in entries:
            system = self.system(tenant, entry.key_id)
            if entry.keying == "recipient":
                pipeline = system.recipient_pipeline(scheme,
                                                     entry.recipient)
            else:
                pipeline = system.pipeline(scheme)
            verdict = pipeline.detect(
                document, entry.record, expected=entry.recipient,
                shape=shape, strategy=strategy)
            rank = (verdict.p_value,
                    entry.sequence if entry.sequence is not None else 0)
            current = best.get(entry.recipient)
            if current is None or rank < current[0]:
                best[entry.recipient] = (rank, verdict)
        return TraceResult(verdicts={name: verdict
                                     for name, (_, verdict)
                                     in best.items()})
