"""The ``wmxml-tenants-v1`` configuration artefact.

One JSON document declares a whole deployment's tenancy: the master-key
map (key id -> secret, plus the active generation) and every tenant
with its granted scopes and quota policy::

    {"format": "wmxml-tenants-v1",
     "keys": {"1": "first-master-secret", "2": "rotated-secret"},
     "active_key_id": 2,
     "tenants": {
       "acme":   {"scopes": ["embed", "detect", "records", "trace",
                             "schemes", "schemes-write"]},
       "globex": {"scopes": ["embed", "detect"],
                  "quota": {"requests_per_minute": 600,
                            "request_burst": 20,
                            "documents_per_minute": 1200}}}}

Key ids are JSON object keys, so they travel as decimal strings and
parse back to ints.  Rotation is an edit to this file: add the next id
under ``keys``, point ``active_key_id`` at it, restart the daemon —
records embedded under earlier ids keep verifying because they carry
their key id.  This file holds master secrets: treat it like a key
file (mode 0600), never commit it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

from .errors import TenantConfigError
from .keys import MasterKeyMap
from .quotas import QuotaPolicy
from .tokens import KNOWN_SCOPES, validate_scopes

#: Format tag of the tenants configuration artefact.
TENANTS_FORMAT = "wmxml-tenants-v1"


@dataclass(frozen=True)
class TenantConfig:
    """One tenant: granted scopes and quota policy."""

    name: str
    scopes: FrozenSet[str] = frozenset(KNOWN_SCOPES)
    quota: QuotaPolicy = field(default_factory=QuotaPolicy)

    @classmethod
    def from_dict(cls, name: str, raw: dict) -> "TenantConfig":
        if not isinstance(raw, dict):
            raise TenantConfigError(
                f"tenant {name!r} must be an object, "
                f"got {type(raw).__name__}")
        unknown = set(raw) - {"scopes", "quota"}
        if unknown:
            raise TenantConfigError(
                f"tenant {name!r} has unknown fields {sorted(unknown)}")
        scopes_raw = raw.get("scopes")
        if scopes_raw is None:
            scopes = frozenset(KNOWN_SCOPES)
        else:
            if not isinstance(scopes_raw, list) \
                    or not all(isinstance(s, str) for s in scopes_raw):
                raise TenantConfigError(
                    f"tenant {name!r}: scopes must be a list of strings")
            scopes = validate_scopes(scopes_raw)
        quota_raw = raw.get("quota")
        quota = QuotaPolicy() if quota_raw is None \
            else QuotaPolicy.from_dict(quota_raw)
        return cls(name=name, scopes=scopes, quota=quota)

    def to_dict(self) -> dict:
        return {"scopes": sorted(self.scopes),
                "quota": self.quota.to_dict()}


@dataclass(frozen=True)
class TenantsConfig:
    """A parsed ``wmxml-tenants-v1`` document."""

    keys: MasterKeyMap
    tenants: Dict[str, TenantConfig]

    @classmethod
    def from_dict(cls, raw: dict) -> "TenantsConfig":
        if not isinstance(raw, dict):
            raise TenantConfigError(
                f"tenants config must be an object, "
                f"got {type(raw).__name__}")
        if raw.get("format") != TENANTS_FORMAT:
            raise TenantConfigError(
                f"unsupported tenants format {raw.get('format')!r}; "
                f"expected {TENANTS_FORMAT!r}")
        unknown = set(raw) - {"format", "keys", "active_key_id", "tenants"}
        if unknown:
            raise TenantConfigError(
                f"unknown tenants-config fields {sorted(unknown)}")
        keys_raw = raw.get("keys")
        if not isinstance(keys_raw, dict) or not keys_raw:
            raise TenantConfigError(
                "'keys' must be a non-empty object of key id -> secret")
        parsed_keys: Dict[int, str] = {}
        for key_id_text, secret in keys_raw.items():
            try:
                key_id = int(key_id_text)
            except (TypeError, ValueError):
                raise TenantConfigError(
                    f"key id {key_id_text!r} is not an integer") from None
            if not isinstance(secret, str) or not secret:
                raise TenantConfigError(
                    f"master secret for key id {key_id} must be a "
                    f"non-empty string")
            parsed_keys[key_id] = secret
        active = raw.get("active_key_id")
        if active is not None and (not isinstance(active, int)
                                   or isinstance(active, bool)):
            raise TenantConfigError(
                f"active_key_id must be an integer, got {active!r}")
        keys = MasterKeyMap(parsed_keys, active=active)
        tenants_raw = raw.get("tenants")
        if not isinstance(tenants_raw, dict) or not tenants_raw:
            raise TenantConfigError(
                "'tenants' must be a non-empty object of name -> config")
        tenants: Dict[str, TenantConfig] = {}
        for name, tenant_raw in tenants_raw.items():
            if not isinstance(name, str) or not name:
                raise TenantConfigError(
                    f"tenant name must be a non-empty string, "
                    f"got {name!r}")
            tenants[name] = TenantConfig.from_dict(name, tenant_raw)
        return cls(keys=keys, tenants=tenants)

    @classmethod
    def load(cls, path: str) -> "TenantsConfig":
        """Parse a tenants file; malformed -> :class:`TenantConfigError`."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as error:
            raise TenantConfigError(
                f"cannot read tenants file {path!r}: {error}") from error
        except json.JSONDecodeError as error:
            raise TenantConfigError(
                f"tenants file {path!r} is not valid JSON: "
                f"{error}") from error
        return cls.from_dict(raw)

    def tenant(self, name: str) -> TenantConfig:
        try:
            return self.tenants[name]
        except KeyError:
            raise TenantConfigError(f"unknown tenant {name!r}") from None
