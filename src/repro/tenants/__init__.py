"""`repro.tenants` — multi-tenant keys, bearer auth, and quotas.

The tenancy subsystem turns the one-key ``wmxml serve`` daemon into a
multi-tenant service:

* :class:`MasterKeyMap` — key generations (rotation = a new key id)
  with HKDF-style per-tenant/per-scheme subkey derivation via
  :meth:`KeyedPRF.derive`;
* :mod:`tokens <repro.tenants.tokens>` — HMAC-signed capability
  tokens (``wmx1.<claims>.<sig>``) carrying tenant + scopes + expiry,
  minted by ``wmxml token mint``;
* :class:`QuotaPolicy` / :class:`TenantQuota` — token-bucket rate
  limits on requests and embedded documents (HTTP 429 +
  ``Retry-After``);
* :class:`TenantsConfig` — the ``wmxml-tenants-v1`` file a daemon
  boots from (``wmxml serve --tenants tenants.json``);
* :class:`TenantDirectory` — the runtime wiring it all to per-tenant
  ``WmXMLSystem`` instances, scheme namespaces, and a tenant-filtered
  registry.

Single-tenant deployments never touch this package: a
``WmXMLService(system)`` daemon behaves byte-for-byte as before.
"""

from repro.tenants.config import TENANTS_FORMAT, TenantConfig, TenantsConfig
from repro.tenants.directory import TenantDirectory
from repro.tenants.errors import (ForbiddenError, RateLimitedError,
                                  TenantConfigError, TenantError,
                                  UnauthorizedError, UnknownKeyError)
from repro.tenants.keys import MasterKeyMap
from repro.tenants.quotas import QuotaPolicy, TenantQuota, TokenBucket
from repro.tenants.tokens import (KNOWN_SCOPES, TOKEN_FORMAT, TokenClaims,
                                  mint_token, verify_token)

__all__ = [
    "TENANTS_FORMAT",
    "TOKEN_FORMAT",
    "KNOWN_SCOPES",
    "MasterKeyMap",
    "TenantConfig",
    "TenantsConfig",
    "TenantDirectory",
    "TokenClaims",
    "mint_token",
    "verify_token",
    "QuotaPolicy",
    "TenantQuota",
    "TokenBucket",
    "TenantError",
    "TenantConfigError",
    "UnauthorizedError",
    "ForbiddenError",
    "RateLimitedError",
    "UnknownKeyError",
]
