"""Token-bucket quotas: per-tenant request and document rate limits.

Two buckets per tenant, both optional: one charged once per
authenticated request, one charged per *document* an embed carries (a
100-document batch spends 100 document tokens but one request token).
Buckets refill continuously at ``rate/60`` tokens per second up to
``burst``; an empty bucket raises :class:`RateLimitedError` carrying
the exact wait until enough tokens refill, which the service turns
into a ``Retry-After`` header and the client SDK honours.

The clock is injectable (``time.monotonic`` by default) so tests drive
refill deterministically.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .errors import RateLimitedError, TenantConfigError

Clock = Callable[[], float]


class TokenBucket:
    """Continuous-refill token bucket (thread-safe)."""

    def __init__(self, rate_per_minute: float, burst: Optional[int] = None,
                 *, clock: Clock = time.monotonic) -> None:
        if rate_per_minute <= 0:
            raise TenantConfigError(
                f"quota rate must be positive, got {rate_per_minute!r}")
        if burst is None:
            # Default burst: a full minute's allowance in one gulp.
            burst = max(1, math.ceil(rate_per_minute))
        if burst < 1:
            raise TenantConfigError(
                f"quota burst must be >= 1, got {burst!r}")
        self.rate_per_minute = float(rate_per_minute)
        self.burst = int(burst)
        self._rate_per_s = self.rate_per_minute / 60.0
        self._clock = clock
        self._tokens = float(self.burst)
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(float(self.burst),
                               self._tokens + elapsed * self._rate_per_s)
        self._updated = now

    def take(self, count: int = 1) -> float:
        """Spend ``count`` tokens; returns 0.0, or the wait in seconds.

        A positive return means the request was *not* admitted and no
        tokens were spent — the caller should retry after that long.
        """
        if count < 1:
            return 0.0
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= count:
                self._tokens -= count
                return 0.0
            return (count - self._tokens) / self._rate_per_s

    def remaining(self) -> int:
        """Whole tokens currently available (refill applied)."""
        with self._lock:
            self._refill(self._clock())
            return int(self._tokens)


@dataclass(frozen=True)
class QuotaPolicy:
    """Declarative per-tenant limits; ``None`` means unlimited."""

    requests_per_minute: Optional[float] = None
    request_burst: Optional[int] = None
    documents_per_minute: Optional[float] = None
    document_burst: Optional[int] = None

    @classmethod
    def from_dict(cls, raw: dict) -> "QuotaPolicy":
        if not isinstance(raw, dict):
            raise TenantConfigError(
                f"quota must be an object, got {type(raw).__name__}")
        known = {"requests_per_minute", "request_burst",
                 "documents_per_minute", "document_burst"}
        unknown = set(raw) - known
        if unknown:
            raise TenantConfigError(
                f"unknown quota fields {sorted(unknown)}; "
                f"known: {sorted(known)}")
        for field in known:
            value = raw.get(field)
            if value is not None and (not isinstance(value, (int, float))
                                      or isinstance(value, bool)):
                raise TenantConfigError(
                    f"quota field {field!r} must be a number, "
                    f"got {value!r}")
        return cls(
            requests_per_minute=raw.get("requests_per_minute"),
            request_burst=raw.get("request_burst"),
            documents_per_minute=raw.get("documents_per_minute"),
            document_burst=raw.get("document_burst"),
        )

    def to_dict(self) -> dict:
        return {
            "requests_per_minute": self.requests_per_minute,
            "request_burst": self.request_burst,
            "documents_per_minute": self.documents_per_minute,
            "document_burst": self.document_burst,
        }


class TenantQuota:
    """The live buckets enforcing one tenant's :class:`QuotaPolicy`."""

    def __init__(self, policy: QuotaPolicy, *,
                 clock: Clock = time.monotonic) -> None:
        self.policy = policy
        self._requests: Optional[TokenBucket] = None
        self._documents: Optional[TokenBucket] = None
        if policy.requests_per_minute is not None:
            self._requests = TokenBucket(
                policy.requests_per_minute,
                policy.request_burst, clock=clock)
        if policy.documents_per_minute is not None:
            self._documents = TokenBucket(
                policy.documents_per_minute,
                policy.document_burst, clock=clock)

    def charge_request(self) -> None:
        """Spend one request token or raise :class:`RateLimitedError`."""
        if self._requests is None:
            return
        wait = self._requests.take(1)
        if wait > 0:
            raise RateLimitedError(
                f"request quota exhausted "
                f"({self._requests.rate_per_minute:g}/min, "
                f"burst {self._requests.burst}); retry after "
                f"{wait:.2f}s", retry_after=wait)

    def charge_documents(self, count: int) -> None:
        """Spend ``count`` document tokens or raise 429."""
        if self._documents is None or count < 1:
            return
        wait = self._documents.take(count)
        if wait > 0:
            raise RateLimitedError(
                f"document quota exhausted embedding {count} "
                f"document(s) "
                f"({self._documents.rate_per_minute:g}/min, "
                f"burst {self._documents.burst}); retry after "
                f"{wait:.2f}s", retry_after=wait)

    def snapshot(self) -> dict:
        """Quota state for ``/v1/stats`` (``None`` fields = unlimited)."""
        def bucket(b: Optional[TokenBucket]) -> Optional[dict]:
            if b is None:
                return None
            return {"rate_per_minute": b.rate_per_minute,
                    "burst": b.burst, "remaining": b.remaining()}
        return {"requests": bucket(self._requests),
                "documents": bucket(self._documents)}
