"""Errors raised by the multi-tenant auth/quota layer.

The 401/403/429 split follows HTTP semantics exactly:

* :class:`UnauthorizedError` (401) — no credential, or a credential
  that does not verify (bad signature, expired, unknown key id,
  unknown tenant).  The caller should obtain a valid token.
* :class:`ForbiddenError` (403) — the credential is valid but does not
  grant the attempted operation (missing scope, or it names another
  tenant's data).  Retrying with the same token cannot succeed.
* :class:`RateLimitedError` (429) — the tenant's token bucket is
  empty; ``retry_after`` says how long until the next token refills,
  and the service surfaces it as a ``Retry-After`` header.

All descend from :class:`~repro.errors.WmXMLError` with stable ``code``
slugs, so they travel through the service error envelopes and the CLI's
``--result`` JSON like every other error in the system.
"""

from __future__ import annotations

from repro.errors import WmXMLError


class TenantError(WmXMLError):
    """Base class for tenancy-layer failures."""

    code = "tenant-error"


class TenantConfigError(TenantError, ValueError):
    """A ``wmxml-tenants-v1`` configuration artefact is malformed."""

    code = "bad-tenant-config"


class UnauthorizedError(TenantError):
    """Missing or invalid bearer credential (HTTP 401)."""

    code = "unauthorized"


class ForbiddenError(TenantError):
    """Valid credential, but the operation is not granted (HTTP 403)."""

    code = "forbidden"


class RateLimitedError(TenantError):
    """Tenant quota exhausted (HTTP 429); carries ``retry_after``."""

    code = "rate-limited"

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: Seconds until the bucket refills enough to admit the request.
        self.retry_after = float(retry_after)


class UnknownKeyError(TenantError):
    """A record or token names a key id missing from the master map."""

    code = "unknown-key"
