"""The master-key map: key generations and per-tenant subkey derivation.

One deployment holds an ordered map of ``key id -> master secret``.
Every key the system actually uses is *derived* from a master secret
with :meth:`KeyedPRF.derive` (HKDF-style domain-separated expansion):

* ``tenant_key(tenant)`` — keys that tenant's :class:`WmXMLSystem`, so
  two tenants on one daemon can never produce or verify each other's
  marks even though they share a process and a registry;
* ``scheme_key(tenant, scheme)`` — one more derivation level down, for
  callers that want a distinct key per deployment artefact;
* ``token_key()`` — signs bearer tokens (never used for watermarking);
* ``sealer()`` — seals the provenance ledger.

Rotation appends a new key id (``rotate``); it never removes old ids,
because records embedded under key generation *N* can only verify under
the subkeys of generation *N* — the key id rides every envelope and
:class:`WatermarkRecord` so a detection knows which generation to use.
The ledger sealer is pinned to the *lowest* key id for the same reason:
the hash chain written before a rotation must stay verifiable after it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Union

from repro.core.crypto import KeyedPRF

from .errors import TenantConfigError, UnknownKeyError

Secret = Union[str, bytes]


class MasterKeyMap:
    """Ordered ``key id -> master secret`` map with subkey derivation."""

    def __init__(self, keys: Mapping[int, Secret],
                 active: Optional[int] = None) -> None:
        if not keys:
            raise TenantConfigError("master-key map must not be empty")
        prfs: Dict[int, KeyedPRF] = {}
        for key_id, secret in keys.items():
            if not isinstance(key_id, int) or isinstance(key_id, bool) \
                    or key_id < 1:
                raise TenantConfigError(
                    f"key id must be a positive integer, got {key_id!r}")
            if not secret:
                raise TenantConfigError(
                    f"master secret for key id {key_id} is empty")
            prfs[key_id] = KeyedPRF(secret)
        self._prfs = dict(sorted(prfs.items()))
        if active is None:
            active = max(self._prfs)
        if active not in self._prfs:
            raise TenantConfigError(
                f"active key id {active} is not in the key map "
                f"(known: {sorted(self._prfs)})")
        self._active = active

    # -- introspection ------------------------------------------------------------

    @property
    def active_id(self) -> int:
        """The key generation new embeds and tokens are issued under."""
        return self._active

    def key_ids(self) -> List[int]:
        """All known generations, oldest first."""
        return list(self._prfs)

    def __contains__(self, key_id: object) -> bool:
        return key_id in self._prfs

    def fingerprint(self, key_id: Optional[int] = None) -> str:
        """Public fingerprint of one master key (safe to log)."""
        return self._prf(key_id).fingerprint()

    # -- derivation ------------------------------------------------------------

    def _prf(self, key_id: Optional[int]) -> KeyedPRF:
        if key_id is None:
            key_id = self._active
        try:
            return self._prfs[key_id]
        except KeyError:
            raise UnknownKeyError(
                f"unknown key id {key_id}; known generations: "
                f"{sorted(self._prfs)}") from None

    def derive(self, purpose: str, *parts: str,
               key_id: Optional[int] = None) -> bytes:
        """A subkey for ``purpose`` under one master generation."""
        return self._prf(key_id).derive(purpose, *parts)

    def tenant_key(self, tenant: str,
                   key_id: Optional[int] = None) -> bytes:
        """The subkey that keys ``tenant``'s watermarking system."""
        return self.derive("tenant-key", tenant, key_id=key_id)

    def scheme_key(self, tenant: str, scheme: str,
                   key_id: Optional[int] = None) -> bytes:
        """A per-(tenant, scheme) subkey — one derivation level deeper."""
        parent = KeyedPRF(self.tenant_key(tenant, key_id=key_id))
        return parent.derive("scheme-key", scheme)

    def token_key(self, key_id: Optional[int] = None) -> bytes:
        """The HMAC key that signs bearer tokens for one generation."""
        return self.derive("token-sign", key_id=key_id)

    def sealer(self) -> KeyedPRF:
        """The ledger-sealing PRF, pinned to the oldest generation.

        Blocks sealed before a rotation must verify after it, so the
        seal key cannot follow ``active_id``; ids are never removed,
        making the lowest id a stable anchor for the chain's lifetime.
        """
        oldest = min(self._prfs)
        return KeyedPRF(self.derive("ledger-seal", key_id=oldest))

    # -- rotation ------------------------------------------------------------

    def rotate(self, secret: Secret) -> int:
        """Add a new generation and make it active; returns its id."""
        if not secret:
            raise TenantConfigError("rotated master secret is empty")
        new_id = max(self._prfs) + 1
        self._prfs[new_id] = KeyedPRF(secret)
        self._active = new_id
        return new_id
