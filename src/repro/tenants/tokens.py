"""HMAC-signed capability tokens — the ``wmxml-token-v1`` credential.

A token is three dot-separated fields::

    wmx1.<base64url(claims JSON)>.<base64url(HMAC-SHA256 signature)>

The claims document names the tenant, the granted scopes, an optional
expiry (epoch seconds), and the key id whose derived token key signed
it — so tokens survive master-key rotation exactly like watermark
records do: verification re-derives the signing key for the generation
the token itself names.  No padding, no external JWT machinery; the
signature covers the exact claim bytes that travel.

Everything that can go wrong verifying a token raises
:class:`UnauthorizedError` — a missing credential and a forged one look
identical to the caller, which is the point.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import json
import time
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional

from .errors import TenantConfigError, UnauthorizedError, UnknownKeyError
from .keys import MasterKeyMap

#: Format tag inside the claims document.
TOKEN_FORMAT = "wmxml-token-v1"

#: Wire prefix of every token string.
TOKEN_PREFIX = "wmx1"

#: Every scope the service understands.  ``stats`` and ``healthz`` need
#: no scope (any valid token / no token respectively).
KNOWN_SCOPES = frozenset({
    "embed", "detect", "trace", "records", "schemes", "schemes-write",
})


@dataclass(frozen=True)
class TokenClaims:
    """Verified contents of a bearer token."""

    tenant: str
    scopes: FrozenSet[str]
    key_id: int
    expires_at: Optional[int] = None

    def to_dict(self) -> dict:
        payload = {
            "tenant": self.tenant,
            "scopes": sorted(self.scopes),
            "key_id": self.key_id,
            "expires_at": self.expires_at,
        }
        return payload


def _b64encode(raw: bytes) -> str:
    return base64.urlsafe_b64encode(raw).rstrip(b"=").decode("ascii")


def _b64decode(text: str) -> bytes:
    pad = -len(text) % 4
    return base64.urlsafe_b64decode(text + "=" * pad)


def _signature(key: bytes, claims: bytes) -> bytes:
    return hmac.new(key, claims, hashlib.sha256).digest()


def validate_scopes(scopes: Iterable[str]) -> FrozenSet[str]:
    """The scopes as a frozenset, refusing names the service lacks."""
    result = frozenset(scopes)
    unknown = result - KNOWN_SCOPES
    if unknown:
        raise TenantConfigError(
            f"unknown scopes {sorted(unknown)}; "
            f"known: {sorted(KNOWN_SCOPES)}")
    return result


def mint_token(keys: MasterKeyMap, tenant: str, scopes: Iterable[str],
               *, ttl_s: Optional[float] = None,
               key_id: Optional[int] = None,
               now: Optional[float] = None) -> str:
    """A signed bearer token for ``tenant`` under one key generation.

    ``ttl_s`` of ``None`` mints a non-expiring token (operator's
    choice — fine for loopback lab use, set a TTL for anything shared).
    """
    if not tenant:
        raise TenantConfigError("token tenant must not be empty")
    granted = validate_scopes(scopes)
    if key_id is None:
        key_id = keys.active_id
    expires_at: Optional[int] = None
    if ttl_s is not None:
        if ttl_s <= 0:
            raise TenantConfigError("token ttl must be positive")
        expires_at = int((time.time() if now is None else now) + ttl_s)
    claims = {
        "format": TOKEN_FORMAT,
        "tenant": tenant,
        "scopes": sorted(granted),
        "key_id": key_id,
        "expires_at": expires_at,
    }
    body = json.dumps(claims, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    signature = _signature(keys.token_key(key_id), body)
    return f"{TOKEN_PREFIX}.{_b64encode(body)}.{_b64encode(signature)}"


def verify_token(keys: MasterKeyMap, token: str,
                 *, now: Optional[float] = None) -> TokenClaims:
    """Verify a token string; any defect raises ``UnauthorizedError``."""
    if not isinstance(token, str) or not token:
        raise UnauthorizedError("missing bearer token")
    parts = token.split(".")
    if len(parts) != 3 or parts[0] != TOKEN_PREFIX:
        raise UnauthorizedError("malformed bearer token")
    try:
        body = _b64decode(parts[1])
        presented = _b64decode(parts[2])
        claims = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise UnauthorizedError("malformed bearer token") from None
    if not isinstance(claims, dict) \
            or claims.get("format") != TOKEN_FORMAT:
        raise UnauthorizedError("malformed bearer token")
    key_id = claims.get("key_id")
    tenant = claims.get("tenant")
    scopes = claims.get("scopes")
    expires_at = claims.get("expires_at")
    if not isinstance(key_id, int) or not isinstance(tenant, str) \
            or not tenant or not isinstance(scopes, list) \
            or not all(isinstance(s, str) for s in scopes) \
            or not (expires_at is None or isinstance(expires_at, int)):
        raise UnauthorizedError("malformed bearer token")
    try:
        expected = _signature(keys.token_key(key_id), body)
    except UnknownKeyError:
        raise UnauthorizedError(
            f"token signed under unknown key id {key_id}") from None
    if not hmac.compare_digest(expected, presented):
        raise UnauthorizedError("bearer token signature does not verify")
    if expires_at is not None:
        current = time.time() if now is None else now
        if current >= expires_at:
            raise UnauthorizedError("bearer token has expired")
    return TokenClaims(tenant=tenant,
                       scopes=frozenset(scopes) & KNOWN_SCOPES,
                       key_id=key_id, expires_at=expires_at)
