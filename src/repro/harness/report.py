"""Full experiment report: run every experiment, render one document.

``wmxml experiment all`` and the release process use this to regenerate
the complete paper-vs-measured evidence in one pass.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.harness.experiments import EXPERIMENTS, ExperimentConfig
from repro.harness.tables import ResultTable

#: Experiment ids in presentation order.
ORDER = ("e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10")


def run_all(
    config: ExperimentConfig = ExperimentConfig(),
    progress: Optional[Callable[[str], None]] = None,
) -> list[ResultTable]:
    """Run every experiment; returns the tables in presentation order."""
    tables: list[ResultTable] = []
    for name in ORDER:
        if progress is not None:
            progress(f"running {name} ...")
        started = time.perf_counter()
        table = EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - started
        table.note(f"generated in {elapsed:.1f}s with books={config.books}, "
                   f"gamma={config.gamma}, seed={config.seed}")
        tables.append(table)
    return tables


def render_report(tables: list[ResultTable],
                  title: str = "WmXML experiment report") -> str:
    """One text document containing every table."""
    rule = "#" * 72
    parts = [rule, f"# {title}", rule, ""]
    for table in tables:
        parts.append(table.render())
        parts.append("")
    return "\n".join(parts)


def write_report(path: str,
                 config: ExperimentConfig = ExperimentConfig(),
                 progress: Optional[Callable[[str], None]] = None) -> str:
    """Run everything and write the report to ``path``; returns the text."""
    text = render_report(run_all(config, progress=progress))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text
