"""Experiment harness: result tables and the E1-E10 suite.

``EXPERIMENTS`` maps experiment ids to callables; each returns a
:class:`~repro.harness.tables.ResultTable` reproducing one paper
artefact (see DESIGN.md §5 and EXPERIMENTS.md).
"""

from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentConfig,
    e1_reorganization_equivalence,
    e2_rewriting_fanout,
    e3_capacity,
    e4_embedding_usability,
    e5_alteration_sweep,
    e6_reduction_sweep,
    e7_reorganization_matrix,
    e8_redundancy,
    e9_performance,
    e10_false_positives,
)
from repro.harness.report import render_report, run_all, write_report
from repro.harness.tables import ResultTable, render_tables

__all__ = [
    "EXPERIMENTS",
    "ExperimentConfig",
    "ResultTable",
    "e10_false_positives",
    "e1_reorganization_equivalence",
    "e2_rewriting_fanout",
    "e3_capacity",
    "e4_embedding_usability",
    "e5_alteration_sweep",
    "e6_reduction_sweep",
    "e7_reorganization_matrix",
    "e8_redundancy",
    "e9_performance",
    "render_report",
    "render_tables",
    "run_all",
    "write_report",
]
