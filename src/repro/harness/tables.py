"""ASCII result tables for the experiment harness.

Every experiment returns a :class:`ResultTable`; the benchmarks print it
(the "rows/series the paper reports") and EXPERIMENTS.md archives it.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


@dataclass
class ResultTable:
    """A titled table with typed-ish cells and footnotes."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        """Append a row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.columns)} columns")
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        """Attach a footnote rendered under the table."""
        self.notes.append(text)

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    # -- rendering ------------------------------------------------------------

    @staticmethod
    def _format_cell(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
                return f"{value:.2e}"
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        """Monospace rendering with a title rule and aligned columns."""
        cells = [[self._format_cell(v) for v in row] for row in self.rows]
        widths = [
            max([len(name)] + [len(row[i]) for row in cells])
            for i, name in enumerate(self.columns)
        ]
        lines = [self.title, "=" * max(len(self.title), 8)]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append("  ".join(
                cell.rjust(widths[i]) if _numeric_like(cell)
                else cell.ljust(widths[i])
                for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: str) -> None:
        """Write the table (with title as a comment line) as CSV."""
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([f"# {self.title}"])
            writer.writerow(self.columns)
            for row in self.rows:
                writer.writerow(row)

    def __str__(self) -> str:
        return self.render()


def _numeric_like(cell: str) -> bool:
    try:
        float(cell)
        return True
    except ValueError:
        return False


def render_tables(tables: Sequence[ResultTable],
                  separator: str = "\n\n") -> str:
    """Render several tables as one report string."""
    return separator.join(table.render() for table in tables)
