"""The experiment suite: one entry point per paper artefact (E1-E10).

See DESIGN.md §5 for the experiment index.  Every function takes an
:class:`ExperimentConfig` so benchmarks can scale sizes, and returns one
or more :class:`~repro.harness.tables.ResultTable` with the series the
paper's demonstration promises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from repro.api import Pipeline, SchemeBuilder
from repro.attacks import (
    RedundancyUnificationAttack,
    ReductionAttack,
    ReorganizationAttack,
    SiblingShuffleAttack,
    ValueAlterationAttack,
)
from repro.baselines import AKWatermarker, SionSlot, SionWatermarker
from repro.core import (
    CarrierSpec,
    FDIdentifier,
    UsabilityBaseline,
    Watermark,
)
from repro.datasets import bibliography, vocab
from repro.harness.tables import ResultTable
from repro.rewriting import compile_logical, reorganize
from repro.xpath import select_strings


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared knobs for the experiment suite."""

    books: int = 200
    editors: int = 15
    seed: int = 42
    secret_key: str = "wmxml-experiment-key"
    message: str = "(c) WmXML"
    gamma: int = 2
    alpha: float = 1e-3


def _dataset(config: ExperimentConfig):
    return bibliography.generate_document(bibliography.BibliographyConfig(
        books=config.books, editors=config.editors, seed=config.seed))


def _watermark(config: ExperimentConfig) -> Watermark:
    return Watermark.from_message(config.message)


def _pipeline(config: ExperimentConfig, scheme) -> Pipeline:
    """The facade's compiled pipeline for one experiment deployment."""
    return Pipeline(scheme, config.secret_key, alpha=config.alpha)


def _embedded(config: ExperimentConfig, gamma=None):
    scheme = bibliography.default_scheme(gamma or config.gamma)
    document = _dataset(config)
    pipeline = _pipeline(config, scheme)
    result = pipeline.embed(document, _watermark(config))
    return document, scheme, result, pipeline


def _sion_slots() -> list[SionSlot]:
    return [
        SionSlot("book", "leaf", "year", "numeric"),
        SionSlot("book", "leaf", "price", "numeric",
                 (("fraction_digits", 2),)),
        SionSlot("book", "attribute", "publisher", "categorical",
                 (("domain", list(vocab.PUBLISHERS)),)),
    ]


# ---------------------------------------------------------------------------
# E1 — Figure 1: reorganisation preserves information and query answers.
# ---------------------------------------------------------------------------

def e1_reorganization_equivalence(
        config: ExperimentConfig = ExperimentConfig()) -> ResultTable:
    """db1 -> db2 keeps every template answer (the paper's usability claim)."""
    document = _dataset(config)
    source = bibliography.book_shape()
    target = bibliography.publisher_shape()
    reorganized = reorganize(document, source, target).document

    table = ResultTable(
        "E1 (Figure 1): query-answer equivalence under reorganisation",
        ["template", "bindings", "answers-equal", "source-xpath-example",
         "rewritten-xpath-example"])
    baseline = UsabilityBaseline.snapshot(
        document, source, bibliography.usability_templates())
    per_template: dict[str, list] = {}
    for item in baseline.instantiated:
        per_template.setdefault(item.template.name, []).append(item)
    for name, items in per_template.items():
        equal = 0
        for item in items:
            src = set(select_strings(document,
                                     compile_logical(item.query, source)))
            dst = set(select_strings(reorganized,
                                     compile_logical(item.query, target)))
            if src == dst:
                equal += 1
        example = items[0].query
        table.add(name, len(items), f"{equal}/{len(items)}",
                  compile_logical(example, source)[:60],
                  compile_logical(example, target)[:60])
    rows_src = {r.key(tuple(sorted(source.field_names)))
                for r in source.shred(document)}
    rows_dst = {r.key(tuple(sorted(source.field_names)))
                for r in target.shred(reorganized)}
    table.note(f"logical relation identical: {rows_src == rows_dst} "
               f"({len(rows_src)} rows)")
    return table


# ---------------------------------------------------------------------------
# E2 — Figure 2: detection through rewritten queries over several mappings.
# ---------------------------------------------------------------------------

def e2_rewriting_fanout(
        config: ExperimentConfig = ExperimentConfig()) -> ResultTable:
    """One insert query set, detection on Y1/Y2/Y3 reorganisations."""
    _, scheme, result, pipeline = _embedded(config)
    watermark = _watermark(config)
    source = bibliography.book_shape()
    table = ResultTable(
        "E2 (Figure 2): detection via query rewriting per mapping",
        ["target-organisation", "queries-answered", "votes",
         "match-ratio", "p-value", "detected"])
    shapes = [
        ("Y1: book-centric (original)", source),
        ("Y2: publisher/author-centric", bibliography.publisher_shape()),
        ("Y3: editor-centric", bibliography.editor_shape()),
    ]
    for label, target_shape in shapes:
        if target_shape is source:
            suspected = result.document
        else:
            suspected = reorganize(result.document, source,
                                   target_shape).document
        outcome = pipeline.detect(suspected, result.record,
                                  shape=target_shape, expected=watermark)
        table.add(label,
                  f"{outcome.queries_answered}/{outcome.queries_total}",
                  outcome.votes_total, outcome.match_ratio,
                  outcome.p_value, outcome.detected)
    return table


# ---------------------------------------------------------------------------
# E3 — §4 part 1: capacity utilisation versus gamma.
# ---------------------------------------------------------------------------

def e3_capacity(config: ExperimentConfig = ExperimentConfig(),
                gammas: tuple[int, ...] = (1, 2, 4, 8, 16, 32)) -> ResultTable:
    """Selected fraction tracks 1/gamma — capacity is fully utilised."""
    table = ResultTable(
        "E3: watermark capacity utilisation vs selection density",
        ["gamma", "candidate-groups", "selected", "expected(1/gamma)",
         "utilisation", "nodes-modified"])
    for gamma in gammas:
        _, _, result, _ = _embedded(config, gamma=gamma)
        stats = result.stats
        table.add(gamma, stats.capacity_groups, stats.selected_groups,
                  1.0 / gamma, stats.utilisation, stats.nodes_modified)
    table.note("candidate groups = distinct identities across all carriers"
               " (FD duplicates fold into one group)")
    return table


# ---------------------------------------------------------------------------
# E4 — §4 part 1: usability is not seriously degraded by embedding.
# ---------------------------------------------------------------------------

def e4_embedding_usability(
        config: ExperimentConfig = ExperimentConfig(),
        gammas: tuple[int, ...] = (1, 2, 4, 8, 16)) -> ResultTable:
    """Usability after embedding, per gamma."""
    document = _dataset(config)
    table = ResultTable(
        "E4: usability after watermark embedding",
        ["gamma", "nodes-modified", "mean-distortion",
         "usability-strict", "usability-jaccard", "destroyed"])
    for gamma in gammas:
        scheme = bibliography.default_scheme(gamma)
        result = _pipeline(config, scheme).embed(
            document, _watermark(config))
        baseline = UsabilityBaseline.snapshot(document, scheme.shape,
                                              scheme.templates)
        report = baseline.evaluate(result.document)
        table.add(gamma, result.stats.nodes_modified,
                  result.stats.mean_distortion, report.strict,
                  report.jaccard, report.destroyed())
    table.note("residual strict-usability loss comes from categorical "
               "publisher swaps; numeric/date/text perturbations sit "
               "inside the templates' declared tolerances")
    return table


# ---------------------------------------------------------------------------
# E5 — §4 attack A: alteration sweep (detection vs usability crossover).
# ---------------------------------------------------------------------------

def e5_alteration_sweep(
        config: ExperimentConfig = ExperimentConfig(),
        rates: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.35, 0.5,
                                    0.75, 1.0)) -> ResultTable:
    """The paper's central claim: the watermark outlives usability."""
    document, scheme, result, pipeline = _embedded(config)
    watermark = _watermark(config)
    baseline = UsabilityBaseline.snapshot(document, scheme.shape,
                                          scheme.templates)
    table = ResultTable(
        "E5 (attack A): value alteration sweep",
        ["alter-rate", "votes", "match-ratio", "p-value", "detected",
         "usability-strict", "usability-jaccard", "usability-destroyed"])
    for rate in rates:
        attacked = ValueAlterationAttack(rate, seed=config.seed).apply(
            result.document).document
        outcome = pipeline.detect(attacked, result.record,
                                  expected=watermark)
        report = baseline.evaluate(attacked)
        table.add(rate, outcome.votes_total, outcome.match_ratio,
                  outcome.p_value, outcome.detected, report.strict,
                  report.jaccard, report.destroyed())
    table.note("claim: rows where detected=no have usability-destroyed=yes")
    return table


# ---------------------------------------------------------------------------
# E6 — §4 attack B: reduction sweep.
# ---------------------------------------------------------------------------

def e6_reduction_sweep(
        config: ExperimentConfig = ExperimentConfig(),
        keep_fractions: tuple[float, ...] = (1.0, 0.75, 0.5, 0.25, 0.1,
                                             0.05, 0.02)) -> ResultTable:
    """Detection from ever-smaller stolen subsets."""
    document, scheme, result, pipeline = _embedded(config)
    watermark = _watermark(config)
    baseline = UsabilityBaseline.snapshot(document, scheme.shape,
                                          scheme.templates)
    table = ResultTable(
        "E6 (attack B): subset (reduction) sweep",
        ["keep-fraction", "entities-kept", "votes", "match-ratio",
         "p-value", "detected", "usability-strict"])
    for keep in keep_fractions:
        report = ReductionAttack(keep, seed=config.seed).apply(
            result.document)
        attacked = report.document
        outcome = pipeline.detect(attacked, result.record,
                                  expected=watermark)
        usability = baseline.evaluate(attacked)
        table.add(keep, len(attacked.root.child_elements("book")),
                  outcome.votes_total, outcome.match_ratio,
                  outcome.p_value, outcome.detected, usability.strict)
    table.note("usability here measures the thief's copy against the "
               "full feed: discarding data costs the thief answers")
    return table


# ---------------------------------------------------------------------------
# E7 — §4 attack C: reorganisation / reordering, vs the baselines.
# ---------------------------------------------------------------------------

def e7_reorganization_matrix(
        config: ExperimentConfig = ExperimentConfig()) -> ResultTable:
    """Scheme x attack matrix for structural attacks."""
    document = _dataset(config)
    watermark = _watermark(config)
    source = bibliography.book_shape()
    target = bibliography.publisher_shape()

    scheme = bibliography.default_scheme(config.gamma)
    pipeline = _pipeline(config, scheme)
    wm_result = pipeline.embed(document, watermark)

    ak = AKWatermarker(config.secret_key, source, scheme.carriers,
                       gamma=config.gamma, alpha=config.alpha)
    ak_doc, ak_record = ak.embed(document, watermark)

    sion = SionWatermarker(config.secret_key, _sion_slots(),
                           gamma=config.gamma, alpha=config.alpha)
    sion_doc, sion_record = sion.embed(document, watermark)

    shuffle = SiblingShuffleAttack(seed=config.seed)
    reorg = ReorganizationAttack(source, target)

    def wmxml_detect(doc, shape):
        return pipeline.detect(doc, wm_result.record, shape=shape,
                               expected=watermark)

    table = ResultTable(
        "E7 (attack C): structural attacks, WmXML vs baselines",
        ["scheme", "attack", "votes", "match-ratio", "p-value", "detected"])

    cases = [
        ("none", lambda d: d, False),
        ("sibling-shuffle", lambda d: shuffle.apply(d).document, False),
        ("reorganisation", lambda d: reorg.apply(d).document, True),
        ("shuffle+reorg",
         lambda d: shuffle.apply(reorg.apply(d).document).document, True),
    ]
    for attack_name, transform, reorganised in cases:
        out = wmxml_detect(transform(wm_result.document),
                           target if reorganised else source)
        table.add("WmXML (rewritten)", attack_name, out.votes_total,
                  out.match_ratio, out.p_value, out.detected)
    for attack_name, transform, reorganised in cases[2:]:
        out = wmxml_detect(transform(wm_result.document), source)
        table.add("WmXML (no rewriting)", attack_name, out.votes_total,
                  out.match_ratio, out.p_value, out.detected)
    for attack_name, transform, _ in cases:
        out = ak.detect(transform(ak_doc), ak_record, watermark)
        table.add("Agrawal-Kiernan", attack_name, out.votes_total,
                  out.match_ratio, out.p_value, out.detected)
    for attack_name, transform, _ in cases:
        out = sion.detect(transform(sion_doc), sion_record, watermark)
        table.add("Sion-labeling", attack_name, out.votes_total,
                  out.match_ratio, out.p_value, out.detected)
    return table


# ---------------------------------------------------------------------------
# E8 — §4 attack D: redundancy removal; FD-aware vs FD-unaware ablation.
# ---------------------------------------------------------------------------

def e8_redundancy(config: ExperimentConfig = ExperimentConfig(),
                  strategies: tuple[str, ...] = ("first", "majority",
                                                 "random")) -> ResultTable:
    """Publisher-only carriers: maximum exposure to the FD attack."""
    document = _dataset(config)
    watermark = _watermark(config)
    source = bibliography.book_shape()
    fd = bibliography.semantic_fd()
    domain = list(vocab.PUBLISHERS)

    fd_aware = (SchemeBuilder(source)
                .carrier("publisher", "categorical", fd="editor",
                         params={"domain": domain})
                .gamma(1)
                .build())
    pipeline = _pipeline(config, fd_aware)
    aware_result = pipeline.embed(document, watermark)

    ak = AKWatermarker(
        config.secret_key, source,
        [CarrierSpec.create("publisher", "categorical",
                            FDIdentifier(("editor",)), {"domain": domain})],
        gamma=1, alpha=config.alpha)
    ak_doc, ak_record = ak.embed(document, watermark)

    sion = SionWatermarker(
        config.secret_key,
        [SionSlot("book", "attribute", "publisher", "categorical",
                  (("domain", domain),))],
        gamma=1, alpha=config.alpha)
    sion_doc, sion_record = sion.embed(document, watermark)

    table = ResultTable(
        "E8 (attack D): redundancy unification on the publisher carrier",
        ["scheme", "strategy", "values-rewritten", "votes", "match-ratio",
         "p-value", "detected"])

    def add_row(name, strategy, report, outcome):
        table.add(name, strategy, report.modifications if report else 0,
                  outcome.votes_total, outcome.match_ratio,
                  outcome.p_value, outcome.detected)

    add_row("WmXML (FD-identified)", "(clean)", None,
            pipeline.detect(aware_result.document, aware_result.record,
                            expected=watermark))
    add_row("Agrawal-Kiernan", "(clean)", None,
            ak.detect(ak_doc, ak_record, watermark))
    add_row("Sion-labeling", "(clean)", None,
            sion.detect(sion_doc, sion_record, watermark))
    for strategy in strategies:
        attack = RedundancyUnificationAttack(fd, strategy=strategy,
                                             seed=config.seed)
        report = attack.apply(aware_result.document)
        add_row("WmXML (FD-identified)", strategy, report,
                pipeline.detect(report.document, aware_result.record,
                                expected=watermark))
        report = attack.apply(ak_doc)
        add_row("Agrawal-Kiernan", strategy, report,
                ak.detect(report.document, ak_record, watermark))
        report = attack.apply(sion_doc)
        add_row("Sion-labeling", strategy, report,
                sion.detect(report.document, sion_record, watermark))
    table.note("FD-identified duplicates are bit-identical, so "
               "unification rewrites nothing and the mark survives intact")
    return table


# ---------------------------------------------------------------------------
# E9 — §3: system performance versus document size.
# ---------------------------------------------------------------------------

def e9_performance(config: ExperimentConfig = ExperimentConfig(),
                   sizes: tuple[int, ...] = (50, 100, 200, 400)) -> ResultTable:
    """Embed/detect wall time as the document grows.

    Reports both detection paths: per-query XPath scanning (the naive
    query engine, O(|Q|·|doc|)) and the indexed logical executor
    (O(|doc| + |Q|)) — the design note of EXPERIMENTS.md E9.
    """
    table = ResultTable(
        "E9: encoder/decoder performance vs document size",
        ["books", "elements", "carrier-groups", "embed-ms",
         "detect-scan-ms", "detect-indexed-ms", "queries"])
    watermark = _watermark(config)
    for books in sizes:
        scoped = replace(config, books=books)
        document = _dataset(scoped)
        scheme = bibliography.default_scheme(config.gamma)
        pipeline = _pipeline(config, scheme)
        start = time.perf_counter()
        result = pipeline.embed(document, watermark)
        embed_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        outcome = pipeline.detect(result.document, result.record,
                                  expected=watermark, strategy="scan")
        detect_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        indexed = pipeline.detect(result.document, result.record,
                                  expected=watermark, strategy="indexed")
        indexed_ms = (time.perf_counter() - start) * 1000
        assert outcome.detected and indexed.detected
        assert outcome.votes_total == indexed.votes_total
        table.add(books, document.count_elements(),
                  result.stats.capacity_groups, embed_ms, detect_ms,
                  indexed_ms, outcome.queries_total)
    return table


# ---------------------------------------------------------------------------
# E10 — soundness: false positives on unmarked data / wrong keys.
# ---------------------------------------------------------------------------

def e10_false_positives(config: ExperimentConfig = ExperimentConfig(),
                        trials: int = 20) -> ResultTable:
    """No detection without the mark, no detection without the key."""
    document, scheme, result, pipeline = _embedded(config)
    watermark = _watermark(config)
    table = ResultTable(
        "E10: false-positive resistance",
        ["scenario", "trials", "detections", "max-match-ratio",
         "min-p-value"])

    detections = 0
    max_ratio = 0.0
    min_p = 1.0
    for trial in range(trials):
        other = bibliography.generate_document(
            bibliography.BibliographyConfig(
                books=config.books, editors=config.editors,
                seed=config.seed + 1000 + trial))
        outcome = pipeline.detect(other, result.record,
                                  expected=watermark)
        detections += outcome.detected
        max_ratio = max(max_ratio, outcome.match_ratio)
        min_p = min(min_p, outcome.p_value)
    table.add("unrelated unmarked data", trials, detections, max_ratio,
              min_p)

    detections = 0
    max_ratio = 0.0
    min_p = 1.0
    for trial in range(trials):
        stranger = Pipeline(scheme, f"wrong-key-{trial}",
                            alpha=config.alpha)
        outcome = stranger.detect(result.document, result.record,
                                  expected=watermark)
        detections += outcome.detected
        max_ratio = max(max_ratio, outcome.match_ratio)
        min_p = min(min_p, outcome.p_value)
    table.add("marked data, wrong key", trials, detections, max_ratio,
              min_p)

    original = pipeline.detect(document, result.record,
                               expected=watermark)
    table.add("original (pre-marking) data", 1, int(original.detected),
              original.match_ratio, original.p_value)
    table.note("record authentication is deterministic: the true key "
               "re-derives every stored entry, so a single rejection "
               "refuses the claim outright — a wrong key can never ride "
               "on accidentally-authenticated (honestly marked) entries")
    return table


#: Registry used by the CLI and the benchmarks.
EXPERIMENTS = {
    "e1": e1_reorganization_equivalence,
    "e2": e2_rewriting_fanout,
    "e3": e3_capacity,
    "e4": e4_embedding_usability,
    "e5": e5_alteration_sweep,
    "e6": e6_reduction_sweep,
    "e7": e7_reorganization_matrix,
    "e8": e8_redundancy,
    "e9": e9_performance,
    "e10": e10_false_positives,
}
