"""Re-nesting a logical relation into an XML document.

The inverse of shredding: a :class:`NestingSpec` describes a target
document organisation as a linear hierarchy of levels, each grouping the
rows by some fields.  Rebuilding Figure 1 of the paper:

* db1.xml is ``book``-centric — one level grouped by ``title``, with
  ``publisher`` as an attribute and ``author``/``editor``/``year`` as
  leaf children;
* db2.xml is ``publisher``/``author``-centric — a ``publisher`` level
  grouped by publisher, an ``author`` level grouped by author, and a
  ``book`` level whose element text is the title.

Because both shapes describe the *same* relation, reorganisation (the
attack of §4C) is ``shred(db1-shape) |> build(db2-shape)``, and query
rewriting is re-compiling a logical query against the other shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.semantics.errors import RecordError
from repro.semantics.records import Row
from repro.xmlmodel.tree import Document, Element


@dataclass(frozen=True)
class LevelSpec:
    """One level of the target hierarchy.

    * ``tag`` — element tag created per group,
    * ``group_by`` — fields whose values define the groups at this level
      (within the parent group),
    * ``attributes`` — attribute name -> field placed on the element,
    * ``leaves`` — child leaf tag -> field placed under the element; a
      field with several distinct values in the group yields one child
      per value,
    * ``text_field`` — field stored as the element's own text content.
    """

    tag: str
    group_by: tuple[str, ...]
    attributes: tuple[tuple[str, str], ...] = ()
    leaves: tuple[tuple[str, str], ...] = ()
    text_field: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.group_by:
            raise RecordError(f"level {self.tag!r} needs group_by fields")

    def placed_fields(self) -> set[str]:
        """Every field this level materialises."""
        placed = {field_name for _, field_name in self.attributes}
        placed.update(field_name for _, field_name in self.leaves)
        if self.text_field is not None:
            placed.add(self.text_field)
        return placed

    def to_dict(self) -> dict:
        data: dict = {"tag": self.tag, "group_by": list(self.group_by)}
        if self.attributes:
            data["attributes"] = [list(pair) for pair in self.attributes]
        if self.leaves:
            data["leaves"] = [list(pair) for pair in self.leaves]
        if self.text_field is not None:
            data["text_field"] = self.text_field
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "LevelSpec":
        return cls(
            tag=data["tag"],
            group_by=tuple(data["group_by"]),
            attributes=tuple(
                (name, field_name)
                for name, field_name in data.get("attributes", ())),
            leaves=tuple(
                (tag, field_name)
                for tag, field_name in data.get("leaves", ())),
            text_field=data.get("text_field"),
        )


@dataclass(frozen=True)
class NestingSpec:
    """A linear hierarchy of levels under a root element."""

    root: str
    levels: tuple[LevelSpec, ...]

    def __post_init__(self) -> None:
        if not self.levels:
            raise RecordError("nesting spec needs at least one level")

    def placed_fields(self) -> set[str]:
        placed: set[str] = set()
        for level in self.levels:
            placed.update(level.placed_fields())
        return placed

    def grouping_fields(self) -> set[str]:
        grouped: set[str] = set()
        for level in self.levels:
            grouped.update(level.group_by)
        return grouped

    def check_covers(self, field_names: Sequence[str]) -> list[str]:
        """Fields of the relation that this nesting would drop."""
        placed = self.placed_fields()
        return [name for name in field_names if name not in placed]

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "levels": [level.to_dict() for level in self.levels],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NestingSpec":
        return cls(
            root=data["root"],
            levels=tuple(LevelSpec.from_dict(entry)
                         for entry in data["levels"]),
        )

    # -- building ------------------------------------------------------------

    def build(self, rows: Sequence[Row]) -> Document:
        """Materialise ``rows`` as a document in this organisation.

        Grouping preserves first-seen order at every level, so building
        is deterministic for a given row order.
        """
        root = Element(self.root)
        self._build_level(root, list(rows), 0)
        return Document(root)

    def _build_level(self, parent: Element, rows: list[Row],
                     depth: int) -> None:
        if depth >= len(self.levels):
            return
        level = self.levels[depth]
        groups: dict[tuple[str, ...], list[Row]] = {}
        for row in rows:
            if any(f not in row.values for f in level.group_by):
                continue  # row lacks this level's identity; skip it
            groups.setdefault(row.key(level.group_by), []).append(row)
        for group_key, group_rows in groups.items():
            element = parent.add_child(level.tag)
            head = group_rows[0]
            for attr_name, field_name in level.attributes:
                value = head.get(field_name)
                if value is not None:
                    element.set_attribute(attr_name, value)
            if level.text_field is not None:
                value = head.get(level.text_field)
                if value is not None:
                    element.set_text(value)
            for leaf_tag, field_name in level.leaves:
                for value in _distinct_in_order(group_rows, field_name):
                    element.add_child(leaf_tag, text=value)
            self._build_level(element, group_rows, depth + 1)


def _distinct_in_order(rows: list[Row], field_name: str) -> list[str]:
    seen: dict[str, None] = {}
    for row in rows:
        value = row.get(field_name)
        if value is not None:
            seen.setdefault(value)
    return list(seen)
