"""Schema validation of documents (paper §2.2 step 1).

The validator walks the tree once and reports every violation it finds:

* undeclared elements,
* illegal child sequences (content-model mismatch),
* text content inside composite elements,
* typed-leaf / typed-attribute lexical errors,
* missing required attributes and undeclared attributes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.semantics.errors import SchemaValidationError
from repro.semantics.schema import LeafType, Schema
from repro.xmlmodel.tree import Document, Element, Text


@dataclass(frozen=True)
class Violation:
    """A single schema violation at ``path``."""

    path: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}: {self.message}"


def validate(schema: Schema, document: Union[Document, Element]) -> list[Violation]:
    """Validate ``document`` against ``schema``; return all violations."""
    root = document.root if isinstance(document, Document) else document
    violations: list[Violation] = []
    if root.tag != schema.root:
        violations.append(Violation(
            root.path(),
            f"root element is <{root.tag}>, schema expects <{schema.root}>"))
    _validate_element(schema, root, violations)
    return violations


def is_valid(schema: Schema, document: Union[Document, Element]) -> bool:
    """True when ``document`` has no schema violations."""
    return not validate(schema, document)


def assert_valid(schema: Schema, document: Union[Document, Element]) -> None:
    """Raise :class:`SchemaValidationError` when the document is invalid."""
    violations = validate(schema, document)
    if violations:
        raise SchemaValidationError(violations)


def _validate_element(schema: Schema, element: Element,
                      violations: list[Violation]) -> None:
    decl = schema.declaration(element.tag)
    if decl is None:
        violations.append(Violation(
            element.path(), f"undeclared element <{element.tag}>"))
        return

    _validate_attributes(schema, element, decl, violations)

    child_elements = element.child_elements()
    has_text = any(
        isinstance(child, Text) and child.value.strip()
        for child in element.children
    )
    if decl.is_leaf:
        if child_elements:
            violations.append(Violation(
                element.path(),
                f"leaf element <{element.tag}> contains child elements"))
        expected = decl.leaf_type or LeafType.STRING
        if not expected.accepts(element.text):
            violations.append(Violation(
                element.path(),
                f"text {element.text[:40]!r} is not a valid "
                f"{expected.value}"))
        return

    if has_text:
        violations.append(Violation(
            element.path(),
            f"composite element <{element.tag}> contains text content"))
    child_tags = [child.tag for child in child_elements]
    if not schema.matches_children(element.tag, child_tags):
        violations.append(Violation(
            element.path(),
            f"children ({', '.join(child_tags) or 'none'}) do not match "
            f"content model ({', '.join(i.render() for i in decl.content)})"))
    for child in child_elements:
        _validate_element(schema, child, violations)


def _validate_attributes(schema: Schema, element: Element, decl,
                         violations: list[Violation]) -> None:
    declared = {attr.name: attr for attr in decl.attributes}
    for name, value in element.attributes.items():
        attr_decl = declared.get(name)
        if attr_decl is None:
            violations.append(Violation(
                element.path(), f"undeclared attribute {name!r}"))
            continue
        if not attr_decl.type.accepts(value):
            violations.append(Violation(
                element.path(),
                f"attribute {name}={value[:40]!r} is not a valid "
                f"{attr_decl.type.value}"))
    for name, attr_decl in declared.items():
        if attr_decl.required and name not in element.attributes:
            violations.append(Violation(
                element.path(), f"missing required attribute {name!r}"))
