"""Shredding XML documents into a logical relation.

The rewriting layer (paper §2.2, Figure 2) needs a representation of the
data that is independent of any particular XML organisation.  WmXML's
reproduction uses the classical one: a *logical relation* obtained by
shredding entity subtrees into flat rows.

* A :class:`FieldSpec` names one field and gives the relative path from
  an entity node to its value (``@name`` paths address attributes).
  ``multi=True`` marks set-valued fields (e.g. a book's authors).
* A :class:`RecordSpec` names the entity path plus its fields and turns
  a document into :class:`Row` objects.  Multi-valued fields expand into
  one row per value (a cross product when several multi fields exist),
  mirroring the relational encoding of nested data.

Rows keep *node references* alongside values so the watermark embedder
can rewrite the exact text/attribute nodes it selected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.semantics.errors import RecordError
from repro.xmlmodel.tree import Document, Element
from repro.xpath import NodeLike, compile_xpath, node_string_value


@dataclass(frozen=True)
class FieldSpec:
    """One field of the logical relation."""

    name: str
    path: str
    multi: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise RecordError("field name must not be empty")
        if self.path.startswith("/"):
            raise RecordError(
                f"field {self.name!r}: path must be relative to the entity")


@dataclass
class Row:
    """One logical row: field values plus the nodes carrying them.

    ``entity`` is the entity element the row was shredded from; several
    rows share one entity when multi-valued fields were expanded.
    Synthetic rows (from the dataset generators) have no backing
    document: ``entity`` is None and ``nodes`` is empty.
    """

    entity: Optional[Element]
    values: dict[str, str]
    nodes: dict[str, NodeLike]

    @classmethod
    def from_values(cls, values: dict[str, str]) -> "Row":
        """A synthetic row carrying values only (generator output)."""
        return cls(entity=None, values=dict(values), nodes={})

    def __getitem__(self, field_name: str) -> str:
        return self.values[field_name]

    def get(self, field_name: str, default: Optional[str] = None) -> Optional[str]:
        return self.values.get(field_name, default)

    def key(self, fields: tuple[str, ...]) -> tuple[str, ...]:
        """Tuple of this row's values for ``fields``."""
        return tuple(self.values[f] for f in fields)


@dataclass(frozen=True)
class RecordSpec:
    """Entity path plus field specs; the schema of the logical relation."""

    entity: str
    fields: tuple[FieldSpec, ...]

    def __post_init__(self) -> None:
        if not self.entity.startswith("/"):
            raise RecordError("entity must be an absolute path")
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise RecordError("duplicate field names in record spec")

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def field(self, name: str) -> FieldSpec:
        for spec in self.fields:
            if spec.name == name:
                return spec
        raise RecordError(f"unknown field {name!r}")

    # -- shredding ------------------------------------------------------------

    def shred(self, document: Union[Document, Element]) -> list[Row]:
        """Flatten ``document`` into rows (document order preserved)."""
        rows: list[Row] = []
        for entity in compile_xpath(self.entity).select(document):
            if not isinstance(entity, Element):
                raise RecordError(
                    f"entity path {self.entity!r} selected a non-element")
            rows.extend(self._shred_entity(entity))
        return rows

    def _shred_entity(self, entity: Element) -> Iterator[Row]:
        single_values: dict[str, str] = {}
        single_nodes: dict[str, NodeLike] = {}
        multi_fields: list[tuple[FieldSpec, list[NodeLike]]] = []
        for spec in self.fields:
            nodes = compile_xpath(spec.path).select(entity)
            if spec.multi:
                multi_fields.append((spec, nodes))
                continue
            if not nodes:
                continue  # optional field absent on this entity
            if len(nodes) > 1:
                raise RecordError(
                    f"field {spec.name!r} is single-valued but "
                    f"{entity.path()} has {len(nodes)} matches; "
                    "declare it multi=True")
            single_values[spec.name] = node_string_value(nodes[0]).strip()
            single_nodes[spec.name] = nodes[0]

        if not multi_fields:
            yield Row(entity, dict(single_values), dict(single_nodes))
            return
        yield from self._expand_multi(
            entity, single_values, single_nodes, multi_fields)

    def _expand_multi(
        self,
        entity: Element,
        base_values: dict[str, str],
        base_nodes: dict[str, NodeLike],
        multi_fields: list[tuple[FieldSpec, list[NodeLike]]],
    ) -> Iterator[Row]:
        """Cross-product expansion of multi-valued fields."""
        combos: list[tuple[dict[str, str], dict[str, NodeLike]]] = [({}, {})]
        for spec, nodes in multi_fields:
            if not nodes:
                continue  # absent multi field contributes nothing
            expanded: list[tuple[dict[str, str], dict[str, NodeLike]]] = []
            for values, value_nodes in combos:
                for node in nodes:
                    new_values = dict(values)
                    new_nodes = dict(value_nodes)
                    new_values[spec.name] = node_string_value(node).strip()
                    new_nodes[spec.name] = node
                    expanded.append((new_values, new_nodes))
            combos = expanded
        for values, value_nodes in combos:
            merged_values = dict(base_values)
            merged_values.update(values)
            merged_nodes = dict(base_nodes)
            merged_nodes.update(value_nodes)
            yield Row(entity, merged_values, merged_nodes)

    # -- entity-level access (no multi expansion) -----------------------------------

    def entities(self, document: Union[Document, Element]) -> list[Element]:
        """The entity elements themselves, in document order."""
        nodes = compile_xpath(self.entity).select(document)
        return [node for node in nodes if isinstance(node, Element)]

    def values_of(
        self, entity: Element, field_name: str
    ) -> list[tuple[str, NodeLike]]:
        """All (value, node) pairs of one field on one entity."""
        spec = self.field(field_name)
        nodes = compile_xpath(spec.path).select(entity)
        return [(node_string_value(n).strip(), n) for n in nodes]


def distinct_values(rows: list[Row], field_name: str) -> list[str]:
    """Distinct values of a field across rows, first-seen order."""
    return list(dict.fromkeys(
        row.values[field_name] for row in rows if field_name in row.values))


def project(rows: list[Row], fields: tuple[str, ...]) -> list[tuple[str, ...]]:
    """Distinct projections of rows onto ``fields`` (first-seen order).

    Rows missing any of the fields are skipped.
    """
    seen: dict[tuple[str, ...], None] = {}
    for row in rows:
        if any(f not in row.values for f in fields):
            continue
        seen.setdefault(row.key(fields))
    return list(seen)
