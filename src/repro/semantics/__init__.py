"""Semantics layer: schemas, keys, functional dependencies, records, shapes.

This package supplies everything WmXML's §2.3 "identifier creation"
depends on:

* :mod:`~repro.semantics.schema` / :mod:`~repro.semantics.validator` —
  DTD-like schemas and validation (workflow step 1 of the paper),
* :mod:`~repro.semantics.keys` / :mod:`~repro.semantics.fds` — the key
  and FD constraints identifiers are built from,
* :mod:`~repro.semantics.discovery` — mining candidate keys/FDs,
* :mod:`~repro.semantics.records` / :mod:`~repro.semantics.nesting` /
  :mod:`~repro.semantics.shape` — the logical-relation view powering
  reorganisation and query rewriting.
"""

from repro.semantics.discovery import (
    CandidateFD,
    CandidateKey,
    discover_fds,
    discover_keys,
)
from repro.semantics.dtd import parse_dtd, render_dtd
from repro.semantics.errors import (
    ConstraintError,
    RecordError,
    SchemaError,
    SchemaValidationError,
    SemanticsError,
)
from repro.semantics.fds import FDViolation, RedundancyGroup, XMLFD
from repro.semantics.inference import infer_leaf_type, infer_schema
from repro.semantics.keys import KeyViolation, XMLKey
from repro.semantics.nesting import LevelSpec, NestingSpec
from repro.semantics.records import (
    FieldSpec,
    RecordSpec,
    Row,
    distinct_values,
    project,
)
from repro.semantics.schema import (
    AttributeDecl,
    Choice,
    ElementDecl,
    LeafType,
    Particle,
    Schema,
    composite,
    leaf,
)
from repro.semantics.shape import (
    ATTRIBUTE,
    LEAF,
    TEXT,
    DocumentShape,
    FieldPlacement,
    level,
    shape,
)
from repro.semantics.validator import Violation, assert_valid, is_valid, validate

__all__ = [
    "ATTRIBUTE",
    "AttributeDecl",
    "CandidateFD",
    "CandidateKey",
    "Choice",
    "ConstraintError",
    "DocumentShape",
    "ElementDecl",
    "FDViolation",
    "FieldPlacement",
    "FieldSpec",
    "KeyViolation",
    "LEAF",
    "LeafType",
    "LevelSpec",
    "NestingSpec",
    "Particle",
    "RecordError",
    "RecordSpec",
    "RedundancyGroup",
    "Row",
    "Schema",
    "SchemaError",
    "SchemaValidationError",
    "SemanticsError",
    "TEXT",
    "Violation",
    "XMLFD",
    "XMLKey",
    "assert_valid",
    "composite",
    "discover_fds",
    "discover_keys",
    "distinct_values",
    "infer_leaf_type",
    "infer_schema",
    "is_valid",
    "leaf",
    "level",
    "parse_dtd",
    "project",
    "render_dtd",
    "shape",
    "validate",
]
