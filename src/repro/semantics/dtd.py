"""DTD import/export for the schema model.

The paper's workflow starts from the document's schema; real feeds ship
schemas as DTDs, so this module converts between DTD text and
:class:`~repro.semantics.schema.Schema`:

* :func:`parse_dtd` reads ``<!ELEMENT ...>`` / ``<!ATTLIST ...>``
  declarations covering the subset the schema model supports — element
  content as ``EMPTY``, ``(#PCDATA)``, or a sequence of names and
  single-level choice groups with ``? * +`` occurrence markers;
* :func:`render_dtd` writes a schema back out as a DTD.

Leaf data types (year/decimal/base64...) have no DTD syntax; they are
carried through round-trips in ``<!-- wmxml:type tag=... -->`` comment
annotations that :func:`parse_dtd` understands and plain DTD consumers
ignore.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.semantics.errors import SchemaError
from repro.semantics.schema import (
    AttributeDecl,
    Choice,
    ContentItem,
    ElementDecl,
    LeafType,
    Particle,
    Schema,
)

_ELEMENT_RE = re.compile(r"<!ELEMENT\s+([\w.\-:]+)\s+(.*?)>", re.DOTALL)
_ATTLIST_RE = re.compile(r"<!ATTLIST\s+([\w.\-:]+)\s+(.*?)>", re.DOTALL)
_TYPE_HINT_RE = re.compile(
    r"<!--\s*wmxml:type\s+(?:tag|attr)=([\w.\-:@]+)\s+type=(\w+)\s*-->")
_ATTR_DEF_RE = re.compile(
    r"([\w.\-:]+)\s+(CDATA|ID|IDREF|NMTOKEN)\s+(#REQUIRED|#IMPLIED)")
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)

_OCCURRENCE = {
    "": (1, 1),
    "?": (0, 1),
    "+": (1, None),
    "*": (0, None),
}


def _split_top_level(body: str) -> list[str]:
    """Split a content model body on top-level commas."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_item(text: str) -> ContentItem:
    text = text.strip()
    occurrence = ""
    if text and text[-1] in "?+*":
        occurrence = text[-1]
        text = text[:-1].strip()
    min_occurs, max_occurs = _OCCURRENCE[occurrence]
    if text.startswith("(") and text.endswith(")"):
        inner = text[1:-1]
        alternatives = tuple(part.strip() for part in inner.split("|"))
        if len(alternatives) < 2 or any("(" in a or "," in a
                                        for a in alternatives):
            raise SchemaError(
                f"unsupported content group {text!r} (only single-level "
                "choice groups are supported)")
        return Choice(alternatives, min_occurs, max_occurs)
    if not re.fullmatch(r"[\w.\-:]+", text):
        raise SchemaError(f"unsupported content particle {text!r}")
    return Particle(text, min_occurs, max_occurs)


def _parse_content(body: str, tag: str) -> tuple[tuple[ContentItem, ...],
                                                 Optional[LeafType]]:
    body = body.strip()
    if body == "EMPTY":
        return (), LeafType.STRING
    if body in ("(#PCDATA)", "(#PCDATA)*"):
        return (), LeafType.STRING
    if not (body.startswith("(") and body.endswith(")")):
        raise SchemaError(f"cannot parse content model for {tag!r}: {body!r}")
    if "#PCDATA" in body:
        raise SchemaError(
            f"mixed content on {tag!r} is not supported "
            "(data-centric schemas only)")
    items = tuple(_parse_item(part)
                  for part in _split_top_level(body[1:-1]))
    if not items:
        raise SchemaError(f"empty content model for {tag!r}")
    return items, None


def parse_dtd(text: str, root: Optional[str] = None) -> Schema:
    """Parse DTD text into a :class:`Schema`.

    ``root`` defaults to the first declared element, matching the common
    convention of declaring the document element first.
    """
    type_hints: dict[str, LeafType] = {}
    for name, type_name in _TYPE_HINT_RE.findall(text):
        try:
            type_hints[name] = LeafType(type_name)
        except ValueError:
            raise SchemaError(f"unknown wmxml:type {type_name!r}") from None
    stripped = _COMMENT_RE.sub("", text)

    attributes: dict[str, list[AttributeDecl]] = {}
    for tag, body in _ATTLIST_RE.findall(stripped):
        declared = attributes.setdefault(tag, [])
        for name, _dtd_type, flag in _ATTR_DEF_RE.findall(body):
            declared.append(AttributeDecl(
                name,
                type=type_hints.get(f"{tag}@{name}", LeafType.STRING),
                required=flag == "#REQUIRED"))

    declarations: list[ElementDecl] = []
    first_tag: Optional[str] = None
    for tag, body in _ELEMENT_RE.findall(stripped):
        if first_tag is None:
            first_tag = tag
        content, leaf_type = _parse_content(body, tag)
        if leaf_type is not None:
            leaf_type = type_hints.get(tag, leaf_type)
        declarations.append(ElementDecl(
            tag,
            content=content,
            leaf_type=leaf_type if not content else None,
            attributes=tuple(attributes.get(tag, ()))))
    if not declarations:
        raise SchemaError("no <!ELEMENT> declarations found")
    return Schema(root or first_tag, declarations)


def _dtd_occurrence(min_occurs: int, max_occurs: Optional[int]) -> str:
    """The tightest DTD occurrence marker covering the exact bounds.

    DTDs only know ``?``/``*``/``+``; exact counts (e.g. an inferred
    ``book{20,}``) are generalised to the nearest expressible marker.
    """
    if (min_occurs, max_occurs) == (1, 1):
        return ""
    if min_occurs == 0 and max_occurs == 1:
        return "?"
    if min_occurs == 0:
        return "*"
    return "+"


def _render_item(item: ContentItem) -> str:
    suffix = _dtd_occurrence(item.min_occurs, item.max_occurs)
    if isinstance(item, Particle):
        return f"{item.tag}{suffix}"
    return f"({'|'.join(item.alternatives)}){suffix}"


def render_dtd(schema: Schema) -> str:
    """Render a schema as DTD text (round-trippable via parse_dtd)."""
    lines: list[str] = [f"<!-- root element: {schema.root} -->"]
    ordered = [schema.root] + sorted(
        tag for tag in schema.declarations if tag != schema.root)
    for tag in ordered:
        decl = schema.declarations[tag]
        if decl.is_leaf:
            lines.append(f"<!ELEMENT {tag} (#PCDATA)>")
            leaf_type = decl.leaf_type or LeafType.STRING
            if leaf_type is not LeafType.STRING:
                lines.append(
                    f"<!-- wmxml:type tag={tag} type={leaf_type.value} -->")
        else:
            body = ", ".join(_render_item(item) for item in decl.content)
            lines.append(f"<!ELEMENT {tag} ({body})>")
        if decl.attributes:
            attr_lines = [f"<!ATTLIST {tag}"]
            for attr in decl.attributes:
                flag = "#REQUIRED" if attr.required else "#IMPLIED"
                attr_lines.append(f"  {attr.name} CDATA {flag}")
                if attr.type is not LeafType.STRING:
                    lines.append(
                        f"<!-- wmxml:type attr={tag}@{attr.name} "
                        f"type={attr.type.value} -->")
            lines.append("\n".join(attr_lines) + ">")
    return "\n".join(lines) + "\n"
