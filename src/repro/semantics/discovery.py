"""Mining candidate keys and functional dependencies from data.

The paper's workflow has the user "identify the important keys and FDs
from the data schema" (§4).  To make that step practical, WmXML's
reproduction includes a discovery pass that proposes candidates from the
shredded relation; the user confirms which are real semantics rather
than accidents of the sample.

Discovery operates on rows (see :mod:`repro.semantics.records`) so it is
organisation-independent: the same semantics are found in db1.xml and in
its reorganised db2.xml form.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.semantics.records import Row


@dataclass(frozen=True)
class CandidateKey:
    """A field set whose values are unique across entities."""

    fields: tuple[str, ...]
    support: int  # number of entities examined

    def __str__(self) -> str:
        return f"key({', '.join(self.fields)}) [support={self.support}]"


@dataclass(frozen=True)
class CandidateFD:
    """lhs -> rhs holding on every complete row, with support counts."""

    lhs: tuple[str, ...]
    rhs: str
    support: int        # complete bindings examined
    determined: int     # distinct lhs groups

    def is_trivial(self) -> bool:
        """True when every lhs group is a singleton (FD holds vacuously)."""
        return self.support == self.determined

    def __str__(self) -> str:
        lhs = ", ".join(self.lhs)
        return (f"fd({lhs} -> {self.rhs}) "
                f"[bindings={self.support}, groups={self.determined}]")


def _entity_values(rows: Sequence[Row], fields: tuple[str, ...]):
    """Per-entity value tuples (entities with missing fields skipped).

    Multi-valued fields make several rows share an entity; keys and FDs
    are entity-level semantics, so we collapse back to one binding per
    entity and skip entities where a field is not single-valued.
    """
    per_entity: dict[int, tuple] = {}
    ambiguous: set[int] = set()
    entities: dict[int, object] = {}
    for row in rows:
        if any(f not in row.values for f in fields):
            continue
        key = id(row.entity)
        entities[key] = row.entity
        values = row.key(fields)
        if key in per_entity and per_entity[key] != values:
            ambiguous.add(key)
        per_entity[key] = values
    return [
        values for key, values in per_entity.items() if key not in ambiguous
    ]


def discover_keys(
    rows: Sequence[Row],
    fields: Sequence[str],
    max_width: int = 2,
) -> list[CandidateKey]:
    """Minimal field sets (up to ``max_width``) unique across entities."""
    found: list[CandidateKey] = []
    minimal: list[tuple[str, ...]] = []
    for width in range(1, max_width + 1):
        for combo in combinations(fields, width):
            if any(set(m) <= set(combo) for m in minimal):
                continue  # superset of a smaller key is not minimal
            values = _entity_values(rows, combo)
            if not values:
                continue
            if len(set(values)) == len(values):
                minimal.append(combo)
                found.append(CandidateKey(combo, len(values)))
    return found


def discover_fds(
    rows: Sequence[Row],
    fields: Sequence[str],
    min_support: int = 2,
    include_trivial: bool = False,
) -> list[CandidateFD]:
    """Single-field-lhs FDs holding on every complete binding.

    ``min_support`` filters out dependencies observed on fewer bindings
    than that; ``include_trivial`` keeps FDs where no lhs value ever
    repeats (those carry no redundancy signal).
    """
    candidates: list[CandidateFD] = []
    for lhs_field in fields:
        for rhs_field in fields:
            if rhs_field == lhs_field:
                continue
            pairs = _entity_values(rows, (lhs_field, rhs_field))
            if len(pairs) < min_support:
                continue
            mapping: dict[str, str] = {}
            holds = True
            for lhs_value, rhs_value in pairs:
                expected = mapping.get(lhs_value)
                if expected is None:
                    mapping[lhs_value] = rhs_value
                elif expected != rhs_value:
                    holds = False
                    break
            if not holds:
                continue
            candidate = CandidateFD(
                (lhs_field,), rhs_field,
                support=len(pairs), determined=len(mapping))
            if candidate.is_trivial() and not include_trivial:
                continue
            candidates.append(candidate)
    return candidates
