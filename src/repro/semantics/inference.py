"""Schema inference from example documents.

The WmXML user "identif[ies] the important keys and FDs from the data
schema" (paper §4) — but real feeds often arrive without a schema, so
the system ships an inference pass that derives a workable
:class:`~repro.semantics.schema.Schema` from one document:

* the child sequence of every element instance is generalised into a
  sequence of particles with min/max occurrence bounds when all
  instances agree on child ordering, and into a repeated choice group
  otherwise;
* leaf types are inferred as the most specific type accepted by every
  observed value (integer < decimal < string, year/date/base64 checked
  on the side);
* attributes are declared required when present on every instance.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional, Union

from repro.semantics.schema import (
    AttributeDecl,
    Choice,
    ElementDecl,
    LeafType,
    Particle,
    Schema,
)
from repro.xmlmodel.tree import Document, Element

#: Types tried most-specific-first for leaf inference.
_SPECIFICITY = (
    LeafType.YEAR,
    LeafType.INTEGER,
    LeafType.DECIMAL,
    LeafType.DATE,
    LeafType.BASE64,
    LeafType.STRING,
)


def infer_leaf_type(values: Iterable[str]) -> LeafType:
    """Most specific :class:`LeafType` accepting every value."""
    candidates = list(_SPECIFICITY)
    saw_any = False
    for value in values:
        saw_any = True
        candidates = [t for t in candidates if t.accepts(value)]
        if candidates == [LeafType.STRING]:
            return LeafType.STRING
    if not saw_any or not candidates:
        return LeafType.STRING
    return candidates[0]


def infer_schema(document: Union[Document, Element]) -> Schema:
    """Derive a schema that the given document validates against."""
    root = document.root if isinstance(document, Document) else document

    child_sequences: dict[str, list[list[str]]] = defaultdict(list)
    leaf_values: dict[str, list[str]] = defaultdict(list)
    is_composite: dict[str, bool] = defaultdict(bool)
    attr_values: dict[str, dict[str, list[str]]] = defaultdict(
        lambda: defaultdict(list))
    instance_counts: dict[str, int] = defaultdict(int)

    for element in root.iter_elements():
        tag = element.tag
        instance_counts[tag] += 1
        children = element.child_elements()
        child_sequences[tag].append([child.tag for child in children])
        if children:
            is_composite[tag] = True
        else:
            leaf_values[tag].append(element.text)
        for name, value in element.attributes.items():
            attr_values[tag][name].append(value)

    declarations = []
    for tag, sequences in child_sequences.items():
        attributes = tuple(
            AttributeDecl(
                name,
                type=infer_leaf_type(values),
                required=len(values) == instance_counts[tag],
            )
            for name, values in sorted(attr_values[tag].items())
        )
        if not is_composite[tag]:
            declarations.append(ElementDecl(
                tag,
                leaf_type=infer_leaf_type(leaf_values[tag]),
                attributes=attributes,
            ))
            continue
        content = _infer_content(sequences)
        declarations.append(ElementDecl(
            tag, content=content, attributes=attributes))
    return Schema(root.tag, declarations)


def _infer_content(sequences: list[list[str]]) -> tuple:
    """Generalise observed child-tag sequences into a content model."""
    ordered = _common_order(sequences)
    if ordered is None or any(
            not _contiguous(sequences, tag) for tag in ordered):
        # Orders conflict between instances (or a tag repeats
        # non-adjacently): fall back to a repeated choice over every
        # observed tag, which accepts any interleaving.
        tags = sorted({tag for seq in sequences for tag in seq})
        if len(tags) == 1:
            return (Particle(tags[0], 0, None),)
        return (Choice(tuple(tags), 0, None),)

    particles = []
    for tag in ordered:
        counts = [seq.count(tag) for seq in sequences]
        min_occurs = min(counts)
        max_occurs: Optional[int] = max(counts)
        if max_occurs > 1:
            max_occurs = None  # generalise "several" to unbounded
        particles.append(Particle(tag, min_occurs, max_occurs))
    return tuple(particles)


def _common_order(sequences: list[list[str]]) -> Optional[list[str]]:
    """A tag order consistent with every sequence, or None.

    Builds the precedence relation over distinct tags and topologically
    sorts it; a cycle means the instances disagree on ordering.
    """
    tags: list[str] = []
    for seq in sequences:
        for tag in seq:
            if tag not in tags:
                tags.append(tag)
    precedes: dict[str, set[str]] = {tag: set() for tag in tags}
    for seq in sequences:
        distinct = list(dict.fromkeys(seq))
        for index, earlier in enumerate(distinct):
            for later in distinct[index + 1:]:
                precedes[earlier].add(later)
    # Kahn topological sort, preferring first-seen order for stability.
    in_degree = {tag: 0 for tag in tags}
    for earlier, laters in precedes.items():
        for later in laters:
            if earlier in precedes[later]:
                return None  # two tags appear in both orders
            in_degree[later] += 1
    order: list[str] = []
    ready = [tag for tag in tags if in_degree[tag] == 0]
    while ready:
        tag = ready.pop(0)
        order.append(tag)
        for later in precedes[tag]:
            in_degree[later] -= 1
            if in_degree[later] == 0:
                ready.append(later)
    if len(order) != len(tags):
        return None
    return order


def _contiguous(sequences: list[list[str]], tag: str) -> bool:
    """True when occurrences of ``tag`` are adjacent in every sequence."""
    for seq in sequences:
        positions = [index for index, value in enumerate(seq) if value == tag]
        if positions and positions[-1] - positions[0] != len(positions) - 1:
            return False
    return True
