"""XML functional dependencies (paper §2.3).

An FD is scoped: within the bindings produced by ``scope`` (an absolute
XPath selecting entity nodes), the values of the ``lhs`` field paths
determine the value of the ``rhs`` field path.  The paper's example is
``editor -> publisher`` over ``/db/book``: every book edited by the same
editor names the same publisher.

FDs serve two purposes in WmXML:

* **redundancy detection** (challenge C of the paper): the rhs nodes of
  bindings sharing an lhs value are *duplicates* — they must carry the
  same watermark bit, or an adversary erases the mark by making all
  duplicates identical; :meth:`XMLFD.redundancy_groups` surfaces these
  groups to the identity layer;
* **constraint checking**: :meth:`XMLFD.check` reports violations, which
  is also how the usability evaluator notices when an attack broke the
  data's semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.semantics.errors import ConstraintError
from repro.xmlmodel.tree import Document, Element
from repro.xpath import NodeLike, compile_xpath, node_string_value

LHSValues = tuple[str, ...]


@dataclass(frozen=True)
class FDViolation:
    """Two bindings agree on the lhs but disagree on the rhs."""

    fd: str
    lhs: LHSValues
    first_path: str
    second_path: str
    first_value: str
    second_value: str

    def __str__(self) -> str:
        return (
            f"[{self.fd}] lhs={self.lhs!r}: "
            f"{self.first_path}={self.first_value!r} vs "
            f"{self.second_path}={self.second_value!r}")


@dataclass(frozen=True)
class RedundancyGroup:
    """The rhs nodes of all bindings sharing one lhs value.

    Groups with more than one member are the redundancy the paper warns
    about: they must be watermarked identically.
    """

    fd: str
    lhs: LHSValues
    nodes: tuple[NodeLike, ...]

    @property
    def values(self) -> tuple[str, ...]:
        return tuple(node_string_value(node) for node in self.nodes)

    def is_consistent(self) -> bool:
        """True when every duplicate currently holds the same value."""
        return len(set(self.values)) <= 1

    def __len__(self) -> int:
        return len(self.nodes)


@dataclass(frozen=True)
class XMLFD:
    """A scoped functional dependency ``lhs -> rhs``."""

    name: str
    scope: str
    lhs: tuple[str, ...]
    rhs: str

    def __post_init__(self) -> None:
        if not self.lhs:
            raise ConstraintError(f"FD {self.name!r} needs at least one lhs field")
        if not self.scope.startswith("/"):
            raise ConstraintError(
                f"FD {self.name!r}: scope must be an absolute path")
        if self.rhs in self.lhs:
            raise ConstraintError(f"FD {self.name!r}: rhs appears in lhs")

    # -- binding extraction ------------------------------------------------------------

    def bindings(
        self, document: Union[Document, Element]
    ) -> list[tuple[LHSValues, NodeLike]]:
        """(lhs values, rhs node) for every complete scope binding.

        Bindings with missing or multi-valued fields are skipped — they
        cannot participate in the dependency.
        """
        results: list[tuple[LHSValues, NodeLike]] = []
        lhs_queries = [compile_xpath(path) for path in self.lhs]
        rhs_query = compile_xpath(self.rhs)
        for scope_node in compile_xpath(self.scope).select(document):
            lhs_values: list[str] = []
            complete = True
            for query in lhs_queries:
                nodes = query.select(scope_node)
                if len(nodes) != 1:
                    complete = False
                    break
                lhs_values.append(node_string_value(nodes[0]).strip())
            if not complete:
                continue
            rhs_nodes = rhs_query.select(scope_node)
            if len(rhs_nodes) != 1:
                continue
            results.append((tuple(lhs_values), rhs_nodes[0]))
        return results

    # -- checking ------------------------------------------------------------

    def check(self, document: Union[Document, Element]) -> list[FDViolation]:
        """All violations of the dependency in ``document``."""
        violations: list[FDViolation] = []
        first_seen: dict[LHSValues, NodeLike] = {}
        for lhs_values, rhs_node in self.bindings(document):
            rhs_value = node_string_value(rhs_node)
            if lhs_values not in first_seen:
                first_seen[lhs_values] = rhs_node
                continue
            reference = first_seen[lhs_values]
            reference_value = node_string_value(reference)
            if reference_value != rhs_value:
                violations.append(FDViolation(
                    self.name, lhs_values,
                    _node_path(reference), _node_path(rhs_node),
                    reference_value, rhs_value))
        return violations

    def holds(self, document: Union[Document, Element]) -> bool:
        """True when the FD has no violations."""
        return not self.check(document)

    # -- redundancy ------------------------------------------------------------

    def redundancy_groups(
        self, document: Union[Document, Element]
    ) -> list[RedundancyGroup]:
        """Group the rhs nodes by lhs value (every group, even singletons).

        The identity layer gives all members of one group the same
        identifier, hence the same watermark bit.
        """
        groups: dict[LHSValues, list[NodeLike]] = {}
        for lhs_values, rhs_node in self.bindings(document):
            groups.setdefault(lhs_values, []).append(rhs_node)
        return [
            RedundancyGroup(self.name, lhs_values, tuple(nodes))
            for lhs_values, nodes in groups.items()
        ]

    def duplicated_groups(
        self, document: Union[Document, Element]
    ) -> list[RedundancyGroup]:
        """Only the groups with two or more duplicate rhs nodes."""
        return [g for g in self.redundancy_groups(document) if len(g) > 1]

    def render(self) -> str:
        lhs = ", ".join(self.lhs)
        return f"fd {self.name}: {self.scope}: [{lhs}] -> {self.rhs}"


def _node_path(node: NodeLike) -> str:
    from repro.xpath.values import AttributeNode

    if isinstance(node, AttributeNode):
        return node.path()
    if isinstance(node, Element):
        return node.path()
    parent = node.parent
    return f"{parent.path()}/text()" if parent is not None else "text()"
