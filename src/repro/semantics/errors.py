"""Exceptions for the semantics layer (schema, keys, FDs, records)."""

from __future__ import annotations

from repro.errors import WmXMLError


class SemanticsError(WmXMLError):
    """Base class for semantics-layer errors."""

    code = "semantics-error"


class SchemaError(SemanticsError):
    """A schema definition is internally inconsistent."""

    code = "schema-error"


class SchemaValidationError(SemanticsError):
    """A document failed schema validation (raised by assert_valid)."""

    code = "schema-validation"

    def __init__(self, violations) -> None:
        lines = "\n".join(f"  - {v}" for v in violations[:20])
        more = "" if len(violations) <= 20 else f"\n  ... {len(violations) - 20} more"
        super().__init__(f"{len(violations)} schema violation(s):\n{lines}{more}")
        self.violations = list(violations)


class ConstraintError(SemanticsError):
    """A key or functional-dependency definition is malformed."""

    code = "constraint-error"


class RecordError(SemanticsError):
    """Shredding or re-nesting failed (bad field spec, lossy nesting...)."""

    code = "record-mismatch"
