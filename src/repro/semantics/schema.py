"""DTD-like schema model for data-centric XML.

WmXML's workflow starts with "specify a schema and validate the XML data
according to the schema" (paper §2.2, step 1).  This module provides the
schema model; :mod:`repro.semantics.validator` checks documents against
it and :mod:`repro.semantics.inference` derives a schema from an example
document.

The model covers what data-centric XML needs:

* element declarations with a content model that is either a typed leaf
  or a sequence of particles (each particle a tag or a choice group,
  with ``min_occurs``/``max_occurs`` bounds),
* attribute declarations with types and required/optional flags,
* leaf types: string, integer, decimal, date (ISO ``YYYY-MM-DD``), year
  and base64 binary (the payload type of the image watermark plug-in).

Content-model matching compiles the model to a regular expression over a
per-schema tag alphabet, which keeps the validator simple and correct
for the sequence/choice/occurrence language.
"""

from __future__ import annotations

import base64
import binascii
import enum
import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.semantics.errors import SchemaError


class LeafType(enum.Enum):
    """Data type of a leaf element's text or an attribute value."""

    STRING = "string"
    INTEGER = "integer"
    DECIMAL = "decimal"
    DATE = "date"
    YEAR = "year"
    BASE64 = "base64"

    def accepts(self, value: str) -> bool:
        """True when ``value`` is a legal lexical form of this type."""
        checker = _TYPE_CHECKERS[self]
        return checker(value)


_DATE_RE = re.compile(r"^\d{4}-\d{2}-\d{2}$")
_YEAR_RE = re.compile(r"^\d{4}$")
_DECIMAL_RE = re.compile(r"^[+-]?(\d+\.?\d*|\.\d+)$")
_INTEGER_RE = re.compile(r"^[+-]?\d+$")


def _is_base64(value: str) -> bool:
    stripped = value.strip()
    if len(stripped) % 4 != 0:
        return False
    try:
        base64.b64decode(stripped, validate=True)
        return True
    except (binascii.Error, ValueError):
        return False


def _is_date(value: str) -> bool:
    if not _DATE_RE.match(value):
        return False
    year, month, day = (int(part) for part in value.split("-"))
    return 1 <= month <= 12 and 1 <= day <= 31 and year >= 1


_TYPE_CHECKERS = {
    LeafType.STRING: lambda value: True,
    LeafType.INTEGER: lambda value: bool(_INTEGER_RE.match(value.strip())),
    LeafType.DECIMAL: lambda value: bool(_DECIMAL_RE.match(value.strip())),
    LeafType.DATE: lambda value: _is_date(value.strip()),
    LeafType.YEAR: lambda value: bool(_YEAR_RE.match(value.strip())),
    LeafType.BASE64: _is_base64,
}

#: Sentinel for "unbounded" occurrence.
UNBOUNDED: Optional[int] = None


@dataclass(frozen=True)
class Particle:
    """One item in a sequence content model: a tag with occurrence bounds."""

    tag: str
    min_occurs: int = 1
    max_occurs: Optional[int] = 1  # None = unbounded

    def __post_init__(self) -> None:
        if self.min_occurs < 0:
            raise SchemaError(f"min_occurs must be >= 0 for {self.tag!r}")
        if self.max_occurs is not None and self.max_occurs < self.min_occurs:
            raise SchemaError(f"max_occurs < min_occurs for {self.tag!r}")

    def render(self) -> str:
        """DTD-style rendering, e.g. ``author+`` or ``editor?``."""
        suffix = _occurrence_suffix(self.min_occurs, self.max_occurs)
        return f"{self.tag}{suffix}"


@dataclass(frozen=True)
class Choice:
    """A choice group inside a sequence: one of ``alternatives`` tags.

    ``min_occurs``/``max_occurs`` bound the number of repetitions of the
    whole group, so ``Choice(('author', 'writer'), 1, None)`` renders as
    ``(author|writer)+``.
    """

    alternatives: tuple[str, ...]
    min_occurs: int = 1
    max_occurs: Optional[int] = 1

    def __post_init__(self) -> None:
        if len(self.alternatives) < 2:
            raise SchemaError("a choice group needs at least two alternatives")
        if self.min_occurs < 0:
            raise SchemaError("min_occurs must be >= 0")
        if self.max_occurs is not None and self.max_occurs < self.min_occurs:
            raise SchemaError("max_occurs < min_occurs")

    def render(self) -> str:
        suffix = _occurrence_suffix(self.min_occurs, self.max_occurs)
        return f"({'|'.join(self.alternatives)}){suffix}"


def _occurrence_suffix(min_occurs: int, max_occurs: Optional[int]) -> str:
    if (min_occurs, max_occurs) == (1, 1):
        return ""
    if (min_occurs, max_occurs) == (0, 1):
        return "?"
    if (min_occurs, max_occurs) == (1, None):
        return "+"
    if (min_occurs, max_occurs) == (0, None):
        return "*"
    upper = "" if max_occurs is None else str(max_occurs)
    return f"{{{min_occurs},{upper}}}"


ContentItem = Union[Particle, Choice]


@dataclass(frozen=True)
class AttributeDecl:
    """Declaration of one attribute on an element."""

    name: str
    type: LeafType = LeafType.STRING
    required: bool = True

    def render(self) -> str:
        flag = "#REQUIRED" if self.required else "#IMPLIED"
        return f"{self.name} {self.type.value} {flag}"


@dataclass(frozen=True)
class ElementDecl:
    """Declaration of one element.

    Exactly one of the following shapes:

    * leaf: ``leaf_type`` is set, ``content`` is empty — the element
      carries typed text only;
    * composite: ``content`` is a sequence of particles/choice groups —
      the element contains child elements (no mixed content).
    """

    tag: str
    content: tuple[ContentItem, ...] = ()
    leaf_type: Optional[LeafType] = None
    attributes: tuple[AttributeDecl, ...] = ()

    def __post_init__(self) -> None:
        if self.leaf_type is not None and self.content:
            raise SchemaError(
                f"element {self.tag!r} cannot be both leaf and composite")
        names = [attr.name for attr in self.attributes]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate attribute declaration on {self.tag!r}")

    @property
    def is_leaf(self) -> bool:
        return self.leaf_type is not None or not self.content

    def child_tags(self) -> set[str]:
        """Every tag that may appear as a direct child."""
        tags: set[str] = set()
        for item in self.content:
            if isinstance(item, Particle):
                tags.add(item.tag)
            else:
                tags.update(item.alternatives)
        return tags

    def attribute(self, name: str) -> Optional[AttributeDecl]:
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    def render(self) -> str:
        """Human-readable one-line rendering of the declaration."""
        if self.is_leaf:
            kind = (self.leaf_type or LeafType.STRING).value
            body = f"#{kind}"
        else:
            body = ", ".join(item.render() for item in self.content)
        attrs = ""
        if self.attributes:
            attrs = " @[" + ", ".join(a.render() for a in self.attributes) + "]"
        return f"{self.tag} ({body}){attrs}"


class Schema:
    """A complete document schema: root tag plus element declarations."""

    def __init__(self, root: str, declarations: Iterable[ElementDecl]) -> None:
        self.root = root
        self.declarations: dict[str, ElementDecl] = {}
        for decl in declarations:
            if decl.tag in self.declarations:
                raise SchemaError(f"duplicate declaration for {decl.tag!r}")
            self.declarations[decl.tag] = decl
        if root not in self.declarations:
            raise SchemaError(f"root element {root!r} is not declared")
        self._check_references()
        self._patterns: dict[str, re.Pattern[str]] = {}
        self._alphabet: dict[str, str] = {}

    def _check_references(self) -> None:
        for decl in self.declarations.values():
            for tag in decl.child_tags():
                if tag not in self.declarations:
                    raise SchemaError(
                        f"element {decl.tag!r} references undeclared {tag!r}")

    def declaration(self, tag: str) -> Optional[ElementDecl]:
        """The declaration for ``tag``, or None when undeclared."""
        return self.declarations.get(tag)

    # -- content-model matching ---------------------------------------------------

    def _symbol(self, tag: str) -> str:
        """Single-character alias for ``tag`` in content-model regexes."""
        symbol = self._alphabet.get(tag)
        if symbol is None:
            # Start at '0' and walk the BMP; schemas are small so this
            # never collides with regex metacharacters by construction.
            symbol = chr(0xE000 + len(self._alphabet))
            self._alphabet[tag] = symbol
        return symbol

    def content_pattern(self, tag: str) -> re.Pattern[str]:
        """Compiled regex accepting legal child-tag sequences of ``tag``."""
        pattern = self._patterns.get(tag)
        if pattern is not None:
            return pattern
        decl = self.declarations[tag]
        pieces: list[str] = []
        for item in decl.content:
            if isinstance(item, Particle):
                atom = self._symbol(item.tag)
            else:
                atom = "(?:" + "|".join(
                    self._symbol(alternative)
                    for alternative in item.alternatives) + ")"
            pieces.append(atom + _regex_bounds(item.min_occurs, item.max_occurs))
        pattern = re.compile("^" + "".join(pieces) + "$")
        self._patterns[tag] = pattern
        return pattern

    def matches_children(self, tag: str, child_tags: Sequence[str]) -> bool:
        """True when ``child_tags`` is a legal child sequence for ``tag``."""
        decl = self.declarations.get(tag)
        if decl is None:
            return False
        if decl.is_leaf:
            return not child_tags
        known = decl.child_tags()
        if any(child not in known for child in child_tags):
            return False
        pattern = self.content_pattern(tag)
        encoded = "".join(self._symbol(child) for child in child_tags)
        return pattern.match(encoded) is not None

    def render(self) -> str:
        """Multi-line human-readable schema listing."""
        lines = [f"root {self.root}"]
        for tag in sorted(self.declarations):
            lines.append(self.declarations[tag].render())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Schema(root={self.root!r}, elements={len(self.declarations)})"


def _regex_bounds(min_occurs: int, max_occurs: Optional[int]) -> str:
    if (min_occurs, max_occurs) == (1, 1):
        return ""
    if (min_occurs, max_occurs) == (0, 1):
        return "?"
    if (min_occurs, max_occurs) == (1, None):
        return "+"
    if (min_occurs, max_occurs) == (0, None):
        return "*"
    upper = "" if max_occurs is None else str(max_occurs)
    return f"{{{min_occurs},{upper}}}"


def leaf(tag: str, leaf_type: LeafType = LeafType.STRING,
         attributes: Sequence[AttributeDecl] = ()) -> ElementDecl:
    """Convenience constructor for a leaf element declaration."""
    return ElementDecl(tag, leaf_type=leaf_type, attributes=tuple(attributes))


def composite(tag: str, content: Sequence[ContentItem],
              attributes: Sequence[AttributeDecl] = ()) -> ElementDecl:
    """Convenience constructor for a composite element declaration."""
    return ElementDecl(tag, content=tuple(content),
                       attributes=tuple(attributes))
