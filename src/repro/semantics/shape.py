"""Document shapes: a nesting spec plus the record spec it induces.

A :class:`DocumentShape` is WmXML's formalisation of "a schema mapping"
(paper Figure 2): two shapes over the same field vocabulary describe two
organisations of the same logical relation.  Shredding with one shape
and building with another *is* the reorganisation of Figure 1; compiling
a logical query against another shape *is* the query rewriting the
decoder performs.

The record spec is derived from the nesting:

* the entity path is the chain of level tags under the root,
* a field placed as an attribute/text at level ``i`` is read through
  ``../`` hops from the entity,
* leaf placements are declared multi-valued (safe generalisation — a
  single-valued leaf behaves identically under the cross-product
  expansion).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence, Union

from repro.perf.profiler import profiled
from repro.semantics.errors import RecordError
from repro.semantics.nesting import LevelSpec, NestingSpec
from repro.semantics.records import FieldSpec, RecordSpec, Row
from repro.xmlmodel.tree import Document, Element, Text
from repro.xpath.values import AttributeNode, NodeLike

#: Kinds of field placement within a shape.
ATTRIBUTE = "attribute"
LEAF = "leaf"
TEXT = "text"


@dataclass(frozen=True)
class FieldPlacement:
    """Where one field lives inside a shape.

    ``level_index`` is 0-based into ``nesting.levels``; ``name`` is the
    attribute name or leaf tag (None for text placements).
    """

    field: str
    level_index: int
    kind: str  # ATTRIBUTE | LEAF | TEXT
    name: Optional[str]


@dataclass(frozen=True)
class DocumentShape:
    """A named document organisation over a field vocabulary."""

    name: str
    nesting: NestingSpec

    # -- placements ------------------------------------------------------------

    @cached_property
    def placements(self) -> dict[str, FieldPlacement]:
        """field -> placement; the *shallowest* placement wins on ties."""
        table: dict[str, FieldPlacement] = {}
        for index, level in enumerate(self.nesting.levels):
            for attr_name, field_name in level.attributes:
                table.setdefault(field_name, FieldPlacement(
                    field_name, index, ATTRIBUTE, attr_name))
            if level.text_field is not None:
                table.setdefault(level.text_field, FieldPlacement(
                    level.text_field, index, TEXT, None))
            for leaf_tag, field_name in level.leaves:
                table.setdefault(field_name, FieldPlacement(
                    field_name, index, LEAF, leaf_tag))
        return table

    def placement(self, field_name: str) -> FieldPlacement:
        """Placement of ``field_name``; raises when the shape drops it."""
        placement = self.placements.get(field_name)
        if placement is None:
            raise RecordError(
                f"shape {self.name!r} does not materialise field "
                f"{field_name!r}")
        return placement

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(self.placements)

    # -- induced record spec ------------------------------------------------------------

    @cached_property
    def record_spec(self) -> RecordSpec:
        """The record spec that shreds documents of this shape."""
        levels = self.nesting.levels
        entity_depth = len(levels)
        entity_path = "/" + "/".join(
            [self.nesting.root] + [level.tag for level in levels])
        fields: list[FieldSpec] = []
        for field_name, placement in self.placements.items():
            hops = entity_depth - 1 - placement.level_index
            prefix = "../" * hops
            if placement.kind == ATTRIBUTE:
                path = f"{prefix}@{placement.name}"
                multi = False
            elif placement.kind == TEXT:
                path = f"{prefix}text()" if prefix else "text()"
                multi = False
            else:
                path = f"{prefix}{placement.name}"
                multi = True
            fields.append(FieldSpec(field_name, path, multi=multi))
        return RecordSpec(entity_path, tuple(fields))

    # -- shredding / building ------------------------------------------------------------

    @cached_property
    def _shred_plan(self) -> tuple[tuple[FieldSpec, str, Optional[str], int], ...]:
        """Per-field access plan: (spec, kind, name, parent hops).

        Aligned with ``record_spec.fields`` order so the fast shredder
        expands multi-valued fields in exactly the order the compiled
        XPath path would, keeping row order bit-identical.
        """
        entity_depth = len(self.nesting.levels)
        plan = []
        for spec in self.record_spec.fields:
            placement = self.placements[spec.name]
            hops = entity_depth - 1 - placement.level_index
            plan.append((spec, placement.kind, placement.name, hops))
        return tuple(plan)

    @profiled("shape.shred")
    def shred(self, document: Union[Document, Element]) -> list[Row]:
        """Flatten a document of this shape into logical rows.

        Single-pass tree-walk shredder: entities are found by walking
        the level-tag chain through the child-tag indexes, and each
        field is read through direct parent hops — no XPath evaluation
        per entity.  Produces exactly the rows
        ``record_spec.shred(document)`` would (asserted by the test
        suite), in the same order.
        """
        root = document.root if isinstance(document, Document) else document.root()
        if not isinstance(root, Element) or root.tag != self.nesting.root:
            return []
        level_tags = self.level_tags()
        rows: list[Row] = []
        frontier: list[Element] = [root]
        for tag in level_tags:
            frontier = [
                child for parent in frontier
                for child in parent.children_by_tag(tag)
            ]
        for entity in frontier:
            rows.extend(self._shred_entity_fast(entity))
        return rows

    def _shred_entity_fast(self, entity: Element):
        spec_for_errors = self.record_spec
        single_values: dict[str, str] = {}
        single_nodes: dict[str, NodeLike] = {}
        multi_fields: list[tuple[FieldSpec, list[NodeLike]]] = []
        for spec, kind, name, hops in self._shred_plan:
            owner = entity
            for _ in range(hops):
                owner = owner.parent
            if kind == ATTRIBUTE:
                value = owner.attributes.get(name)
                if value is None:
                    continue  # optional field absent on this entity
                single_values[spec.name] = value.strip()
                single_nodes[spec.name] = AttributeNode(owner, name)
            elif kind == TEXT:
                texts = [child for child in owner.children
                         if isinstance(child, Text)]
                if not texts:
                    continue
                if len(texts) > 1:
                    raise RecordError(
                        f"field {spec.name!r} is single-valued but "
                        f"{entity.path()} has {len(texts)} matches; "
                        "declare it multi=True")
                single_values[spec.name] = texts[0].value.strip()
                single_nodes[spec.name] = texts[0]
            else:  # LEAF (multi-valued)
                multi_fields.append(
                    (spec, list(owner.children_by_tag(name))))
        if not multi_fields:
            return [Row(entity, dict(single_values), dict(single_nodes))]
        return spec_for_errors._expand_multi(
            entity, single_values, single_nodes, multi_fields)

    def build(self, rows: Sequence[Row]) -> Document:
        """Materialise rows as a document of this shape."""
        return self.nesting.build(rows)

    def level_tags(self) -> tuple[str, ...]:
        return tuple(level.tag for level in self.nesting.levels)

    def dropped_fields(self, other: "DocumentShape") -> list[str]:
        """Fields this shape materialises that ``other`` would lose."""
        return sorted(set(self.field_names) - set(other.field_names))

    # -- serialisation ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Declarative form of the shape (part of the scheme format)."""
        return {"name": self.name, "nesting": self.nesting.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "DocumentShape":
        return cls(data["name"], NestingSpec.from_dict(data["nesting"]))

    def __repr__(self) -> str:
        chain = "/".join((self.nesting.root,) + self.level_tags())
        return f"DocumentShape({self.name!r}, {chain})"


def shape(
    name: str,
    root: str,
    levels: Sequence[LevelSpec],
) -> DocumentShape:
    """Convenience constructor for a :class:`DocumentShape`."""
    return DocumentShape(name, NestingSpec(root, tuple(levels)))


def level(
    tag: str,
    group_by: Sequence[str],
    attributes: Optional[dict[str, str]] = None,
    leaves: Optional[dict[str, str]] = None,
    text_field: Optional[str] = None,
) -> LevelSpec:
    """Convenience constructor for a :class:`LevelSpec`.

    ``attributes`` maps attribute name -> field; ``leaves`` maps child
    leaf tag -> field.
    """
    return LevelSpec(
        tag=tag,
        group_by=tuple(group_by),
        attributes=tuple((attributes or {}).items()),
        leaves=tuple((leaves or {}).items()),
        text_field=text_field,
    )
