"""XML key constraints (paper §2.3).

A key follows the Buneman-style (context, target, fields) form:

* ``context`` — an absolute XPath selecting the context nodes
  (e.g. ``/db``),
* ``target`` — a relative path from each context node to the target
  nodes the key identifies (e.g. ``book``),
* ``fields`` — relative paths from each target node whose combined
  string-values must uniquely identify the target within its context
  (e.g. ``('title',)``; attribute fields use ``@name`` syntax).

In the paper's running example, ``title`` is the key of ``book`` —
"the title of each publication is usually unique".  Identity queries
are built from these key values (see :mod:`repro.core.identity`), which
is what makes them survive reorganisation: key values travel with the
data while physical positions do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.semantics.errors import ConstraintError
from repro.xmlmodel.tree import Document, Element
from repro.xpath import NodeLike, compile_xpath, node_string_value

KeyTuple = tuple[str, ...]


@dataclass(frozen=True)
class KeyViolation:
    """A key violation: duplicate or ill-formed key values."""

    key: str
    path: str
    message: str

    def __str__(self) -> str:
        return f"[{self.key}] {self.path}: {self.message}"


@dataclass(frozen=True)
class XMLKey:
    """A key constraint ``(context, target, fields)`` with a name."""

    name: str
    context: str
    target: str
    fields: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.fields:
            raise ConstraintError(f"key {self.name!r} needs at least one field")
        if not self.context.startswith("/"):
            raise ConstraintError(
                f"key {self.name!r}: context must be an absolute path")
        if self.target.startswith("/"):
            raise ConstraintError(
                f"key {self.name!r}: target must be a relative path")

    # -- evaluation ------------------------------------------------------------

    def target_nodes(self, document: Union[Document, Element]) -> list[Element]:
        """All target nodes in document order."""
        nodes: list[Element] = []
        target_query = compile_xpath(self.target)
        for context_node in compile_xpath(self.context).select(document):
            for node in target_query.select(context_node):
                if isinstance(node, Element):
                    nodes.append(node)
        return nodes

    def key_of(self, target: Element) -> Optional[KeyTuple]:
        """Key value tuple for one target node.

        Returns None when any field is missing or has multiple values —
        such a node is not identifiable by this key.
        """
        values: list[str] = []
        for field_path in self.fields:
            nodes = compile_xpath(field_path).select(target)
            if len(nodes) != 1:
                return None
            values.append(node_string_value(nodes[0]).strip())
        return tuple(values)

    def index(self, document: Union[Document, Element]) -> dict[KeyTuple, Element]:
        """Map key tuples to target nodes; later duplicates are dropped."""
        table: dict[KeyTuple, Element] = {}
        for node in self.target_nodes(document):
            key = self.key_of(node)
            if key is not None and key not in table:
                table[key] = node
        return table

    def check(self, document: Union[Document, Element]) -> list[KeyViolation]:
        """All violations of this key in ``document``."""
        violations: list[KeyViolation] = []
        target_query = compile_xpath(self.target)
        for context_node in compile_xpath(self.context).select(document):
            seen: dict[KeyTuple, Element] = {}
            for node in target_query.select(context_node):
                if not isinstance(node, Element):
                    continue
                key = self.key_of(node)
                if key is None:
                    violations.append(KeyViolation(
                        self.name, node.path(),
                        "key field missing or multi-valued"))
                    continue
                if key in seen:
                    violations.append(KeyViolation(
                        self.name, node.path(),
                        f"duplicate key {key!r} "
                        f"(first at {seen[key].path()})"))
                else:
                    seen[key] = node
        return violations

    def holds(self, document: Union[Document, Element]) -> bool:
        """True when the key has no violations in ``document``."""
        return not self.check(document)

    def render(self) -> str:
        fields = ", ".join(self.fields)
        return f"key {self.name}: ({self.context}, {self.target}, [{fields}])"
