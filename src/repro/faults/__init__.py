"""repro.faults — deterministic, seedable fault injection.

The WmXML stack sits beside an XML database, and the north star
("heavy traffic from millions of users") makes partial failure the
normal case: workers die mid-chunk, SQLite writes tear under a power
cut, a daemon is SIGTERM'd with requests in flight.  This package puts
**named fault points** at exactly those seams so every failure mode is
a repeatable experiment instead of a production surprise::

    from repro import faults

    with faults.injected("registry.sqlite.commit", "raise",
                         error="sqlite"):
        system.embed(...)          # the append fails like a disk would

Host modules register their seams at import time
(:func:`register_fault_point`) and call :func:`fault_point` inline.
Disarmed — the only state production ever runs in — the hook is a
single falsy dict check, so the hot paths pay nothing.

Arming
------

* programmatically: :func:`arm` / :func:`disarm` / :func:`injected`
* from the environment: ``WMXML_FAULTS="point=mode[:k=v...][,...]"``
  parsed at import, which is how the chaos-smoke CI job arms a real
  ``wmxml serve`` subprocess, e.g.::

      WMXML_FAULTS="pool.chunk=exit:times=1" wmxml serve ...

Modes
-----

``raise``
    Raise an error at the seam.  ``error`` picks what: ``"fault"``
    (:class:`FaultInjectedError`, the default), ``"os"`` (an
    :class:`OSError`), ``"sqlite"`` (``sqlite3.OperationalError`` —
    what a torn disk actually raises inside the registry), or any
    exception instance/class you pass programmatically.
``delay``
    Sleep ``ms`` milliseconds, then continue (slow-disk / slow-request
    simulation; what the drain-on-SIGTERM tests use).
``corrupt``
    Pass the seam's value through a corruptor (default: flip the last
    character/byte/bit) and continue — e.g. a ledger seal that no
    longer verifies.
``exit``
    ``os._exit(1)`` — the kill -9 simulation.  Scoped to worker
    processes by default (``scope="worker"``): a fault armed in the
    parent fires only in processes forked *after* arming, so the
    parent's own serial fallback path survives the sweep.

Determinism
-----------

Every spec is deterministic by construction: ``times=N`` fires the
first N hits then disarms, ``after=K`` skips the first K hits, and a
probabilistic ``p`` draws from ``random.Random(seed)`` — same seed,
same firing pattern.  Counters are per-process (workers inherit the
armed state and the counter at fork), so a sweep's behaviour is a pure
function of the spec.
"""

from __future__ import annotations

import os
import random
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

from repro.errors import WmXMLError

__all__ = [
    "FaultInjectedError",
    "FaultSpec",
    "arm",
    "arm_from_env",
    "armed",
    "disarm",
    "fault_point",
    "fault_points",
    "injected",
    "register_fault_point",
]

#: Environment variable the chaos-smoke harness arms daemons through.
FAULTS_ENV = "WMXML_FAULTS"

#: Accepted ``mode`` values of a :class:`FaultSpec`.
MODES = ("raise", "delay", "corrupt", "exit")


class FaultInjectedError(WmXMLError):
    """The default error a ``raise``-mode fault point raises."""

    code = "fault-injected"


#: Named error kinds an env-armed ``raise`` fault can pick from —
#: the exceptions the hardened seams actually defend against.
ERROR_KINDS: dict[str, Callable[[str], BaseException]] = {
    "fault": lambda point: FaultInjectedError(
        f"injected fault at {point}"),
    "os": lambda point: OSError(f"injected I/O fault at {point}"),
    "sqlite": lambda point: sqlite3.OperationalError(
        f"injected disk I/O error at {point}"),
}


def _flip(value):
    """Default corruptor: deterministically damage one trailing unit."""
    if isinstance(value, str) and value:
        return value[:-1] + ("0" if value[-1] != "0" else "1")
    if isinstance(value, (bytes, bytearray)) and value:
        return value[:-1] + bytes([value[-1] ^ 1])
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 1
    return value


@dataclass
class FaultSpec:
    """One armed fault: what happens when its point is hit."""

    point: str
    mode: str = "raise"
    #: ``raise``: an :data:`ERROR_KINDS` name, or an exception
    #: instance/class supplied programmatically.
    error: Union[str, BaseException, type, None] = None
    #: ``delay``: how long to stall the seam.
    ms: float = 50.0
    #: ``corrupt``: value transformer (defaults to :func:`_flip`).
    corrupt: Optional[Callable] = None
    #: Fire at most this many times, then the spec disarms itself.
    times: Optional[int] = None
    #: Skip the first ``after`` hits before firing.
    after: int = 0
    #: Fire with probability ``p`` per hit (1.0 = always), drawn from
    #: ``random.Random(seed)`` so runs replay identically.
    p: float = 1.0
    seed: int = 0
    #: ``"all"`` fires everywhere; ``"worker"`` only in processes
    #: forked after arming (never the arming process itself).
    scope: str = "all"
    _hits: int = field(default=0, repr=False)
    _fired: int = field(default=0, repr=False)
    _rng: Optional[random.Random] = field(default=None, repr=False)
    _owner_pid: int = field(default_factory=os.getpid, repr=False)

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; choices: {MODES}")
        if self.scope not in ("all", "worker"):
            raise ValueError(
                f"unknown fault scope {self.scope!r}; choices: "
                "('all', 'worker')")
        if self.p < 1.0:
            self._rng = random.Random(self.seed)

    def should_fire(self) -> bool:
        """Advance the deterministic counters and decide."""
        if self.scope == "worker" and os.getpid() == self._owner_pid:
            return False
        self._hits += 1
        if self._hits <= self.after:
            return False
        if self.times is not None and self._fired >= self.times:
            return False
        if self._rng is not None and self._rng.random() >= self.p:
            return False
        self._fired += 1
        return True

    def build_error(self) -> BaseException:
        error = self.error
        if error is None:
            error = "fault"
        if isinstance(error, str):
            try:
                return ERROR_KINDS[error](self.point)
            except KeyError:
                raise ValueError(
                    f"unknown fault error kind {error!r}; choices: "
                    f"{sorted(ERROR_KINDS)}") from None
        if isinstance(error, type) and issubclass(error, BaseException):
            return error(f"injected fault at {self.point}")
        return error


#: Registered seams: name -> one-line description.  Populated by host
#: modules at import; :func:`fault_points` is the introspection surface
#: (``wmxml faults``) and the chaos sweep's work list.
_POINTS: dict[str, str] = {}

#: Armed specs.  The emptiness of this dict is the disarmed fast path.
_ARMED: dict[str, FaultSpec] = {}
_LOCK = threading.Lock()


def register_fault_point(name: str, description: str) -> str:
    """Declare a seam (idempotent; host modules call this at import)."""
    _POINTS[name] = description
    return name


def fault_points() -> dict[str, str]:
    """Every registered seam: ``{name: description}``, sorted."""
    return dict(sorted(_POINTS.items()))


def armed() -> dict[str, FaultSpec]:
    """The currently armed specs (a snapshot)."""
    with _LOCK:
        return dict(_ARMED)


def arm(point: str, mode: str = "raise", **options) -> FaultSpec:
    """Arm ``point`` with a :class:`FaultSpec` built from ``options``.

    Unregistered names are refused — a typo must fail the experiment,
    not silently test nothing.
    """
    if point not in _POINTS:
        raise ValueError(
            f"unknown fault point {point!r}; registered: "
            f"{sorted(_POINTS)}")
    spec = FaultSpec(point=point, mode=mode, **options)
    with _LOCK:
        _ARMED[point] = spec
    return spec


def disarm(point: Optional[str] = None) -> None:
    """Disarm one point, or every point when ``point`` is None."""
    with _LOCK:
        if point is None:
            _ARMED.clear()
        else:
            _ARMED.pop(point, None)


@contextmanager
def injected(point: str, mode: str = "raise", **options):
    """Arm for the scope of a ``with`` block, then disarm."""
    spec = arm(point, mode, **options)
    try:
        yield spec
    finally:
        with _LOCK:
            if _ARMED.get(point) is spec:
                del _ARMED[point]


def fault_point(name: str, value=None):
    """The inline hook host code places at a seam.

    Returns ``value`` (possibly corrupted) — seams that guard a value
    write ``value = fault_point("x", value=value)``; seams that guard
    control flow just call ``fault_point("x")``.  Disarmed, this is a
    single dict check.
    """
    if not _ARMED:
        return value
    spec = _ARMED.get(name)
    if spec is None or not spec.should_fire():
        return value
    if spec.mode == "delay":
        time.sleep(spec.ms / 1000.0)
        return value
    if spec.mode == "corrupt":
        return (spec.corrupt or _flip)(value)
    if spec.mode == "exit":
        os._exit(1)
    raise spec.build_error()


def _parse_options(parts: list[str]) -> dict:
    options: dict = {}
    for part in parts:
        key, eq, raw = part.partition("=")
        if not eq:
            raise ValueError(
                f"malformed fault option {part!r} (expected key=value)")
        if key in ("times", "after", "seed"):
            options[key] = int(raw)
        elif key in ("ms", "p"):
            options[key] = float(raw)
        elif key in ("error", "scope"):
            options[key] = raw
        else:
            raise ValueError(f"unknown fault option {key!r}")
    return options


def arm_from_env(value: Optional[str] = None) -> list[FaultSpec]:
    """Arm every spec named by ``WMXML_FAULTS`` (or ``value``).

    Grammar: ``point=mode[:key=val...]``, comma-separated, e.g.
    ``"pool.chunk=exit:times=1,service.dispatch=delay:ms=100"``.
    Called once at import, so a daemon subprocess started with the
    variable set comes up armed; re-callable from tests.
    """
    raw = os.environ.get(FAULTS_ENV) if value is None else value
    specs: list[FaultSpec] = []
    if not raw:
        return specs
    for clause in raw.split(","):
        clause = clause.strip()
        if not clause:
            continue
        point, eq, rest = clause.partition("=")
        if not eq:
            raise ValueError(
                f"malformed {FAULTS_ENV} clause {clause!r} "
                "(expected point=mode[:key=val...])")
        mode, *parts = rest.split(":")
        specs.append(arm(point.strip(), mode.strip(),
                         **_parse_options(parts)))
    return specs


# -- the registered seams ------------------------------------------------------------
#
# Declared here (not in the host modules) so importing repro.faults
# alone is enough to arm from the environment before any host module
# loads — the order a daemon subprocess actually experiences.

register_fault_point(
    "service.dispatch",
    "inside WmXMLService.dispatch, before routing — a request-handling "
    "crash; must become an error envelope, never a dropped connection")
register_fault_point(
    "service.response",
    "after routing, before the response is returned — a late failure "
    "with the work already done")
register_fault_point(
    "pool.chunk",
    "inside a process-pool chunk task — a dying/raising worker; the "
    "batch must recover per-chunk, not wholesale")
register_fault_point(
    "registry.sqlite.commit",
    "inside the SQLite append transaction, before commit — a torn "
    "write; the record/block pair must roll back together")
register_fault_point(
    "registry.sqlite.read",
    "on the SQLite query path — storage gone read-dark; the service "
    "must degrade (503 + Retry-After), not crash")
register_fault_point(
    "registry.append.torn",
    "between the record insert and the block insert — the legacy torn "
    "append; atomicity must leave no orphan row")
register_fault_point(
    "ledger.seal",
    "the HMAC seal of a freshly built ledger block — silent seal "
    "corruption; verify_chain must detect it and recovery quarantine it")

arm_from_env()
