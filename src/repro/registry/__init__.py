"""repro.registry — persistent watermark registry + provenance ledger.

The durable-state subsystem: issued-copy records
(``wmxml-registry-record-v1``), pluggable storage backends (in-memory
and SQLite), and the HMAC-sealed hash-chain ledger whose
``verify_chain()`` detects any retroactive tamper.  See
``docs/wire-protocol.md`` for the service surface built on top.
"""

from repro.registry.backend import MemoryBackend, RegistryBackend
from repro.registry.errors import (ChainBrokenError, RegistryError,
                                   RegistryFormatError,
                                   RegistryNotConfiguredError,
                                   RegistrySchemaError,
                                   RegistryUnavailableError,
                                   UnknownRecipientError)
from repro.registry.ledger import (GENESIS_HASH, ChainVerification,
                                   LedgerBlock, next_block, verify_chain)
from repro.registry.records import (KEYING_MODES, REGISTRY_RECORD_FORMAT,
                                    RegistryRecord, hash_document)
from repro.registry.registry import (EXPORT_FORMAT, RecoveryReport,
                                     WatermarkRegistry)
from repro.registry.sqlite import SCHEMA_VERSION, SQLiteBackend

__all__ = [
    "ChainBrokenError",
    "ChainVerification",
    "EXPORT_FORMAT",
    "GENESIS_HASH",
    "KEYING_MODES",
    "LedgerBlock",
    "MemoryBackend",
    "REGISTRY_RECORD_FORMAT",
    "RegistryBackend",
    "RecoveryReport",
    "RegistryError",
    "RegistryFormatError",
    "RegistryNotConfiguredError",
    "RegistryRecord",
    "RegistrySchemaError",
    "RegistryUnavailableError",
    "SCHEMA_VERSION",
    "SQLiteBackend",
    "UnknownRecipientError",
    "WatermarkRegistry",
    "hash_document",
    "next_block",
    "verify_chain",
]
