"""Pluggable registry storage: the backend interface + in-memory impl.

A :class:`RegistryBackend` persists two append-only sequences — the
``wmxml-registry-record-v1`` artefacts and their ledger blocks — and
answers the three indexed lookups issuance workflows need: by
recipient identity, by scheme fingerprint, and by document content
hash.  :class:`MemoryBackend` is the reference implementation (and the
equivalence baseline the SQLite backend is tested against);
:class:`~repro.registry.sqlite.SQLiteBackend` is the durable one.

Backends are deliberately dumb: hashing, sealing, chain building and
filtering semantics all live in :class:`~repro.registry.registry.
WatermarkRegistry`, so a new backend only implements storage.
"""

from __future__ import annotations

import abc
import threading
from typing import Iterator, Optional

from repro.faults import fault_point
from repro.registry.errors import RegistryError
from repro.registry.ledger import LedgerBlock
from repro.registry.records import RegistryRecord


class RegistryBackend(abc.ABC):
    """Append-only storage for registry records and ledger blocks."""

    # -- records ------------------------------------------------------------

    @abc.abstractmethod
    def append_record(self, record: RegistryRecord) -> int:
        """Persist ``record``, assigning and returning its sequence."""

    @abc.abstractmethod
    def record_count(self) -> int:
        """How many records are persisted."""

    @abc.abstractmethod
    def get_record(self, sequence: int) -> Optional[RegistryRecord]:
        """The record at ``sequence``, or ``None``."""

    @abc.abstractmethod
    def find_records(self, recipient: Optional[str] = None,
                     scheme_fingerprint: Optional[str] = None,
                     document_hash: Optional[str] = None,
                     tenant: Optional[str] = None
                     ) -> list[RegistryRecord]:
        """All records matching every given filter, in sequence order.

        ``tenant`` is the namespace filter multi-tenant daemons rely
        on: passing a tenant name returns only that tenant's records —
        a record with no tenant stamp belongs to the "" namespace, so
        pre-tenancy rows never leak into any named tenant's view.
        ``None`` (the default) disables the filter entirely.
        """

    @abc.abstractmethod
    def recipients(self) -> list[str]:
        """Distinct recipient identities, sorted."""

    # -- atomic entries ------------------------------------------------------------

    def append_entry(self, record: RegistryRecord,
                     block: LedgerBlock) -> int:
        """Persist a record and its ledger block as one unit.

        The base implementation chains the two appends and undoes the
        record if the block append fails; backends with real
        transactions (SQLite) override with a single commit so a crash
        can never tear the pair apart.
        """
        sequence = self.append_record(record)
        try:
            self.append_block(block)
        except Exception:
            self._discard_trailing_record(sequence)
            raise
        return sequence

    def append_entries(self, entries) -> list[int]:
        """Persist many ``(record, block)`` pairs as one unit.

        ``entries`` is a sequence of pairs whose blocks are already
        chained in order.  Backends with transactions override this
        with a single commit — the ``embed_many`` batched-append path.
        """
        sequences = []
        for record, block in entries:
            sequences.append(self.append_entry(record, block))
        return sequences

    def _discard_trailing_record(self, sequence: int) -> None:
        """Best-effort undo of a just-appended record (rollback shim
        for backends without transactions).  Default: no-op."""

    # -- ledger ------------------------------------------------------------

    @abc.abstractmethod
    def append_block(self, block: LedgerBlock) -> None:
        """Persist the next ledger block."""

    @abc.abstractmethod
    def block_count(self) -> int:
        """How many ledger blocks are persisted."""

    @abc.abstractmethod
    def last_block(self) -> Optional[LedgerBlock]:
        """The newest block, or ``None`` on an empty chain."""

    @abc.abstractmethod
    def iter_blocks(self) -> Iterator[LedgerBlock]:
        """Every block in chain order."""

    # -- quarantine ------------------------------------------------------------

    def quarantine_trailing(self, kind: str,
                            reason: str) -> Optional[dict]:
        """Move the newest record (``kind="record"``) or ledger block
        (``kind="block"``) into a quarantine area, preserving it for
        forensics while the live tables return to a verifiable state.
        Returns a description of what was quarantined, or ``None`` when
        there was nothing to move.  Crash recovery's tool."""
        raise RegistryError(
            f"{type(self).__name__} does not support quarantine")

    def quarantined(self) -> list[dict]:
        """Every quarantined artefact, oldest first (default: none)."""
        return []

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release storage resources (no-op by default)."""


def matches(record: RegistryRecord, recipient: Optional[str],
            scheme_fingerprint: Optional[str],
            document_hash: Optional[str],
            tenant: Optional[str] = None) -> bool:
    """The one filter predicate both backends implement.

    SQLite pushes these into indexed ``WHERE`` clauses; the test suite
    asserts both give identical answers, so this function is the
    semantic contract.  The tenant filter normalises an unstamped
    record (``record.tenant is None``) to the ``""`` namespace.
    """
    if recipient is not None and record.recipient != recipient:
        return False
    if (scheme_fingerprint is not None
            and record.scheme_fingerprint != scheme_fingerprint):
        return False
    if document_hash is not None and record.document_hash != document_hash:
        return False
    if tenant is not None and (record.tenant or "") != tenant:
        return False
    return True


class MemoryBackend(RegistryBackend):
    """Process-memory storage: fast, ephemeral, the reference semantics."""

    def __init__(self) -> None:
        self._records: list[RegistryRecord] = []
        self._blocks: list[LedgerBlock] = []
        self._quarantine: list[dict] = []
        self._lock = threading.Lock()

    def append_record(self, record: RegistryRecord) -> int:
        with self._lock:
            sequence = len(self._records)
            record.sequence = sequence
            self._records.append(record)
            return sequence

    def record_count(self) -> int:
        with self._lock:
            return len(self._records)

    def get_record(self, sequence: int) -> Optional[RegistryRecord]:
        with self._lock:
            if 0 <= sequence < len(self._records):
                return self._records[sequence]
            return None

    def find_records(self, recipient: Optional[str] = None,
                     scheme_fingerprint: Optional[str] = None,
                     document_hash: Optional[str] = None,
                     tenant: Optional[str] = None
                     ) -> list[RegistryRecord]:
        with self._lock:
            return [record for record in self._records
                    if matches(record, recipient, scheme_fingerprint,
                               document_hash, tenant)]

    def recipients(self) -> list[str]:
        with self._lock:
            return sorted({record.recipient for record in self._records})

    def append_entry(self, record: RegistryRecord,
                     block: LedgerBlock) -> int:
        # Both appends under one lock acquisition: concurrent readers
        # never observe a record without its block, matching the
        # SQLite backend's single-transaction semantics.
        with self._lock:
            if block.index != len(self._blocks):
                raise RegistryError(
                    f"ledger append out of order: block {block.index} "
                    f"onto a {len(self._blocks)}-block chain")
            sequence = len(self._records)
            record.sequence = sequence
            undo = len(self._records)
            self._records.append(record)
            try:
                # Same seam the SQLite backend exposes between its two
                # inserts; here the fault rolls back the record append.
                fault_point("registry.append.torn")
                self._blocks.append(block)
            except Exception:
                del self._records[undo:]
                raise
            return sequence

    def append_entries(self, entries) -> list[int]:
        with self._lock:
            undo_records = len(self._records)
            undo_blocks = len(self._blocks)
            try:
                sequences = []
                for record, block in entries:
                    if block.index != len(self._blocks):
                        raise RegistryError(
                            f"ledger append out of order: block "
                            f"{block.index} onto a "
                            f"{len(self._blocks)}-block chain")
                    record.sequence = len(self._records)
                    sequences.append(record.sequence)
                    self._records.append(record)
                    fault_point("registry.append.torn")
                    self._blocks.append(block)
                return sequences
            except Exception:
                # All-or-nothing, like the SQLite transaction.
                del self._records[undo_records:]
                del self._blocks[undo_blocks:]
                raise

    def append_block(self, block: LedgerBlock) -> None:
        with self._lock:
            if block.index != len(self._blocks):
                raise RegistryError(
                    f"ledger append out of order: block {block.index} "
                    f"onto a {len(self._blocks)}-block chain")
            self._blocks.append(block)

    def block_count(self) -> int:
        with self._lock:
            return len(self._blocks)

    def last_block(self) -> Optional[LedgerBlock]:
        with self._lock:
            return self._blocks[-1] if self._blocks else None

    def iter_blocks(self) -> Iterator[LedgerBlock]:
        with self._lock:
            snapshot = list(self._blocks)
        return iter(snapshot)

    def quarantine_trailing(self, kind: str,
                            reason: str) -> Optional[dict]:
        with self._lock:
            source = self._records if kind == "record" else self._blocks
            if not source:
                return None
            artefact = source.pop()
            ref = (artefact.sequence if kind == "record"
                   else artefact.index)
            entry = {"kind": kind, "ref": ref,
                     "payload": artefact.to_dict(), "reason": reason}
            self._quarantine.append(entry)
            return entry

    def quarantined(self) -> list[dict]:
        with self._lock:
            return list(self._quarantine)
