"""Pluggable registry storage: the backend interface + in-memory impl.

A :class:`RegistryBackend` persists two append-only sequences — the
``wmxml-registry-record-v1`` artefacts and their ledger blocks — and
answers the three indexed lookups issuance workflows need: by
recipient identity, by scheme fingerprint, and by document content
hash.  :class:`MemoryBackend` is the reference implementation (and the
equivalence baseline the SQLite backend is tested against);
:class:`~repro.registry.sqlite.SQLiteBackend` is the durable one.

Backends are deliberately dumb: hashing, sealing, chain building and
filtering semantics all live in :class:`~repro.registry.registry.
WatermarkRegistry`, so a new backend only implements storage.
"""

from __future__ import annotations

import abc
import threading
from typing import Iterator, Optional

from repro.registry.errors import RegistryError
from repro.registry.ledger import LedgerBlock
from repro.registry.records import RegistryRecord


class RegistryBackend(abc.ABC):
    """Append-only storage for registry records and ledger blocks."""

    # -- records ------------------------------------------------------------

    @abc.abstractmethod
    def append_record(self, record: RegistryRecord) -> int:
        """Persist ``record``, assigning and returning its sequence."""

    @abc.abstractmethod
    def record_count(self) -> int:
        """How many records are persisted."""

    @abc.abstractmethod
    def get_record(self, sequence: int) -> Optional[RegistryRecord]:
        """The record at ``sequence``, or ``None``."""

    @abc.abstractmethod
    def find_records(self, recipient: Optional[str] = None,
                     scheme_fingerprint: Optional[str] = None,
                     document_hash: Optional[str] = None
                     ) -> list[RegistryRecord]:
        """All records matching every given filter, in sequence order."""

    @abc.abstractmethod
    def recipients(self) -> list[str]:
        """Distinct recipient identities, sorted."""

    # -- ledger ------------------------------------------------------------

    @abc.abstractmethod
    def append_block(self, block: LedgerBlock) -> None:
        """Persist the next ledger block."""

    @abc.abstractmethod
    def block_count(self) -> int:
        """How many ledger blocks are persisted."""

    @abc.abstractmethod
    def last_block(self) -> Optional[LedgerBlock]:
        """The newest block, or ``None`` on an empty chain."""

    @abc.abstractmethod
    def iter_blocks(self) -> Iterator[LedgerBlock]:
        """Every block in chain order."""

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Release storage resources (no-op by default)."""


def matches(record: RegistryRecord, recipient: Optional[str],
            scheme_fingerprint: Optional[str],
            document_hash: Optional[str]) -> bool:
    """The one filter predicate both backends implement.

    SQLite pushes these into indexed ``WHERE`` clauses; the test suite
    asserts both give identical answers, so this function is the
    semantic contract.
    """
    if recipient is not None and record.recipient != recipient:
        return False
    if (scheme_fingerprint is not None
            and record.scheme_fingerprint != scheme_fingerprint):
        return False
    if document_hash is not None and record.document_hash != document_hash:
        return False
    return True


class MemoryBackend(RegistryBackend):
    """Process-memory storage: fast, ephemeral, the reference semantics."""

    def __init__(self) -> None:
        self._records: list[RegistryRecord] = []
        self._blocks: list[LedgerBlock] = []
        self._lock = threading.Lock()

    def append_record(self, record: RegistryRecord) -> int:
        with self._lock:
            sequence = len(self._records)
            record.sequence = sequence
            self._records.append(record)
            return sequence

    def record_count(self) -> int:
        with self._lock:
            return len(self._records)

    def get_record(self, sequence: int) -> Optional[RegistryRecord]:
        with self._lock:
            if 0 <= sequence < len(self._records):
                return self._records[sequence]
            return None

    def find_records(self, recipient: Optional[str] = None,
                     scheme_fingerprint: Optional[str] = None,
                     document_hash: Optional[str] = None
                     ) -> list[RegistryRecord]:
        with self._lock:
            return [record for record in self._records
                    if matches(record, recipient, scheme_fingerprint,
                               document_hash)]

    def recipients(self) -> list[str]:
        with self._lock:
            return sorted({record.recipient for record in self._records})

    def append_block(self, block: LedgerBlock) -> None:
        with self._lock:
            if block.index != len(self._blocks):
                raise RegistryError(
                    f"ledger append out of order: block {block.index} "
                    f"onto a {len(self._blocks)}-block chain")
            self._blocks.append(block)

    def block_count(self) -> int:
        with self._lock:
            return len(self._blocks)

    def last_block(self) -> Optional[LedgerBlock]:
        with self._lock:
            return self._blocks[-1] if self._blocks else None

    def iter_blocks(self) -> Iterator[LedgerBlock]:
        with self._lock:
            snapshot = list(self._blocks)
        return iter(snapshot)
