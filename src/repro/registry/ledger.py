"""The append-only provenance ledger: a hash chain of embed receipts.

Every embed through a registry-enabled system appends one
:class:`LedgerBlock`::

    block_i = (index, prev_hash, record_hash, document_hash, issuer,
               scheme_fingerprint, key_fingerprint, timestamp, seal)

where ``prev_hash`` is the hash of block ``i-1`` (:data:`GENESIS_HASH`
for the first), ``record_hash`` binds the block to the persisted
:class:`~repro.registry.records.RegistryRecord`'s content, the
timestamp is monotonically non-decreasing along the chain, and ``seal``
is an HMAC over the block content under the system's secret key.

:func:`verify_chain` re-derives everything.  The hash links make any
*historical* edit visible (changing block ``i`` breaks block
``i+1``'s ``prev_hash``); the seals extend that to the **final** block
(which no later block covers) and to wholesale chain rewrites — an
adversary without the key cannot re-seal the rows they forged.  Record
hashes close the last hole: editing a persisted registry record
without touching the ledger at all still fails verification.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, replace
from typing import Iterable, Optional, Sequence

from repro.core.crypto import KeyedPRF
from repro.faults import fault_point
from repro.registry.errors import ChainBrokenError, RegistryFormatError
from repro.registry.records import RegistryRecord

#: ``prev_hash`` of the first block.
GENESIS_HASH = "0" * 64

#: Domain-separation purpose string for ledger seals (never shared with
#: any embedding PRF purpose).
SEAL_PURPOSE = "wmxml-ledger-seal-v1"


@dataclass(frozen=True)
class LedgerBlock:
    """One sealed embed receipt in the hash chain."""

    index: int
    prev_hash: str
    record_hash: str
    document_hash: str
    issuer: str
    scheme_fingerprint: str
    key_fingerprint: str
    timestamp: float
    seal: str

    def content(self) -> str:
        """The canonical byte string the seal and hash commit to."""
        return "\x1f".join([
            str(self.index), self.prev_hash, self.record_hash,
            self.document_hash, self.issuer, self.scheme_fingerprint,
            self.key_fingerprint, repr(self.timestamp),
        ])

    def block_hash(self) -> str:
        """Hash of the whole block *including* the seal, so the next
        block's ``prev_hash`` covers the seal too."""
        material = self.content() + "\x1f" + self.seal
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "prev_hash": self.prev_hash,
            "record_hash": self.record_hash,
            "document_hash": self.document_hash,
            "issuer": self.issuer,
            "scheme_fingerprint": self.scheme_fingerprint,
            "key_fingerprint": self.key_fingerprint,
            "timestamp": self.timestamp,
            "seal": self.seal,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LedgerBlock":
        try:
            return cls(
                index=int(data["index"]),
                prev_hash=data["prev_hash"],
                record_hash=data["record_hash"],
                document_hash=data["document_hash"],
                issuer=data["issuer"],
                scheme_fingerprint=data["scheme_fingerprint"],
                key_fingerprint=data["key_fingerprint"],
                timestamp=float(data["timestamp"]),
                seal=data["seal"],
            )
        except (KeyError, TypeError, ValueError) as error:
            raise RegistryFormatError(
                f"malformed ledger block: {error}") from error


def seal_block_content(sealer: KeyedPRF, content: str) -> str:
    """HMAC seal for a block's canonical content."""
    return sealer.digest(SEAL_PURPOSE, content).hex()


def next_block(previous: Optional[LedgerBlock],
               record: RegistryRecord,
               sealer: KeyedPRF,
               now: Optional[float] = None) -> LedgerBlock:
    """Build the sealed successor block for a freshly appended record.

    The timestamp is wall-clock time clamped to be monotonically
    non-decreasing along the chain, so a host clock stepping backwards
    (NTP) can never produce a chain that looks reordered.
    """
    timestamp = time.time() if now is None else now
    if previous is not None:
        timestamp = max(timestamp, previous.timestamp)
    draft = LedgerBlock(
        index=0 if previous is None else previous.index + 1,
        prev_hash=(GENESIS_HASH if previous is None
                   else previous.block_hash()),
        record_hash=record.content_hash(),
        document_hash=record.document_hash,
        issuer=record.issuer,
        scheme_fingerprint=record.scheme_fingerprint,
        key_fingerprint=record.key_fingerprint,
        timestamp=timestamp,
        seal="",
    )
    # The "ledger.seal" fault point models silent seal corruption — a
    # bit flipped between sealing and persistence.  verify_chain() must
    # catch it, and crash recovery must quarantine it.
    seal = fault_point("ledger.seal",
                       value=seal_block_content(sealer, draft.content()))
    return replace(draft, seal=seal)


@dataclass
class ChainVerification:
    """Outcome of :func:`verify_chain`."""

    intact: bool
    blocks: int
    records: int
    sealed: bool
    broken_index: Optional[int] = None
    reason: Optional[str] = None

    def raise_if_broken(self) -> "ChainVerification":
        if not self.intact:
            where = ("" if self.broken_index is None
                     else f" at block {self.broken_index}")
            raise ChainBrokenError(
                f"provenance ledger failed verification{where}: "
                f"{self.reason}")
        return self

    def to_dict(self) -> dict:
        return {
            "intact": self.intact,
            "blocks": self.blocks,
            "records": self.records,
            "sealed": self.sealed,
            "broken_index": self.broken_index,
            "reason": self.reason,
        }


def verify_chain(blocks: Iterable[LedgerBlock],
                 records: Optional[Sequence[RegistryRecord]] = None,
                 sealer: Optional[KeyedPRF] = None) -> ChainVerification:
    """Re-derive the whole chain and report the first inconsistency.

    ``records`` (when given, in sequence order) binds each block to its
    persisted registry record; ``sealer`` (the system key) additionally
    verifies every HMAC seal — without it only the hash links and
    timestamps are checked, which still catches every historical edit
    but not a forgery of the final block.
    """
    chain = list(blocks)

    def broken(index: Optional[int], reason: str) -> ChainVerification:
        return ChainVerification(
            intact=False, blocks=len(chain),
            records=len(records) if records is not None else len(chain),
            sealed=sealer is not None, broken_index=index, reason=reason)

    if records is not None and len(records) != len(chain):
        return broken(None,
                      f"{len(records)} records but {len(chain)} ledger "
                      "blocks — rows were added or removed outside the "
                      "append path")
    previous: Optional[LedgerBlock] = None
    for position, block in enumerate(chain):
        if block.index != position:
            return broken(position,
                          f"block index {block.index} at position "
                          f"{position}")
        expected_prev = (GENESIS_HASH if previous is None
                         else previous.block_hash())
        if block.prev_hash != expected_prev:
            return broken(position,
                          "hash link does not match the previous block")
        if previous is not None and block.timestamp < previous.timestamp:
            return broken(position,
                          "timestamp moved backwards along the chain")
        if sealer is not None:
            if block.seal != seal_block_content(sealer, block.content()):
                return broken(position,
                              "HMAC seal does not verify under the "
                              "system key")
        if records is not None:
            record = records[position]
            if block.record_hash != record.content_hash():
                return broken(position,
                              "block does not match the persisted "
                              "registry record (record tampered)")
            if block.document_hash != record.document_hash:
                return broken(position,
                              "block and record disagree on the "
                              "document hash")
        previous = block
    return ChainVerification(
        intact=True, blocks=len(chain),
        records=len(records) if records is not None else len(chain),
        sealed=sealer is not None)


def blocks_to_json(blocks: Sequence[LedgerBlock]) -> str:
    """Canonical JSON array of blocks (tests and tooling)."""
    return json.dumps([block.to_dict() for block in blocks], indent=2)
