"""`WatermarkRegistry` — the registry facade the rest of WmXML talks to.

It owns the invariant the backends cannot express alone: **every record
append also appends its sealed ledger block, atomically with respect to
other appends** (one lock serialises the pair, so the chain and the
record corpus can never drift apart inside the append path — drift is
exactly what ``verify_chain`` exists to catch when storage is tampered
*outside* it).

The registry never sees plaintext keys beyond the :class:`KeyedPRF`
sealer handed in by the owning system; records store fingerprints only.
"""

from __future__ import annotations

import datetime
import json
import threading
from typing import Iterable, Optional, TextIO, Union

from repro.core.crypto import KeyedPRF
from repro.core.record import WatermarkRecord
from repro.registry.backend import MemoryBackend, RegistryBackend
from repro.registry.errors import RegistryFormatError, UnknownRecipientError
from repro.registry.ledger import (ChainVerification, LedgerBlock,
                                   next_block, verify_chain)
from repro.registry.records import (REGISTRY_RECORD_FORMAT, RegistryRecord,
                                    hash_document)
from repro.registry.sqlite import SCHEMA_VERSION, SQLiteBackend

#: Header line of a ``wmxml records --export jsonl`` dump.
EXPORT_FORMAT = "wmxml-registry-export-v1"


def _utcnow() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


class WatermarkRegistry:
    """Persistent issuance corpus + provenance ledger over one backend."""

    def __init__(self, backend: Optional[RegistryBackend] = None,
                 sealer: Optional[KeyedPRF] = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self._sealer = sealer
        self._append_lock = threading.Lock()

    @classmethod
    def open(cls, path: str,
             sealer: Optional[KeyedPRF] = None) -> "WatermarkRegistry":
        """A registry over the SQLite file at ``path`` (created if new)."""
        return cls(SQLiteBackend(path), sealer=sealer)

    def attach_sealer(self, sealer: KeyedPRF) -> None:
        """Late-bind the sealing key (the system attaches itself here)."""
        self._sealer = sealer

    # -- append ------------------------------------------------------------

    def record_embed(self, recipient: str, record: WatermarkRecord,
                     document_xml: str, scheme_fingerprint: str,
                     key_fingerprint: str, keying: str,
                     issuer: str) -> RegistryRecord:
        """Persist one embed: registry record + sealed ledger block."""
        entry = RegistryRecord(
            recipient=recipient,
            record=record,
            document_hash=hash_document(document_xml),
            scheme_fingerprint=scheme_fingerprint,
            key_fingerprint=key_fingerprint,
            keying=keying,
            issuer=issuer,
            created_at=_utcnow(),
        )
        self.append(entry)
        return entry

    def append(self, entry: RegistryRecord) -> RegistryRecord:
        """Append a pre-built record and its ledger block atomically."""
        if self._sealer is None:
            raise RegistryFormatError(
                "registry has no sealing key attached; construct it "
                "through WmXMLSystem(registry=...) or attach_sealer()")
        with self._append_lock:
            previous = self.backend.last_block()
            self.backend.append_record(entry)
            self.backend.append_block(
                next_block(previous, entry, self._sealer))
        return entry

    # -- queries ------------------------------------------------------------

    def records(self, recipient: Optional[str] = None,
                scheme_fingerprint: Optional[str] = None,
                document_hash: Optional[str] = None,
                offset: int = 0,
                limit: Optional[int] = None) -> list[RegistryRecord]:
        """Filtered records in sequence order, with offset/limit paging."""
        found = self.backend.find_records(
            recipient=recipient, scheme_fingerprint=scheme_fingerprint,
            document_hash=document_hash)
        if offset:
            found = found[offset:]
        if limit is not None:
            found = found[:limit]
        return found

    def count(self, recipient: Optional[str] = None,
              scheme_fingerprint: Optional[str] = None,
              document_hash: Optional[str] = None) -> int:
        """Total matching records, ignoring paging."""
        if recipient is None and scheme_fingerprint is None \
                and document_hash is None:
            return self.backend.record_count()
        return len(self.backend.find_records(
            recipient=recipient, scheme_fingerprint=scheme_fingerprint,
            document_hash=document_hash))

    def recipients(self) -> list[str]:
        """Every distinct recipient identity, sorted."""
        return self.backend.recipients()

    def records_for(self, recipient: str) -> list[RegistryRecord]:
        """All records for one recipient; raises if there are none."""
        found = self.backend.find_records(recipient=recipient)
        if not found:
            raise UnknownRecipientError(recipient,
                                        known=self.backend.recipients())
        return found

    # -- ledger ------------------------------------------------------------

    def blocks(self) -> list[LedgerBlock]:
        return list(self.backend.iter_blocks())

    def verify_chain(self) -> ChainVerification:
        """Re-verify the whole chain against the persisted records."""
        with self._append_lock:
            blocks = list(self.backend.iter_blocks())
            records = self.backend.find_records()
        return verify_chain(blocks, records=records, sealer=self._sealer)

    # -- export / import ----------------------------------------------------

    def export_jsonl(self, stream: TextIO) -> int:
        """Dump the registry as JSON lines; returns lines written.

        Line 1 is a header naming the export format and the storage
        schema version; each following line is one record or block,
        tagged with ``kind``.  The dump restores bit-identically via
        :meth:`import_jsonl`, which is the schema-migration path.
        """
        header = {"format": EXPORT_FORMAT, "schema_version": SCHEMA_VERSION,
                  "record_format": REGISTRY_RECORD_FORMAT}
        lines = 1
        stream.write(json.dumps(header) + "\n")
        for record in self.backend.find_records():
            stream.write(json.dumps({"kind": "record",
                                     **record.to_dict()}) + "\n")
            lines += 1
        for block in self.backend.iter_blocks():
            stream.write(json.dumps({"kind": "block",
                                     **block.to_dict()}) + "\n")
            lines += 1
        return lines

    def import_jsonl(self, stream: Union[TextIO, Iterable[str]]) -> int:
        """Restore a dump into an **empty** registry; returns rows loaded.

        The persisted blocks are restored verbatim (not re-sealed), so
        the imported chain carries the original provenance and still
        verifies under the original system key.
        """
        if self.backend.record_count() or self.backend.block_count():
            raise RegistryFormatError(
                "refusing to import into a non-empty registry")
        lines = iter(stream)
        try:
            header = json.loads(next(lines))
        except StopIteration:
            raise RegistryFormatError("export stream is empty") from None
        except ValueError as error:
            raise RegistryFormatError(
                f"malformed export header: {error}") from error
        if header.get("format") != EXPORT_FORMAT:
            raise RegistryFormatError(
                f"not a {EXPORT_FORMAT} stream: "
                f"format={header.get('format')!r}")
        schema = header.get("schema_version")
        if not isinstance(schema, int) or schema > SCHEMA_VERSION:
            raise RegistryFormatError(
                f"export uses schema version {schema!r}, newer than the "
                f"supported version {SCHEMA_VERSION}")
        loaded = 0
        with self._append_lock:
            for number, line in enumerate(lines, start=2):
                if not line.strip():
                    continue
                try:
                    data = json.loads(line)
                except ValueError as error:
                    raise RegistryFormatError(
                        f"malformed export line {number}: {error}"
                    ) from error
                kind = data.pop("kind", None)
                if kind == "record":
                    self.backend.append_record(RegistryRecord.from_dict(data))
                elif kind == "block":
                    self.backend.append_block(LedgerBlock.from_dict(data))
                else:
                    raise RegistryFormatError(
                        f"export line {number} has unknown kind {kind!r}")
                loaded += 1
        return loaded

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "WatermarkRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
