"""`WatermarkRegistry` — the registry facade the rest of WmXML talks to.

It owns the invariant the backends cannot express alone: **every record
append also appends its sealed ledger block, atomically** — one lock
serialises appends, and the record/block pair goes to the backend as a
single :meth:`~repro.registry.backend.RegistryBackend.append_entry`
unit (one SQLite transaction on the durable backend), so the chain and
the record corpus can never drift apart inside the append path even
across a ``kill -9``.  Drift is what ``verify_chain`` exists to catch
when storage is tampered *outside* it, and what :meth:`recover` repairs
when a pre-atomic database (or a simulated torn write) left an orphan
trailing row behind.

The registry never sees plaintext keys beyond the :class:`KeyedPRF`
sealer handed in by the owning system; records store fingerprints only.
"""

from __future__ import annotations

import datetime
import json
import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional, TextIO, Union

from repro.core.crypto import KeyedPRF
from repro.core.record import WatermarkRecord
from repro.registry.backend import MemoryBackend, RegistryBackend
from repro.registry.errors import RegistryFormatError, UnknownRecipientError
from repro.registry.ledger import (ChainVerification, LedgerBlock,
                                   next_block, verify_chain)
from repro.registry.records import (REGISTRY_RECORD_FORMAT, RegistryRecord,
                                    hash_document)
from repro.registry.sqlite import SCHEMA_VERSION, SQLiteBackend

#: Header line of a ``wmxml records --export jsonl`` dump.
EXPORT_FORMAT = "wmxml-registry-export-v1"

#: How many torn trailing artefacts :meth:`WatermarkRegistry.recover`
#: will quarantine before concluding the damage is not a crash tail.
#: A single torn append leaves at most one orphan row; anything deeper
#: is tampering or bit rot, which recovery must report, not bury.
MAX_RECOVERY_PASSES = 4


def _utcnow() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


@dataclass
class RecoveryReport:
    """What :meth:`WatermarkRegistry.recover` found and did.

    ``ok`` means the registry ended in a verifiable state — either it
    already was, or quarantining a torn tail restored it.  ``actions``
    lists every quarantined artefact.  When ``ok`` is false the damage
    is mid-chain (tampering, not a crash), and ``verification`` carries
    the clean ``chain-broken`` diagnosis; nothing is quarantined in
    that case, because deleting interior history would destroy the
    evidence the ledger exists to preserve.
    """

    ok: bool
    records: int
    blocks: int
    actions: list = field(default_factory=list)
    verification: Optional[ChainVerification] = None

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "records": self.records,
            "blocks": self.blocks,
            "actions": self.actions,
            "verification": (self.verification.to_dict()
                             if self.verification is not None else None),
        }


class WatermarkRegistry:
    """Persistent issuance corpus + provenance ledger over one backend."""

    def __init__(self, backend: Optional[RegistryBackend] = None,
                 sealer: Optional[KeyedPRF] = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self._sealer = sealer
        self._append_lock = threading.Lock()
        #: The :class:`RecoveryReport` of the open-time recovery pass,
        #: when the registry was opened through :meth:`open`.
        self.last_recovery: Optional[RecoveryReport] = None

    @classmethod
    def open(cls, path: str, sealer: Optional[KeyedPRF] = None,
             recover: bool = True) -> "WatermarkRegistry":
        """A registry over the SQLite file at ``path`` (created if new).

        By default the open runs :meth:`recover`, so a database a crash
        tore mid-append comes back structurally verifiable (the torn
        tail quarantined, never deleted).  The report is kept on
        ``last_recovery`` for callers that want to surface it.
        """
        registry = cls(SQLiteBackend(path), sealer=sealer)
        if recover:
            registry.last_recovery = registry.recover()
        return registry

    def attach_sealer(self, sealer: KeyedPRF) -> None:
        """Late-bind the sealing key (the system attaches itself here)."""
        self._sealer = sealer

    # -- append ------------------------------------------------------------

    def record_embed(self, recipient: str, record: WatermarkRecord,
                     document_xml: str, scheme_fingerprint: str,
                     key_fingerprint: str, keying: str,
                     issuer: str, tenant: Optional[str] = None,
                     key_id: Optional[int] = None) -> RegistryRecord:
        """Persist one embed: registry record + sealed ledger block."""
        entry = RegistryRecord(
            recipient=recipient,
            record=record,
            document_hash=hash_document(document_xml),
            scheme_fingerprint=scheme_fingerprint,
            key_fingerprint=key_fingerprint,
            keying=keying,
            issuer=issuer,
            created_at=_utcnow(),
            tenant=tenant,
            key_id=key_id,
        )
        self.append(entry)
        return entry

    def record_embed_many(self, embeds: Iterable[dict]
                          ) -> list[RegistryRecord]:
        """Persist a whole batch of embeds in **one** backend commit.

        ``embeds`` is an iterable of keyword dicts matching
        :meth:`record_embed`'s signature.  On SQLite the batch is a
        single transaction: one fsync instead of one per record, and a
        failure persists *nothing* — which is what makes a client
        retry after a 503 append-safe (no half-recorded batch to
        double-append onto).
        """
        entries = [RegistryRecord(
            recipient=embed["recipient"],
            record=embed["record"],
            document_hash=hash_document(embed["document_xml"]),
            scheme_fingerprint=embed["scheme_fingerprint"],
            key_fingerprint=embed["key_fingerprint"],
            keying=embed["keying"],
            issuer=embed["issuer"],
            created_at=_utcnow(),
            tenant=embed.get("tenant"),
            key_id=embed.get("key_id"),
        ) for embed in embeds]
        return self.append_many(entries)

    def append(self, entry: RegistryRecord) -> RegistryRecord:
        """Append a pre-built record and its ledger block atomically.

        The pair goes to the backend as one unit (one SQLite
        transaction), so a crash between the two inserts cannot leave
        an orphan record or a dangling block.
        """
        self._require_sealer()
        with self._append_lock:
            previous = self.backend.last_block()
            self.backend.append_entry(
                entry, next_block(previous, entry, self._sealer))
        return entry

    def append_many(self, entries: list[RegistryRecord]
                    ) -> list[RegistryRecord]:
        """Append pre-built records + chained blocks in one commit."""
        self._require_sealer()
        if not entries:
            return []
        with self._append_lock:
            previous = self.backend.last_block()
            pairs = []
            for entry in entries:
                block = next_block(previous, entry, self._sealer)
                pairs.append((entry, block))
                previous = block
            self.backend.append_entries(pairs)
        return entries

    def _require_sealer(self) -> None:
        if self._sealer is None:
            raise RegistryFormatError(
                "registry has no sealing key attached; construct it "
                "through WmXMLSystem(registry=...) or attach_sealer()")

    # -- queries ------------------------------------------------------------

    def records(self, recipient: Optional[str] = None,
                scheme_fingerprint: Optional[str] = None,
                document_hash: Optional[str] = None,
                tenant: Optional[str] = None,
                offset: int = 0,
                limit: Optional[int] = None) -> list[RegistryRecord]:
        """Filtered records in sequence order, with offset/limit paging."""
        found = self.backend.find_records(
            recipient=recipient, scheme_fingerprint=scheme_fingerprint,
            document_hash=document_hash, tenant=tenant)
        if offset:
            found = found[offset:]
        if limit is not None:
            found = found[:limit]
        return found

    def count(self, recipient: Optional[str] = None,
              scheme_fingerprint: Optional[str] = None,
              document_hash: Optional[str] = None,
              tenant: Optional[str] = None) -> int:
        """Total matching records, ignoring paging."""
        if recipient is None and scheme_fingerprint is None \
                and document_hash is None and tenant is None:
            return self.backend.record_count()
        return len(self.backend.find_records(
            recipient=recipient, scheme_fingerprint=scheme_fingerprint,
            document_hash=document_hash, tenant=tenant))

    def recipients(self) -> list[str]:
        """Every distinct recipient identity, sorted."""
        return self.backend.recipients()

    def records_for(self, recipient: str) -> list[RegistryRecord]:
        """All records for one recipient; raises if there are none."""
        found = self.backend.find_records(recipient=recipient)
        if not found:
            raise UnknownRecipientError(recipient,
                                        known=self.backend.recipients())
        return found

    # -- ledger ------------------------------------------------------------

    def blocks(self) -> list[LedgerBlock]:
        return list(self.backend.iter_blocks())

    def verify_chain(self) -> ChainVerification:
        """Re-verify the whole chain against the persisted records."""
        with self._append_lock:
            blocks = list(self.backend.iter_blocks())
            records = self.backend.find_records()
        return verify_chain(blocks, records=records, sealer=self._sealer)

    # -- crash recovery ------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Reopen-after-crash repair: quarantine a torn tail, keep history.

        A crash inside a *pre-atomic* append (or a simulated torn
        write) can leave exactly one orphan trailing row — a record
        without its block, or vice versa.  Recovery quarantines that
        tail (preserved in the backend's quarantine area, never
        deleted) and re-verifies, repeating for at most
        :data:`MAX_RECOVERY_PASSES` tails.

        The guard that makes this safe: a tail is only quarantined
        when the chain *before* it verifies.  Damage anywhere interior
        means tampering, not a crash — recovery then reports the clean
        ``chain-broken`` diagnosis and touches nothing, because
        deleting interior history would destroy the evidence.
        """
        with self._append_lock:
            return self._recover_locked()

    def _recover_locked(self) -> RecoveryReport:
        actions: list = []

        def report(ok: bool,
                   verification: Optional[ChainVerification] = None
                   ) -> RecoveryReport:
            return RecoveryReport(
                ok=ok, records=self.backend.record_count(),
                blocks=self.backend.block_count(), actions=actions,
                verification=verification)

        for _ in range(MAX_RECOVERY_PASSES):
            try:
                blocks = list(self.backend.iter_blocks())
                records = self.backend.find_records()
            except RegistryFormatError as error:
                # An artefact that no longer parses is not a crash
                # tail SQLite could produce (transactions are
                # all-or-nothing) — it is bit rot or tampering.
                return report(False, ChainVerification(
                    intact=False, blocks=self.backend.block_count(),
                    records=self.backend.record_count(),
                    sealed=self._sealer is not None,
                    reason=f"unreadable persisted artefact: {error}"))
            nrec, nblk = len(records), len(blocks)

            if nrec == nblk + 1:
                # Torn append: the record landed, the block did not.
                # Only a *tail* may be quarantined — the chain before
                # it must verify, else this is interior damage.
                prefix = verify_chain(blocks, records=records[:nblk],
                                      sealer=self._sealer)
                if not prefix.intact:
                    return report(False, prefix)
                actions.append(self.backend.quarantine_trailing(
                    "record", "orphan trailing record: torn append "
                    "persisted the record without its ledger block"))
                continue

            if nblk == nrec + 1:
                prefix = verify_chain(blocks[:nrec], records=records,
                                      sealer=self._sealer)
                if not prefix.intact:
                    return report(False, prefix)
                actions.append(self.backend.quarantine_trailing(
                    "block", "orphan trailing block: ledger block "
                    "persisted without its registry record"))
                continue

            if nrec != nblk:
                # More than one row apart — no single crash does that.
                return report(False, verify_chain(
                    blocks, records=records, sealer=self._sealer))

            verification = verify_chain(blocks, records=records,
                                        sealer=self._sealer)
            if verification.intact:
                return report(True, verification)
            if nblk > 0 and verification.broken_index == nblk - 1:
                # Only the final pair is bad (e.g. a corrupted seal on
                # the newest block).  If everything before it
                # verifies, quarantine the pair together so the
                # registry stays record/block aligned.
                prefix = verify_chain(blocks[:-1], records=records[:-1],
                                      sealer=self._sealer)
                if prefix.intact:
                    why = (f"trailing pair fails verification: "
                           f"{verification.reason}")
                    actions.append(self.backend.quarantine_trailing(
                        "block", why))
                    actions.append(self.backend.quarantine_trailing(
                        "record", why))
                    continue
            # Interior damage: report chain-broken, touch nothing.
            return report(False, verification)

        # Still torn after the pass budget — not a crash tail.
        return report(False, verify_chain(
            list(self.backend.iter_blocks()),
            records=self.backend.find_records(), sealer=self._sealer))

    def quarantined(self) -> list[dict]:
        """Artefacts recovery moved aside, oldest first."""
        return self.backend.quarantined()

    # -- export / import ----------------------------------------------------

    def export_jsonl(self, stream: TextIO) -> int:
        """Dump the registry as JSON lines; returns lines written.

        Line 1 is a header naming the export format and the storage
        schema version; each following line is one record or block,
        tagged with ``kind``.  The dump restores bit-identically via
        :meth:`import_jsonl`, which is the schema-migration path.
        """
        header = {"format": EXPORT_FORMAT, "schema_version": SCHEMA_VERSION,
                  "record_format": REGISTRY_RECORD_FORMAT}
        lines = 1
        stream.write(json.dumps(header) + "\n")
        for record in self.backend.find_records():
            stream.write(json.dumps({"kind": "record",
                                     **record.to_dict()}) + "\n")
            lines += 1
        for block in self.backend.iter_blocks():
            stream.write(json.dumps({"kind": "block",
                                     **block.to_dict()}) + "\n")
            lines += 1
        return lines

    def import_jsonl(self, stream: Union[TextIO, Iterable[str]]) -> int:
        """Restore a dump into an **empty** registry; returns rows loaded.

        The persisted blocks are restored verbatim (not re-sealed), so
        the imported chain carries the original provenance and still
        verifies under the original system key.
        """
        if self.backend.record_count() or self.backend.block_count():
            raise RegistryFormatError(
                "refusing to import into a non-empty registry")
        lines = iter(stream)
        try:
            header = json.loads(next(lines))
        except StopIteration:
            raise RegistryFormatError("export stream is empty") from None
        except ValueError as error:
            raise RegistryFormatError(
                f"malformed export header: {error}") from error
        if header.get("format") != EXPORT_FORMAT:
            raise RegistryFormatError(
                f"not a {EXPORT_FORMAT} stream: "
                f"format={header.get('format')!r}")
        schema = header.get("schema_version")
        if not isinstance(schema, int) or schema > SCHEMA_VERSION:
            raise RegistryFormatError(
                f"export uses schema version {schema!r}, newer than the "
                f"supported version {SCHEMA_VERSION}")
        loaded = 0
        with self._append_lock:
            for number, line in enumerate(lines, start=2):
                if not line.strip():
                    continue
                try:
                    data = json.loads(line)
                except ValueError as error:
                    raise RegistryFormatError(
                        f"malformed export line {number}: {error}"
                    ) from error
                kind = data.pop("kind", None)
                if kind == "record":
                    self.backend.append_record(RegistryRecord.from_dict(data))
                elif kind == "block":
                    self.backend.append_block(LedgerBlock.from_dict(data))
                else:
                    raise RegistryFormatError(
                        f"export line {number} has unknown kind {kind!r}")
                loaded += 1
        return loaded

    def close(self) -> None:
        self.backend.close()

    def __enter__(self) -> "WatermarkRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
