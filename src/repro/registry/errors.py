"""Errors raised by the persistent watermark registry.

Every class declares its stable ``code`` slug (registered in
:data:`repro.errors.HTTP_STATUS_BY_CODE`), so registry failures map to
HTTP statuses through the one table like every other layer's — a
service client branches on ``chain-broken`` or ``unknown-recipient``
instead of parsing prose.
"""

from __future__ import annotations

from repro.errors import SerializationError, WmXMLError


class RegistryError(WmXMLError, RuntimeError):
    """Base class for registry storage/provenance failures."""

    code = "registry-error"


class RegistryFormatError(SerializationError):
    """A persisted registry artefact (record, block, export) is malformed."""

    code = "bad-registry-record"


class RegistrySchemaError(RegistryError):
    """The storage schema is unusable — most importantly, *newer* than
    this code: opening it could silently corrupt artefacts a later
    version wrote, so the registry refuses instead."""

    code = "registry-schema"


class RegistryUnavailableError(RegistryError):
    """Registry storage failed like a failing disk would — an I/O
    error, a lock timeout, a connection the filesystem yanked.  The
    condition is transient by nature, so the service maps it to 503
    with ``Retry-After`` and flips its health to ``degraded`` instead
    of treating the daemon as broken."""

    code = "registry-unavailable"


class RegistryNotConfiguredError(RegistryError):
    """A registry operation was requested but no registry is attached
    (``wmxml serve`` without ``--registry``, ``WmXMLSystem`` without
    ``registry=...``)."""

    code = "registry-not-configured"


class ChainBrokenError(RegistryError):
    """The provenance ledger failed verification: a block's hash link,
    HMAC seal, or its binding to the persisted record does not check
    out — some row was tampered with after it was appended."""

    code = "chain-broken"


class UnknownRecipientError(RegistryError, KeyError):
    """No persisted record names this recipient."""

    code = "unknown-recipient"

    def __init__(self, recipient: str, known=()) -> None:
        hint = ""
        if known:
            sample = sorted(known)[:8]
            hint = f"; known recipients include: {sample}"
        super().__init__(f"no registry record for recipient "
                         f"{recipient!r}{hint}")
        self.recipient = recipient

    def __str__(self) -> str:
        # KeyError.__str__ would repr() the message, printing spurious
        # quotes around it; render it like every other exception.
        return self.args[0]
