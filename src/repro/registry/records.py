"""The persisted issuance artefact: ``wmxml-registry-record-v1``.

One :class:`RegistryRecord` is the durable answer to "who was this
copy issued to?": the recipient identity, the query set Q
(:class:`~repro.core.record.WatermarkRecord`), the content hash of the
exact marked bytes that left the system, and the fingerprints of the
scheme and key that produced them.  Like every WmXML artefact it is
versioned JSON with **no secret material** — safe to escrow, export,
and serve over the wire.

``keying`` distinguishes the two issuance models:

* ``"system"`` — a plain embed under the owner's key; the recipient is
  whatever identity the message named.
* ``"recipient"`` — a fingerprinted copy under the *derived*
  per-recipient key (``HMAC(master, "fingerprint-key", recipient)``,
  the :class:`~repro.core.fingerprint.Fingerprinter` derivation), which
  is what makes collusion-resistant traitor tracing possible: derived
  keys select *different* element subsets per recipient.

``content_hash()`` is the record's binding into the provenance ledger:
a :class:`~repro.registry.ledger.LedgerBlock` stores it at append
time, so retroactively editing any persisted field breaks
``verify_chain()``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from repro.core.record import WatermarkRecord
from repro.registry.errors import RegistryFormatError
from repro.serialize import VersionedDocument

#: Version tag of the persisted registry-record format.
REGISTRY_RECORD_FORMAT = "wmxml-registry-record-v1"

#: Accepted values of :attr:`RegistryRecord.keying`.
KEYING_MODES = ("system", "recipient")


def hash_document(xml: str) -> str:
    """Content hash of a marked document's exact serialised bytes."""
    return hashlib.sha256(xml.encode("utf-8")).hexdigest()


@dataclass
class RegistryRecord(VersionedDocument):
    """One issued copy: who, what, under which scheme/key, when."""

    format_tag = REGISTRY_RECORD_FORMAT
    format_error = RegistryFormatError

    recipient: str
    record: WatermarkRecord
    document_hash: str
    scheme_fingerprint: str
    key_fingerprint: str
    keying: str
    issuer: str
    created_at: str
    #: Assigned by the backend on append (position in the corpus);
    #: ``None`` for a record not yet persisted.
    sequence: Optional[int] = None
    #: Tenancy provenance (multi-tenant daemons): which tenant's
    #: namespace this issuance belongs to, and which master-key
    #: generation derived the embedding key.  ``None`` on single-key
    #: systems and *omitted* from the serialized form then, so
    #: pre-tenancy exports, ledger bindings, and content hashes are
    #: unchanged.  Unlike ``sequence`` these are evidence, so they DO
    #: participate in :meth:`content_hash`.
    tenant: Optional[str] = None
    key_id: Optional[int] = None

    def __post_init__(self) -> None:
        if self.keying not in KEYING_MODES:
            raise RegistryFormatError(
                f"unknown keying mode {self.keying!r}; "
                f"choices: {KEYING_MODES}")

    def to_dict(self) -> dict:
        data = {
            "format": REGISTRY_RECORD_FORMAT,
            "recipient": self.recipient,
            "record": self.record.to_dict(),
            "document_hash": self.document_hash,
            "scheme_fingerprint": self.scheme_fingerprint,
            "key_fingerprint": self.key_fingerprint,
            "keying": self.keying,
            "issuer": self.issuer,
            "created_at": self.created_at,
        }
        if self.tenant is not None:
            data["tenant"] = self.tenant
        if self.key_id is not None:
            data["key_id"] = self.key_id
        if self.sequence is not None:
            data["sequence"] = self.sequence
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RegistryRecord":
        cls._check_format(data)
        try:
            return cls(
                recipient=data["recipient"],
                record=WatermarkRecord.from_dict(data["record"]),
                document_hash=data["document_hash"],
                scheme_fingerprint=data["scheme_fingerprint"],
                key_fingerprint=data["key_fingerprint"],
                keying=data["keying"],
                issuer=data["issuer"],
                created_at=data["created_at"],
                sequence=data.get("sequence"),
                tenant=data.get("tenant"),
                key_id=data.get("key_id"),
            )
        except RegistryFormatError:
            raise
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise RegistryFormatError(
                f"malformed registry record: {error}") from error

    def content_hash(self) -> str:
        """Hash of the record's *content* (sequence excluded).

        The sequence is storage bookkeeping assigned at append time;
        everything else is evidence, and this hash is what the ledger
        block seals — so the hash of a record is the same before and
        after persistence, and tampering any persisted field changes
        it.
        """
        content = {key: value for key, value in self.to_dict().items()
                   if key != "sequence"}
        canonical = json.dumps(content, sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
