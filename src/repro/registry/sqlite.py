"""Durable registry storage on SQLite.

Schema v1 — two append-only tables plus a meta table::

    registry_meta(key TEXT PRIMARY KEY, value TEXT)
    records(sequence INTEGER PRIMARY KEY, recipient, scheme_fingerprint,
            document_hash, payload TEXT)          -- payload = record JSON
    ledger(idx INTEGER PRIMARY KEY, payload TEXT) -- payload = block JSON

The filter columns the ISSUE names are first-class indexed columns
(``idx_records_recipient`` / ``idx_records_scheme`` /
``idx_records_document``); the full artefact rides along as its
canonical ``wmxml-registry-record-v1`` JSON so nothing is lossy and the
export/import tooling round-trips bit-for-bit.

Forward compatibility is strict: a database whose ``schema_version`` is
*newer* than :data:`SCHEMA_VERSION` is refused with
:class:`~repro.registry.errors.RegistrySchemaError` — opening it could
silently corrupt artefacts a later version wrote.

The connection is shared across threads (``check_same_thread=False``)
behind one lock, matching the service daemon's threading model.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Iterator, Optional

from repro.registry.backend import RegistryBackend
from repro.registry.errors import RegistryError, RegistrySchemaError
from repro.registry.ledger import LedgerBlock
from repro.registry.records import RegistryRecord

#: Schema version this code reads and writes.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS registry_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    sequence            INTEGER PRIMARY KEY,
    recipient           TEXT NOT NULL,
    scheme_fingerprint  TEXT NOT NULL,
    document_hash       TEXT NOT NULL,
    payload             TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_recipient
    ON records (recipient);
CREATE INDEX IF NOT EXISTS idx_records_scheme
    ON records (scheme_fingerprint);
CREATE INDEX IF NOT EXISTS idx_records_document
    ON records (document_hash);
CREATE TABLE IF NOT EXISTS ledger (
    idx     INTEGER PRIMARY KEY,
    payload TEXT NOT NULL
);
"""


class SQLiteBackend(RegistryBackend):
    """Registry storage in a single SQLite file (or ``":memory:"``)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(path, check_same_thread=False)
        except sqlite3.Error as error:
            raise RegistryError(
                f"cannot open registry database {path!r}: {error}"
            ) from error
        try:
            self._init_schema()
        except sqlite3.Error as error:
            self._conn.close()
            raise RegistryError(
                f"{path!r} is not a wmxml registry database: {error}"
            ) from error
        except Exception:
            self._conn.close()
            raise

    def _init_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
            row = self._conn.execute(
                "SELECT value FROM registry_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO registry_meta (key, value) VALUES "
                    "('schema_version', ?)", (str(SCHEMA_VERSION),))
                return
            try:
                found = int(row[0])
            except ValueError as error:
                raise RegistrySchemaError(
                    f"registry {self.path!r} has a non-numeric "
                    f"schema_version {row[0]!r}") from error
            if found > SCHEMA_VERSION:
                raise RegistrySchemaError(
                    f"registry {self.path!r} uses schema version {found}, "
                    f"newer than the supported version {SCHEMA_VERSION}; "
                    "refusing to open it — upgrade wmxml, or export/import "
                    "through `wmxml records --export jsonl`")

    # -- records ------------------------------------------------------------

    def append_record(self, record: RegistryRecord) -> int:
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(sequence) + 1, 0) FROM records"
            ).fetchone()
            sequence = int(row[0])
            record.sequence = sequence
            self._conn.execute(
                "INSERT INTO records (sequence, recipient, "
                "scheme_fingerprint, document_hash, payload) "
                "VALUES (?, ?, ?, ?, ?)",
                (sequence, record.recipient, record.scheme_fingerprint,
                 record.document_hash, json.dumps(record.to_dict())))
            return sequence

    def record_count(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM records").fetchone()
            return int(row[0])

    def get_record(self, sequence: int) -> Optional[RegistryRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM records WHERE sequence = ?",
                (sequence,)).fetchone()
        if row is None:
            return None
        return RegistryRecord.from_dict(json.loads(row[0]))

    def find_records(self, recipient: Optional[str] = None,
                     scheme_fingerprint: Optional[str] = None,
                     document_hash: Optional[str] = None
                     ) -> list[RegistryRecord]:
        clauses, params = [], []
        for column, value in (("recipient", recipient),
                              ("scheme_fingerprint", scheme_fingerprint),
                              ("document_hash", document_hash)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock:
            rows = self._conn.execute(
                "SELECT payload FROM records" + where + " ORDER BY sequence",
                params).fetchall()
        return [RegistryRecord.from_dict(json.loads(row[0])) for row in rows]

    def recipients(self) -> list[str]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT DISTINCT recipient FROM records "
                "ORDER BY recipient").fetchall()
        return [row[0] for row in rows]

    # -- ledger ------------------------------------------------------------

    def append_block(self, block: LedgerBlock) -> None:
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT COALESCE(MAX(idx) + 1, 0) FROM ledger").fetchone()
            if block.index != int(row[0]):
                raise RegistryError(
                    f"ledger append out of order: block {block.index} "
                    f"onto a {int(row[0])}-block chain")
            self._conn.execute(
                "INSERT INTO ledger (idx, payload) VALUES (?, ?)",
                (block.index, json.dumps(block.to_dict())))

    def block_count(self) -> int:
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) FROM ledger").fetchone()
            return int(row[0])

    def last_block(self) -> Optional[LedgerBlock]:
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM ledger ORDER BY idx DESC LIMIT 1"
            ).fetchone()
        if row is None:
            return None
        return LedgerBlock.from_dict(json.loads(row[0]))

    def iter_blocks(self) -> Iterator[LedgerBlock]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT payload FROM ledger ORDER BY idx").fetchall()
        return iter([LedgerBlock.from_dict(json.loads(row[0]))
                     for row in rows])

    def close(self) -> None:
        with self._lock:
            self._conn.close()
