"""Durable registry storage on SQLite.

Schema v1 — three append-only tables plus a meta table::

    registry_meta(key TEXT PRIMARY KEY, value TEXT)
    records(sequence INTEGER PRIMARY KEY, recipient, scheme_fingerprint,
            document_hash, payload TEXT)          -- payload = record JSON
    ledger(idx INTEGER PRIMARY KEY, payload TEXT) -- payload = block JSON
    quarantine(qid INTEGER PRIMARY KEY, kind, ref, payload, reason,
               quarantined_at)                    -- crash-recovery morgue

The filter columns the ISSUE names are first-class indexed columns
(``idx_records_recipient`` / ``idx_records_scheme`` /
``idx_records_document``); the full artefact rides along as its
canonical ``wmxml-registry-record-v1`` JSON so nothing is lossy and the
export/import tooling round-trips bit-for-bit.

Crash safety
------------

The database runs in WAL mode with a busy timeout: a reader never
blocks the appender, a second process waits instead of failing with
``database is locked``, and a ``kill -9`` mid-write rolls back to the
last committed transaction on the next open.  On top of that,
:meth:`SQLiteBackend.append_entry` commits a record **and** its ledger
block in one transaction (and :meth:`append_entries` a whole batch),
so the record corpus and the chain can never tear apart inside the
append path — the ``registry.sqlite.commit`` / ``registry.append.torn``
fault points exist to prove exactly that.

Runtime storage failures (disk I/O errors, lock timeouts) surface as
:class:`~repro.registry.errors.RegistryUnavailableError` — the
transient, retry-after-a-pause condition the service degrades on —
while a database that is structurally not ours stays a plain
:class:`~repro.registry.errors.RegistryError` at open.

Forward compatibility is strict: a database whose ``schema_version`` is
*newer* than :data:`SCHEMA_VERSION` is refused with
:class:`~repro.registry.errors.RegistrySchemaError` — opening it could
silently corrupt artefacts a later version wrote.

The connection is shared across threads (``check_same_thread=False``)
behind one lock, matching the service daemon's threading model.
"""

from __future__ import annotations

import contextlib
import datetime
import json
import sqlite3
import threading
from typing import Iterator, Optional

from repro.faults import fault_point
from repro.registry.backend import RegistryBackend
from repro.registry.errors import (RegistryError, RegistrySchemaError,
                                   RegistryUnavailableError)
from repro.registry.ledger import LedgerBlock
from repro.registry.records import RegistryRecord

#: Schema version this code reads and writes.  The ``quarantine``
#: table was added within v1: it is purely additive (older code
#: ignores it), so it does not bump the version.
SCHEMA_VERSION = 1

#: How long a writer waits on a locked database before giving up
#: (milliseconds).  Five seconds outlasts any real append burst while
#: still turning a wedged filesystem into a clean
#: ``registry-unavailable`` instead of a hung request thread.
BUSY_TIMEOUT_MS = 5000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS registry_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    sequence            INTEGER PRIMARY KEY,
    recipient           TEXT NOT NULL,
    scheme_fingerprint  TEXT NOT NULL,
    document_hash       TEXT NOT NULL,
    tenant              TEXT NOT NULL DEFAULT '',
    payload             TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_recipient
    ON records (recipient);
CREATE INDEX IF NOT EXISTS idx_records_scheme
    ON records (scheme_fingerprint);
CREATE INDEX IF NOT EXISTS idx_records_document
    ON records (document_hash);
CREATE TABLE IF NOT EXISTS ledger (
    idx     INTEGER PRIMARY KEY,
    payload TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    qid            INTEGER PRIMARY KEY,
    kind           TEXT NOT NULL,
    ref            INTEGER NOT NULL,
    payload        TEXT NOT NULL,
    reason         TEXT NOT NULL,
    quarantined_at TEXT NOT NULL
);
"""


class SQLiteBackend(RegistryBackend):
    """Registry storage in a single SQLite file (or ``":memory:"``)."""

    def __init__(self, path: str,
                 busy_timeout_ms: int = BUSY_TIMEOUT_MS) -> None:
        self.path = path
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(path, check_same_thread=False)
        except sqlite3.Error as error:
            raise RegistryError(
                f"cannot open registry database {path!r}: {error}"
            ) from error
        try:
            self._init_schema(busy_timeout_ms)
        except sqlite3.Error as error:
            self._conn.close()
            raise RegistryError(
                f"{path!r} is not a wmxml registry database: {error}"
            ) from error
        except Exception:
            self._conn.close()
            raise

    def _init_schema(self, busy_timeout_ms: int) -> None:
        with self._lock, self._conn:
            # Crash-safety pragmas before any write.  WAL survives a
            # kill -9 mid-commit (the torn transaction rolls back on
            # the next open) and lets readers run beside the appender;
            # synchronous=NORMAL is the WAL-safe durability point;
            # busy_timeout turns cross-process lock contention into a
            # bounded wait.  ":memory:" and filesystems without WAL
            # support report a different active mode instead of
            # raising — the pragmas are best-effort by design.
            self._conn.execute(f"PRAGMA busy_timeout = {busy_timeout_ms}")
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
            self._conn.executescript(_SCHEMA)
            # Additive within-v1 migration (same rule as the quarantine
            # table: older code ignores the column, so no version
            # bump): pre-tenancy databases lack ``records.tenant`` —
            # add it, defaulting every existing row to the "" (single-
            # tenant) namespace, then index it.  The index lives here
            # rather than in _SCHEMA because it must come after the
            # ALTER on old databases.
            columns = {info[1] for info in self._conn.execute(
                "PRAGMA table_info(records)")}
            if "tenant" not in columns:
                self._conn.execute(
                    "ALTER TABLE records ADD COLUMN tenant TEXT "
                    "NOT NULL DEFAULT ''")
            self._conn.execute(
                "CREATE INDEX IF NOT EXISTS idx_records_tenant "
                "ON records (tenant)")
            row = self._conn.execute(
                "SELECT value FROM registry_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO registry_meta (key, value) VALUES "
                    "('schema_version', ?)", (str(SCHEMA_VERSION),))
                return
            try:
                found = int(row[0])
            except ValueError as error:
                raise RegistrySchemaError(
                    f"registry {self.path!r} has a non-numeric "
                    f"schema_version {row[0]!r}") from error
            if found > SCHEMA_VERSION:
                raise RegistrySchemaError(
                    f"registry {self.path!r} uses schema version {found}, "
                    f"newer than the supported version {SCHEMA_VERSION}; "
                    "refusing to open it — upgrade wmxml, or export/import "
                    "through `wmxml records --export jsonl`")

    @contextlib.contextmanager
    def _guarded(self, operation: str):
        """Runtime sqlite failures -> ``registry-unavailable``.

        A disk I/O error or a lock timeout during normal operation is
        a transient storage outage, not a protocol bug — the service
        degrades on this error class instead of crashing.
        """
        try:
            yield
        except (RegistryError, RegistryUnavailableError):
            raise
        except (sqlite3.Error, OSError) as error:
            # OSError covers the layer *under* sqlite: a vanished
            # file, a full disk, a dying mount — same outage class.
            raise RegistryUnavailableError(
                f"registry storage {self.path!r} failed during "
                f"{operation}: {error}") from error

    # -- records ------------------------------------------------------------

    def _next_sequence(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(sequence) + 1, 0) FROM records"
        ).fetchone()
        return int(row[0])

    def _insert_record(self, record: RegistryRecord) -> int:
        sequence = self._next_sequence()
        record.sequence = sequence
        self._conn.execute(
            "INSERT INTO records (sequence, recipient, "
            "scheme_fingerprint, document_hash, tenant, payload) "
            "VALUES (?, ?, ?, ?, ?, ?)",
            (sequence, record.recipient, record.scheme_fingerprint,
             record.document_hash, record.tenant or "",
             json.dumps(record.to_dict())))
        return sequence

    def _insert_block(self, block: LedgerBlock) -> None:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(idx) + 1, 0) FROM ledger").fetchone()
        if block.index != int(row[0]):
            raise RegistryError(
                f"ledger append out of order: block {block.index} "
                f"onto a {int(row[0])}-block chain")
        self._conn.execute(
            "INSERT INTO ledger (idx, payload) VALUES (?, ?)",
            (block.index, json.dumps(block.to_dict())))

    def append_record(self, record: RegistryRecord) -> int:
        with self._lock, self._guarded("append"), self._conn:
            return self._insert_record(record)

    def append_entry(self, record: RegistryRecord,
                     block: LedgerBlock) -> int:
        """Record + its ledger block in **one** transaction.

        A crash (or an injected fault) anywhere inside rolls both rows
        back together — no orphan record, no orphan block, ever.
        """
        with self._lock, self._guarded("append"), self._conn:
            sequence = self._insert_record(record)
            fault_point("registry.append.torn")
            self._insert_block(block)
            fault_point("registry.sqlite.commit")
            return sequence

    def append_entries(self, entries) -> list[int]:
        """A whole batch of (record, block) pairs in one transaction.

        The ``embed_many`` path: one fsync for the batch instead of one
        per record, and a failure persists *nothing* — which is what
        makes a client retry after a 503 append-safe.
        """
        with self._lock, self._guarded("append"), self._conn:
            sequences = []
            for record, block in entries:
                sequences.append(self._insert_record(record))
                fault_point("registry.append.torn")
                self._insert_block(block)
            fault_point("registry.sqlite.commit")
            return sequences

    def record_count(self) -> int:
        with self._lock, self._guarded("count"):
            fault_point("registry.sqlite.read")
            row = self._conn.execute(
                "SELECT COUNT(*) FROM records").fetchone()
            return int(row[0])

    def get_record(self, sequence: int) -> Optional[RegistryRecord]:
        with self._lock, self._guarded("lookup"):
            row = self._conn.execute(
                "SELECT payload FROM records WHERE sequence = ?",
                (sequence,)).fetchone()
        if row is None:
            return None
        return RegistryRecord.from_dict(json.loads(row[0]))

    def find_records(self, recipient: Optional[str] = None,
                     scheme_fingerprint: Optional[str] = None,
                     document_hash: Optional[str] = None,
                     tenant: Optional[str] = None
                     ) -> list[RegistryRecord]:
        clauses, params = [], []
        for column, value in (("recipient", recipient),
                              ("scheme_fingerprint", scheme_fingerprint),
                              ("document_hash", document_hash),
                              ("tenant", tenant)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        with self._lock, self._guarded("query"):
            fault_point("registry.sqlite.read")
            rows = self._conn.execute(
                "SELECT payload FROM records" + where + " ORDER BY sequence",
                params).fetchall()
        return [RegistryRecord.from_dict(json.loads(row[0])) for row in rows]

    def recipients(self) -> list[str]:
        with self._lock, self._guarded("query"):
            fault_point("registry.sqlite.read")
            rows = self._conn.execute(
                "SELECT DISTINCT recipient FROM records "
                "ORDER BY recipient").fetchall()
        return [row[0] for row in rows]

    # -- ledger ------------------------------------------------------------

    def append_block(self, block: LedgerBlock) -> None:
        with self._lock, self._guarded("append"), self._conn:
            self._insert_block(block)

    def block_count(self) -> int:
        with self._lock, self._guarded("count"):
            row = self._conn.execute(
                "SELECT COUNT(*) FROM ledger").fetchone()
            return int(row[0])

    def last_block(self) -> Optional[LedgerBlock]:
        with self._lock, self._guarded("lookup"):
            row = self._conn.execute(
                "SELECT payload FROM ledger ORDER BY idx DESC LIMIT 1"
            ).fetchone()
        if row is None:
            return None
        return LedgerBlock.from_dict(json.loads(row[0]))

    def iter_blocks(self) -> Iterator[LedgerBlock]:
        with self._lock, self._guarded("query"):
            rows = self._conn.execute(
                "SELECT payload FROM ledger ORDER BY idx").fetchall()
        return iter([LedgerBlock.from_dict(json.loads(row[0]))
                     for row in rows])

    # -- quarantine ------------------------------------------------------------

    def quarantine_trailing(self, kind: str,
                            reason: str) -> Optional[dict]:
        """Move the newest record/block row into the quarantine morgue.

        Crash recovery's tool: the torn tail is preserved for forensic
        inspection (never deleted) while the live tables return to a
        verifiable state.  Returns the quarantined payload, or ``None``
        when the table is empty.
        """
        table, column = (("records", "sequence") if kind == "record"
                         else ("ledger", "idx"))
        with self._lock, self._guarded("quarantine"), self._conn:
            row = self._conn.execute(
                f"SELECT {column}, payload FROM {table} "
                f"ORDER BY {column} DESC LIMIT 1").fetchone()
            if row is None:
                return None
            ref, payload = int(row[0]), row[1]
            self._conn.execute(
                "INSERT INTO quarantine (kind, ref, payload, reason, "
                "quarantined_at) VALUES (?, ?, ?, ?, ?)",
                (kind, ref, payload, reason,
                 datetime.datetime.now(
                     datetime.timezone.utc).isoformat()))
            self._conn.execute(
                f"DELETE FROM {table} WHERE {column} = ?", (ref,))
        try:
            parsed = json.loads(payload)
        except ValueError:
            parsed = payload
        return {"kind": kind, "ref": ref, "payload": parsed,
                "reason": reason}

    def quarantined(self) -> list[dict]:
        """Every quarantined row, oldest first."""
        with self._lock, self._guarded("query"):
            rows = self._conn.execute(
                "SELECT kind, ref, payload, reason, quarantined_at "
                "FROM quarantine ORDER BY qid").fetchall()
        out = []
        for kind, ref, payload, reason, at in rows:
            try:
                parsed = json.loads(payload)
            except ValueError:
                parsed = payload
            out.append({"kind": kind, "ref": ref, "payload": parsed,
                        "reason": reason, "quarantined_at": at})
        return out

    def close(self) -> None:
        with self._lock:
            self._conn.close()
