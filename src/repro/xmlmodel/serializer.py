"""Serialisation of the XML tree model back to markup.

Two styles are provided:

* :func:`serialize` — compact, loss-preserving output (the inverse of the
  parser when ``strip_whitespace=False``),
* :func:`pretty` — indented output for humans, used by the CLI and the
  examples.

Escaping follows the XML 1.0 rules: ``&``, ``<`` (and ``>`` after ``]]``)
in character data; ``&``, ``<`` and the active quote in attribute values.
Carriage returns are emitted as ``&#13;`` in both contexts: a literal
``\r`` in output would be folded to ``\n`` by any conformant parser's
end-of-line normalization (XML 1.0 §2.11, including ours), so the
character reference is the only representation that survives a
round-trip.  Newlines and tabs in attribute values are likewise
referenced (``&#10;``/``&#9;``) to survive attribute-value
normalization.
"""

from __future__ import annotations

from typing import Union

from repro.xmlmodel.tree import (
    Comment,
    Document,
    Element,
    Node,
    ProcessingInstruction,
    Text,
)


def escape_text(value: str) -> str:
    """Escape character data for element content."""
    escaped = (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )
    if "\r" in escaped:
        escaped = escaped.replace("\r", "&#13;")
    return escaped


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialisation."""
    escaped = (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace('"', "&quot;")
        .replace("\n", "&#10;")
        .replace("\t", "&#9;")
    )
    if "\r" in escaped:
        escaped = escaped.replace("\r", "&#13;")
    return escaped


def _serialize_node(node: Node, parts: list[str]) -> None:
    if isinstance(node, Text):
        parts.append(escape_text(node.value))
    elif isinstance(node, Comment):
        parts.append(f"<!--{node.value}-->")
    elif isinstance(node, ProcessingInstruction):
        data = f" {node.data}" if node.data else ""
        parts.append(f"<?{node.target}{data}?>")
    elif isinstance(node, Element):
        _serialize_element(node, parts)
    else:  # pragma: no cover - the node hierarchy is closed
        raise TypeError(f"cannot serialise {type(node).__name__}")


def _serialize_element(element: Element, parts: list[str]) -> None:
    # Hot path of ``serialize`` (the E9 bench's ``serialize_ms`` stage).
    # Escaping stays on the chained-``str.replace`` form deliberately:
    # clean strings (the overwhelming majority in data-centric XML)
    # pass through as the *same* object after a few C-level scans,
    # which measures ~4x faster than a hoisted ``str.maketrans``
    # translation table on representative values.  The structural wins
    # here are dispatch avoidance: the dominant ``<tag>text</tag>``
    # leaf renders as one append with no per-child function call, and
    # mixed children are type-switched inline instead of going through
    # ``_serialize_node``.
    tag = element.tag
    attributes = element.attributes
    if attributes:
        open_parts = [f"<{tag}"]
        for name, value in attributes.items():
            open_parts.append(f' {name}="{escape_attribute(value)}"')
        open_tag = "".join(open_parts)
    else:
        open_tag = f"<{tag}"
    children = element.children
    if not children:
        parts.append(open_tag + "/>")
        return
    if len(children) == 1:
        only = children[0]
        if type(only) is Text:
            parts.append(
                f"{open_tag}>{escape_text(only.value)}</{tag}>")
            return
    parts.append(open_tag + ">")
    for child in children:
        kind = type(child)
        if kind is Text:
            parts.append(escape_text(child.value))
        elif kind is Element:
            _serialize_element(child, parts)
        else:
            _serialize_node(child, parts)
    parts.append(f"</{tag}>")


def serialize(node: Union[Document, Node], xml_declaration: bool = False) -> str:
    """Serialise a document or subtree to a compact XML string."""
    parts: list[str] = []
    if isinstance(node, Document):
        if xml_declaration:
            parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        for item in node.prolog:
            _serialize_node(item, parts)
        _serialize_node(node.root, parts)
        for item in node.epilog:
            _serialize_node(item, parts)
    else:
        if xml_declaration:
            parts.append('<?xml version="1.0" encoding="UTF-8"?>')
        _serialize_node(node, parts)
    return "".join(parts)


def _pretty_node(node: Node, parts: list[str], depth: int, indent: str) -> None:
    pad = indent * depth
    if isinstance(node, Text):
        stripped = node.value.strip()
        if stripped:
            parts.append(f"{pad}{escape_text(stripped)}\n")
        return
    if isinstance(node, Comment):
        parts.append(f"{pad}<!--{node.value}-->\n")
        return
    if isinstance(node, ProcessingInstruction):
        data = f" {node.data}" if node.data else ""
        parts.append(f"{pad}<?{node.target}{data}?>\n")
        return
    assert isinstance(node, Element)
    open_tag = [f"{pad}<{node.tag}"]
    for name, value in node.attributes.items():
        open_tag.append(f' {name}="{escape_attribute(value)}"')
    significant = [
        child
        for child in node.children
        if not (isinstance(child, Text) and not child.value.strip())
    ]
    if not significant:
        open_tag.append("/>\n")
        parts.append("".join(open_tag))
        return
    has_text = any(isinstance(child, Text) for child in significant)
    if has_text and all(isinstance(child, Text) for child in significant):
        # Text-only element: inline the *full* text run, including any
        # whitespace-only nodes between significant runs — they are part
        # of the content once the runs coalesce.
        text = "".join(child.value for child in node.children
                       if isinstance(child, Text))
        open_tag.append(f">{escape_text(text)}</{node.tag}>\n")
        parts.append("".join(open_tag))
        return
    if has_text:
        # Mixed content: indentation would inject whitespace between
        # text runs and change the content, so emit the body compactly.
        open_tag.append(">")
        for child in node.children:
            _serialize_node(child, open_tag)
        open_tag.append(f"</{node.tag}>\n")
        parts.append("".join(open_tag))
        return
    open_tag.append(">\n")
    parts.append("".join(open_tag))
    for child in significant:
        _pretty_node(child, parts, depth + 1, indent)
    parts.append(f"{pad}</{node.tag}>\n")


def pretty(node: Union[Document, Node], indent: str = "  ",
           xml_declaration: bool = False) -> str:
    """Serialise with indentation for human consumption.

    Whitespace-only text nodes are dropped and leaf text is inlined, so
    this form is *not* byte-level round-trippable for mixed content; use
    :func:`serialize` for fidelity.
    """
    parts: list[str] = []
    if xml_declaration:
        parts.append('<?xml version="1.0" encoding="UTF-8"?>\n')
    if isinstance(node, Document):
        for item in node.prolog:
            _pretty_node(item, parts, 0, indent)
        _pretty_node(node.root, parts, 0, indent)
        for item in node.epilog:
            _pretty_node(item, parts, 0, indent)
    else:
        _pretty_node(node, parts, 0, indent)
    return "".join(parts)


def write_file(path: str, node: Union[Document, Node], pretty_print: bool = True) -> None:
    """Write a document or subtree to ``path`` as UTF-8 XML."""
    text = pretty(node, xml_declaration=True) if pretty_print else serialize(
        node, xml_declaration=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
