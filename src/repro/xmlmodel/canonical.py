"""Canonical form of XML trees.

Watermark selection keys off *content*, never formatting, so several
layers need a deterministic text form of a subtree that is invariant
under the transformations an adversary can apply for free:

* attribute reordering (attributes are sorted by name),
* whitespace/indentation changes (whitespace-only text dropped, runs of
  whitespace inside text collapsed),
* comment and processing-instruction noise (both dropped).

:func:`canonicalize` produces that form; :func:`content_digest` hashes it
(SHA-256) for compact fingerprints.  This is intentionally simpler than
W3C C14N — it is a *semantic* canonical form for data-centric XML, not an
exclusive-canonicalisation implementation.
"""

from __future__ import annotations

import hashlib
from typing import Union

from repro.xmlmodel.serializer import escape_attribute, escape_text
from repro.xmlmodel.tree import Document, Element, Node, Text


def _normalize_text(value: str) -> str:
    """Collapse internal whitespace runs and trim the ends."""
    return " ".join(value.split())


def _canonical_node(node: Node, parts: list[str]) -> None:
    if isinstance(node, Text):
        normalized = _normalize_text(node.value)
        if normalized:
            parts.append(escape_text(normalized))
        return
    if not isinstance(node, Element):
        return  # comments / PIs carry no content
    parts.append(f"<{node.tag}")
    for name in sorted(node.attributes):
        parts.append(f' {name}="{escape_attribute(node.attributes[name])}"')
    parts.append(">")
    # Coalesce adjacent text runs before normalising: the boundary
    # between two text siblings is not representable in markup, so
    # Text('a '), Text('b') must canonicalise like Text('a b').
    pending: list[str] = []

    def flush() -> None:
        if not pending:
            return
        normalized = _normalize_text("".join(pending))
        pending.clear()
        if normalized:
            parts.append(escape_text(normalized))

    for child in node.children:
        if isinstance(child, Text):
            pending.append(child.value)
            continue
        flush()
        _canonical_node(child, parts)
    flush()
    parts.append(f"</{node.tag}>")


def canonicalize(node: Union[Document, Node]) -> str:
    """Return the canonical text form of a document or subtree."""
    target = node.root if isinstance(node, Document) else node
    parts: list[str] = []
    _canonical_node(target, parts)
    return "".join(parts)


def content_digest(node: Union[Document, Node]) -> str:
    """Hex SHA-256 digest of the canonical form."""
    return hashlib.sha256(canonicalize(node).encode("utf-8")).hexdigest()


def semantically_equal(left: Union[Document, Node],
                       right: Union[Document, Node]) -> bool:
    """True when two trees share a canonical form.

    Stronger than identity, weaker than byte equality: ignores attribute
    order, comments and whitespace noise.
    """
    return canonicalize(left) == canonicalize(right)
